"""Benchmark: the Section-4 hardware-benchmarking ablation.

The paper motivates its coarse achieved-rate benchmarking by noting that
the original per-opcode approach produced prediction errors "as large as
50%" on the AMD Opteron cluster.  This benchmark evaluates the same PSL
model against the two HMCL cpu sections and compares both predictions with
the simulated measurement.
"""

from __future__ import annotations

from conftest import run_once, save_report

from repro.experiments.ablation import run_opcode_ablation
from repro.experiments.report import format_ablation


def test_opcode_vs_coarse_benchmarking(benchmark, report_dir):
    result = run_once(benchmark, run_opcode_ablation, max_iterations=12)
    report = format_ablation(result)
    print("\n" + report)
    save_report(report_dir, "ablation_opcode", report)

    benchmark.extra_info["coarse_error_pct"] = round(result.coarse_error_pct, 2)
    benchmark.extra_info["legacy_error_pct"] = round(result.legacy_error_pct, 2)
    benchmark.extra_info["paper_legacy_error_pct"] = 50.0

    # The coarse approach reproduces the <10% accuracy of the paper ...
    assert abs(result.coarse_error_pct) < 10.0
    # ... while the legacy opcode summation is off by tens of percent
    # (the paper quotes errors as large as 50% for this machine).
    assert abs(result.legacy_error_pct) > 25.0
    assert result.improvement_factor > 3.0
