"""Benchmark: blocking-factor (mk/mmi) design-space study.

The paper fixes mk=10 and mmi=3 for all of its experiments.  This benchmark
uses the PACE model to sweep both blocking factors for the speculative
20-million-cell problem (5x5x100 cells per processor) on a 400-processor
slice of the hypothetical Opteron/Myrinet machine, where the
latency-vs-pipelining trade-off has a genuine interior optimum — the kind
of design-space exploration the paper advocates performance models for.
"""

from __future__ import annotations

from conftest import run_once, save_report

from repro.experiments.blocking import run_blocking_study


def test_blocking_factor_design_space(benchmark, report_dir):
    result = run_once(benchmark, run_blocking_study, px=20, py=20)
    report = result.describe()
    print("\n" + report)
    save_report(report_dir, "blocking_study", report)

    best = result.best()
    benchmark.extra_info["best_mk"] = best.mk
    benchmark.extra_info["best_mmi"] = best.mmi
    benchmark.extra_info["paper_choice_penalty_pct"] = round(
        result.paper_choice_penalty() * 100, 2)

    # The trade-off is real: both extremes are worse than the optimum.
    finest = result.point(1, 1)
    coarsest = result.point(100, 6)
    assert finest.predicted_time > best.predicted_time * 1.05
    assert coarsest.predicted_time > best.predicted_time * 1.5
    # The optimum sits strictly inside the explored range of k blockings.
    assert 1 < best.mk < 100
    # And the paper's fixed choice stays within 50% of the explored optimum.
    assert result.paper_choice_penalty() < 0.50
