"""Benchmark: periodic trace capture vs the full O(events) recorder.

``test_periodic_capture_speed_64rank`` is the acceptance gate of the
periodic capture tier: on the 64-rank x 100-iteration modelled
configuration where trace capture used to dominate cold sweeps,
``SimulationPlan.compile_trace()`` — which records only a handful of
iterations, proves their period and tiles the remainder — must be at
least 10x faster than the full recorder pass, **after** the result is
asserted bit-identical down to the last event column, per-rank counter,
traffic tally and synthesized return value.  Identity comes first: a
fast wrong trace must fail the gate before any timing runs.

``test_trace_cache_makes_recapture_free`` locks the persistence layer:
a second process (modelled as a fresh cache handle and fresh plan over
the same directory) must serve the same configuration from the
fingerprint-keyed trace cache without recording a single event, orders
of magnitude faster than even the periodic pass.

Baseline on the reference container (64 ranks, 100 iterations, ~480k
events): full recorder ~3.5 s vs periodic capture ~0.29 s (~12x), of
which ~0.25 s is the 6-iteration probe recording; a warm cache hit is
~15 ms (npz load).
"""

from __future__ import annotations

import time

import numpy as np
from gate_report import record_gate

from repro.machines.presets import get_machine
from repro.simmpi.tracecache import TraceDiskCache
from repro.simnet.noise import NoiseModel
from repro.sweep3d.driver import SimulationPlan
from repro.sweep3d.input import Sweep3DInput

#: The gate configuration: 8x8 ranks, 100 source iterations (~480k events).
RANKS = (8, 8)
ITERATIONS = 100

TRACE_COLUMNS = ("event_kind", "event_rank", "event_slot", "event_aux",
                 "event_peer", "event_tag", "event_nbytes",
                 "_base", "_noise_kind", "_send_eager_arr", "_send_rank_arr")


def _deck():
    return Sweep3DInput(it=16, jt=16, kt=10, mk=10, mmi=3, sn=6,
                        max_iterations=ITERATIONS)


def _plan(machine, **kwargs):
    px, py = RANKS
    return SimulationPlan(_deck(), px, py, machine.topology,
                          processor=machine.processor, **kwargs)


def _assert_identical(got, want):
    assert got.nranks == want.nranks
    for column in TRACE_COLUMNS:
        a, b = getattr(got, column), getattr(want, column)
        assert a.dtype == b.dtype, column
        assert np.array_equal(a, b), column
    assert got._messages_sent == want._messages_sent
    assert got._bytes_sent == want._bytes_sent
    assert got._messages_received == want._messages_received
    assert got._bytes_received == want._bytes_received
    assert got._traffic == want._traffic
    assert got._return_values == want._return_values


def test_periodic_capture_speed_64rank():
    """Periodic capture is >=10x the full recorder, bit-identically."""
    machine = get_machine("steady")
    plan = _plan(machine)
    tiled = plan.compile_trace()
    info = plan.last_capture
    assert info.mode == "periodic", info.reason
    assert info.short_iterations < ITERATIONS
    full = plan._record_trace(_deck())

    # Identity first — the timing below is meaningless otherwise.
    _assert_identical(tiled, full)
    assert tiled.replay(NoiseModel.disabled()).elapsed_time \
        == full.replay(NoiseModel.disabled()).elapsed_time
    noise = NoiseModel(seed=5)
    assert tiled.replay(noise.reseeded(5)).elapsed_time \
        == full.replay(noise.reseeded(5)).elapsed_time

    best_speedup = 0.0
    for _ in range(2):                          # one retry guards against noise
        start = time.perf_counter()
        reference = _plan(machine)
        reference._record_trace(_deck())
        full_elapsed = time.perf_counter() - start
        start = time.perf_counter()
        candidate = _plan(machine)
        candidate.compile_trace()
        periodic_elapsed = time.perf_counter() - start
        assert candidate.last_capture.mode == "periodic"
        best_speedup = max(best_speedup, full_elapsed / periodic_elapsed)
        if best_speedup >= 10.0:
            break
    px, py = RANKS
    print(f"\n{px * py}-rank x{ITERATIONS}-iteration capture: full "
          f"{full_elapsed:.2f} s, periodic {periodic_elapsed * 1e3:.0f} ms, "
          f"speedup {best_speedup:.1f}x ({info.describe()})")
    record_gate("periodic_capture_vs_full_64rank", best_speedup, 10.0)
    assert best_speedup >= 10.0


def test_trace_cache_makes_recapture_free(tmp_path):
    """A fresh process re-captures from the cache without recording."""
    machine = get_machine("steady")
    cold = _plan(machine, trace_cache=TraceDiskCache(tmp_path))
    stored = cold.compile_trace()
    assert cold.last_capture.mode == "periodic"

    warm_cache = TraceDiskCache(tmp_path)       # fresh handle = new process
    warm = _plan(machine, trace_cache=warm_cache)
    start = time.perf_counter()
    loaded = warm.compile_trace()
    warm_elapsed = time.perf_counter() - start
    assert warm.last_capture.mode == "cache"
    snapshot = warm_cache.stats_snapshot()
    assert (snapshot.hits, snapshot.misses) == (1, 0)
    _assert_identical(loaded, stored)

    speedup = cold.last_capture.capture_s / warm_elapsed
    print(f"\nwarm trace-cache capture: {warm_elapsed * 1e3:.1f} ms vs "
          f"periodic {cold.last_capture.capture_s * 1e3:.0f} ms "
          f"({speedup:.1f}x)")
    record_gate("trace_cache_warm_vs_periodic", speedup, 1.0)
    assert speedup >= 1.0
