"""Benchmark: cost of producing a prediction (the PACE evaluation engine).

Figure 2 of the paper emphasises that once the application and resource
models exist, predictions are obtained "within seconds".  These benchmarks
measure that cost for representative configurations — a validation-table
row, the largest speculative configuration — plus the cost of the two
hardware-layer campaigns (profiling and the MPI micro-benchmark fit).
"""

from __future__ import annotations

import pytest

from repro.core.evaluation import EvaluationEngine
from repro.core.workload import SweepWorkload, load_sweep3d_model
from repro.machines.presets import get_machine
from repro.profiling.mpibench import MpiBenchmark
from repro.profiling.papi import FlopProfiler
from repro.simmpi.cart import Cart2D
from repro.sweep3d.input import standard_deck


@pytest.fixture(scope="module")
def p3_engine():
    machine = get_machine("pentium3-myrinet")
    deck = standard_deck("validation", px=2, py=2)
    hardware = machine.hardware_model(deck, 2, 2)
    return EvaluationEngine(load_sweep3d_model(), hardware)


@pytest.fixture(scope="module")
def hypothetical_engine():
    machine = get_machine("hypothetical-opteron-myrinet")
    deck = standard_deck("asci-20m", px=2, py=2)
    hardware = machine.hardware_model(deck, 2, 2)
    return EvaluationEngine(load_sweep3d_model(), hardware)


def test_prediction_speed_validation_row(benchmark, p3_engine):
    """One Table-1 row prediction (112 processors, 12 iterations)."""
    deck = standard_deck("validation", px=8, py=14)
    variables = SweepWorkload(deck, 8, 14).model_variables()

    result = benchmark(lambda: p3_engine.predict(variables))
    assert result.total_time > 0
    benchmark.extra_info["predicted_seconds"] = round(result.total_time, 2)


def test_prediction_speed_8000_processors(benchmark, hypothetical_engine):
    """The largest speculative configuration: 8000 processors, 20M cells."""
    cart = Cart2D.for_size(8000)
    deck = standard_deck("asci-20m", px=cart.px, py=cart.py)
    variables = SweepWorkload(deck, cart.px, cart.py).model_variables()

    def predict():
        hypothetical_engine.clear_cache()   # measure a cold evaluation
        return hypothetical_engine.predict(variables)

    result = benchmark.pedantic(predict, rounds=3, iterations=1)
    assert result.total_time > 0
    benchmark.extra_info["predicted_seconds"] = round(result.total_time, 3)


def test_flop_profiling_campaign_speed(benchmark):
    """PAPI-substitute profiling of the serial kernel for one problem size."""
    machine = get_machine("opteron-gige")
    deck = standard_deck("validation", px=1, py=1)
    profile = benchmark(lambda: FlopProfiler(machine.processor).profile(deck))
    benchmark.extra_info["achieved_mflops"] = round(profile.achieved_mflops, 1)


def test_mpi_benchmark_campaign_speed(benchmark):
    """The simulated MPI micro-benchmark sweep plus the A-E curve fits."""
    machine = get_machine("pentium3-myrinet")

    def campaign():
        data = MpiBenchmark(machine.topology, repetitions=3).run()
        return data.fit()

    fits = benchmark.pedantic(campaign, rounds=3, iterations=1)
    assert set(fits) == {"send", "recv", "pingpong"}
