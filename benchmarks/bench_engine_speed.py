"""Benchmark: cost of producing a prediction (the PACE evaluation engine).

Figure 2 of the paper emphasises that once the application and resource
models exist, predictions are obtained "within seconds".  These benchmarks
measure that cost for representative configurations — a validation-table
row, the largest speculative configuration — plus the cost of the two
hardware-layer campaigns (profiling and the MPI micro-benchmark fit).

``test_sweep_100_points_compiled_vs_naive`` is the acceptance gate of the
compile/execute refactor: a 100-point parameter sweep through
``CompiledModel``/``SweepRunner`` must be at least 5x faster than the
seed's per-point evaluation (a freshly parsed model and interpreted engine
per point) while producing identical predictions (<= 1e-12 relative; in
practice bit-identical).  Baseline on the reference container: ~2.2 s
naive vs ~0.15 s compiled (~15x) for the 100-point (px, py) grid below.
"""

from __future__ import annotations

import time

import pytest
from gate_report import record_gate

from repro.core.evaluation import EvaluationEngine
from repro.core.workload import SweepWorkload, load_sweep3d_model
from repro.experiments.sweep import Scenario, SweepRunner
from repro.machines.presets import get_machine
from repro.profiling.mpibench import MpiBenchmark
from repro.profiling.papi import FlopProfiler
from repro.simmpi.cart import Cart2D
from repro.sweep3d.input import standard_deck


@pytest.fixture(scope="module")
def p3_engine():
    machine = get_machine("pentium3-myrinet")
    deck = standard_deck("validation", px=2, py=2)
    hardware = machine.hardware_model(deck, 2, 2)
    return EvaluationEngine(load_sweep3d_model(), hardware)


@pytest.fixture(scope="module")
def hypothetical_engine():
    machine = get_machine("hypothetical-opteron-myrinet")
    deck = standard_deck("asci-20m", px=2, py=2)
    hardware = machine.hardware_model(deck, 2, 2)
    return EvaluationEngine(load_sweep3d_model(), hardware)


def test_prediction_speed_validation_row(benchmark, p3_engine):
    """One Table-1 row prediction (112 processors, 12 iterations)."""
    deck = standard_deck("validation", px=8, py=14)
    variables = SweepWorkload(deck, 8, 14).model_variables()

    result = benchmark(lambda: p3_engine.predict(variables))
    assert result.total_time > 0
    benchmark.extra_info["predicted_seconds"] = round(result.total_time, 2)


def test_prediction_speed_8000_processors(benchmark, hypothetical_engine):
    """The largest speculative configuration: 8000 processors, 20M cells."""
    cart = Cart2D.for_size(8000)
    deck = standard_deck("asci-20m", px=cart.px, py=cart.py)
    variables = SweepWorkload(deck, cart.px, cart.py).model_variables()

    def predict():
        hypothetical_engine.clear_cache()   # measure a cold evaluation
        return hypothetical_engine.predict(variables)

    result = benchmark.pedantic(predict, rounds=3, iterations=1)
    assert result.total_time > 0
    benchmark.extra_info["predicted_seconds"] = round(result.total_time, 3)


def _sweep_points() -> list[Scenario]:
    """A 100-point weak-scaling grid over (px, py) processor arrays."""
    points = []
    for px in range(1, 11):
        for py in range(1, 11):
            deck = standard_deck("validation", px=px, py=py)
            workload = SweepWorkload(deck, px, py)
            points.append(Scenario(label=f"{px}x{py}",
                                   variables=workload.model_variables()))
    return points


def test_sweep_100_points_compiled_vs_naive():
    """The compiled batch pipeline is >=5x the seed's per-point evaluation."""
    machine = get_machine("pentium3-myrinet")
    deck = standard_deck("validation", px=1, py=1)
    hardware = machine.hardware_model(deck, 1, 1)
    points = _sweep_points()

    def run_naive() -> tuple[float, list[float]]:
        start = time.perf_counter()
        times = [
            EvaluationEngine(load_sweep3d_model(), hardware,
                             compiled=False).predict(p.variables).total_time
            for p in points
        ]
        return time.perf_counter() - start, times

    def run_compiled() -> tuple[float, list[float]]:
        start = time.perf_counter()
        runner = SweepRunner(model=load_sweep3d_model(), hardware=hardware)
        times = [outcome.total_time for outcome in runner.run(points)]
        return time.perf_counter() - start, times

    best_speedup = 0.0
    for _ in range(2):                      # one retry guards against noise
        naive_elapsed, naive_times = run_naive()
        compiled_elapsed, compiled_times = run_compiled()
        for naive, compiled in zip(naive_times, compiled_times):
            assert compiled == pytest.approx(naive, rel=1e-12)
        best_speedup = max(best_speedup, naive_elapsed / compiled_elapsed)
        if best_speedup >= 5.0:
            break
    print(f"\n100-point sweep: naive {naive_elapsed:.2f}s, "
          f"compiled {compiled_elapsed:.2f}s, speedup {best_speedup:.1f}x")
    record_gate("sweep_100pt_compiled_vs_naive", best_speedup, 5.0)
    assert best_speedup >= 5.0


def test_sweep_runner_100_points(benchmark):
    """Absolute cost of the compiled 100-point sweep (for trend tracking)."""
    machine = get_machine("pentium3-myrinet")
    deck = standard_deck("validation", px=1, py=1)
    hardware = machine.hardware_model(deck, 1, 1)
    points = _sweep_points()
    runner = SweepRunner(model=load_sweep3d_model(), hardware=hardware)

    outcomes = benchmark.pedantic(lambda: runner.run(points),
                                  rounds=3, iterations=1)
    assert len(outcomes) == 100
    benchmark.extra_info["subtask_hit_rate"] = round(
        runner.stats.subtask_hit_rate, 3)


def test_flop_profiling_campaign_speed(benchmark):
    """PAPI-substitute profiling of the serial kernel for one problem size."""
    machine = get_machine("opteron-gige")
    deck = standard_deck("validation", px=1, py=1)
    profile = benchmark(lambda: FlopProfiler(machine.processor).profile(deck))
    benchmark.extra_info["achieved_mflops"] = round(profile.achieved_mflops, 1)


def test_mpi_benchmark_campaign_speed(benchmark):
    """The simulated MPI micro-benchmark sweep plus the A-E curve fits."""
    machine = get_machine("pentium3-myrinet")

    def campaign():
        data = MpiBenchmark(machine.topology, repetitions=3).run()
        return data.fit()

    fits = benchmark.pedantic(campaign, rounds=3, iterations=1)
    assert set(fits) == {"send", "recv", "pingpong"}
