"""Benchmark: regenerate Figure 8 (speculative 20-million-cell scaling study).

The model is reused to speculate on a hypothetical 8000-processor Opteron
SMP cluster with the Myrinet 2000 communication model: 5x5x100 cells per
processor, mk=10, mmi=3, achieved rate 340 MFLOPS plus +25% and +50%
processor-upgrade scenarios.  The published figure shows execution times of
roughly 0.15 s at one processor rising to around one second at 8000
processors, with good scaling behaviour throughout.
"""

from __future__ import annotations

from conftest import run_once, save_report

from repro.experiments.figures import figure8
from repro.experiments.report import format_figure


def test_figure8_full_reproduction(benchmark, report_dir):
    result = run_once(benchmark, figure8)
    report = format_figure(result)
    print("\n" + report)
    save_report(report_dir, "figure8", report)

    actual = result.actual
    benchmark.extra_info["time_at_1_proc_s"] = round(actual.times[0], 4)
    benchmark.extra_info["time_at_8000_procs_s"] = round(actual.final_time, 4)
    benchmark.extra_info["upgrade_speedup_50pct"] = round(result.speedup_from_upgrade(1.5), 3)

    # Three series (actual, +25%, +50%), each monotone under weak scaling.
    assert len(result.series) == 3
    for series in result.series:
        assert series.is_monotone_nondecreasing()
        assert series.processor_counts[-1] == 8000
    # The "actual" curve lands in the range read off the published figure.
    lo, hi = result.study.expected_range_at_max
    assert lo <= actual.final_time <= hi
    # Faster processors help, but less than proportionally (communication).
    assert 1.0 < result.speedup_from_upgrade(1.5) < 1.5
    assert 1.0 < result.speedup_from_upgrade(1.25) < 1.25
