"""Benchmark: regenerate Figure 9 (speculative one-billion-cell scaling study).

Same hypothetical machine as Figure 8 but with 25x25x200 cells per
processor (one billion cells at 8000 processors).  The published figure
spans roughly 7 s at one processor to 25-30 s at 8000 processors, again
with the +25% and +50% achieved-rate upgrade scenarios.
"""

from __future__ import annotations

from conftest import run_once, save_report

from repro.experiments.figures import figure9
from repro.experiments.report import format_figure


def test_figure9_full_reproduction(benchmark, report_dir):
    result = run_once(benchmark, figure9)
    report = format_figure(result)
    print("\n" + report)
    save_report(report_dir, "figure9", report)

    actual = result.actual
    benchmark.extra_info["time_at_1_proc_s"] = round(actual.times[0], 3)
    benchmark.extra_info["time_at_8000_procs_s"] = round(actual.final_time, 3)
    benchmark.extra_info["upgrade_speedup_50pct"] = round(result.speedup_from_upgrade(1.5), 3)

    assert len(result.series) == 3
    for series in result.series:
        assert series.is_monotone_nondecreasing()
    lo, hi = result.study.expected_range_at_max
    assert lo <= actual.final_time <= hi
    # The one-billion-cell problem is compute-dominated: the pipeline adds
    # less relative overhead than for the 20M-cell problem, so the +50%
    # upgrade buys a larger fraction of its ideal speedup.
    assert result.speedup_from_upgrade(1.5) > 1.2
