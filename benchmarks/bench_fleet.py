"""Benchmark: elastic fleet execution vs the static 4-way shard plan.

``test_fleet_overhead_vs_static_sharding`` is the acceptance gate of
the work-stealing coordinator: running the full smoke study set through
:func:`~repro.experiments.fleet.run_local_fleet` (file-based leases,
heartbeats, a MemoryStore artifact hop and a coordinator merge) must
cost at most 10% more wall-clock than the pre-fleet CI recipe — the
static ``plan_shards(spec, 4)`` plan executed shard by shard, each
shard's artifacts written to its own directory, then loaded back and
merged, exactly what the ``study-exec`` static matrix leg does.

Bit-identity comes first: both execution paths are asserted equal to an
unsharded reference row-for-row before any timing is compared — a fast
coordinator that changes numbers is worthless.

Each side runs on its own fresh :class:`StudyContext`, so both pay
identical model-compile and sweep costs and the measured difference is
pure orchestration overhead (lease files, polling, store round trips).
Baseline on the reference container: static ~1.8 s vs fleet ~1.8 s
(ratio ~1.0); the 10% allowance absorbs slow CI filesystems, and the
best-of-3 retry loop absorbs noisy neighbours.
"""

from __future__ import annotations

import time

from gate_report import record_gate

from repro.experiments.artifacts import (
    load_study_results,
    write_study_artifacts,
)
from repro.experiments.fleet import run_local_fleet
from repro.experiments.remotestore import MemoryStore
from repro.experiments.sharding import (
    group_by_parent,
    merge_study_results,
    plan_shards,
)
from repro.experiments.study import (
    StudyContext,
    StudyRunner,
    build_spec,
    study_names,
)

#: Fleet wall-clock must stay within 10% of the static plan's.
THRESHOLD = 1.0 / 1.10


def _rows(results):
    return {r.spec_hash: r.to_dict()["rows"] for r in results}


def _run_static(specs, scratch):
    """The pre-fleet CI recipe: 4 static shards per study, merged."""
    with StudyContext() as ctx:
        runner = StudyRunner(context=ctx)
        shard_dirs = []
        for spec in specs:
            for shard in plan_shards(spec, 4).shards:
                out_dir = scratch / f"shard-{len(shard_dirs):03d}"
                write_study_artifacts([runner.run(shard.spec)], out_dir)
                shard_dirs.append(out_dir)
        loaded = []
        for out_dir in shard_dirs:
            loaded.extend(load_study_results(out_dir))
        families, plain = group_by_parent(loaded)
        assert not plain
        return [merge_study_results(family)
                for family in families.values()]


def _run_fleet(specs):
    with StudyContext() as ctx:
        outcome = run_local_fleet(specs, n_workers=1, store=MemoryStore(),
                                  lease_ttl_s=60.0, poll_s=0.01,
                                  timeout_s=600.0, context=ctx)
        assert outcome.status == "done", outcome.reason
        return outcome.results


def test_fleet_overhead_vs_static_sharding(tmp_path):
    """Coordinator-run smoke grids cost <=1.10x the static 4-way plan."""
    specs = [build_spec(name).smoke() for name in study_names()]

    with StudyContext() as ctx:
        reference = _rows(StudyRunner(context=ctx).run(spec)
                          for spec in specs)

    best_ratio = 0.0
    for attempt in range(3):            # retries guard against CI noise
        start = time.perf_counter()
        static_results = _run_static(specs, tmp_path / f"static-{attempt}")
        static_elapsed = time.perf_counter() - start

        start = time.perf_counter()
        fleet_results = _run_fleet(specs)
        fleet_elapsed = time.perf_counter() - start

        # Bit-identity before speed: both paths must equal the reference.
        assert _rows(static_results) == reference
        assert _rows(fleet_results) == reference

        best_ratio = max(best_ratio, static_elapsed / fleet_elapsed)
        if best_ratio >= THRESHOLD:
            break

    record_gate("fleet_overhead_vs_static", best_ratio, round(THRESHOLD, 3),
                unit="x static/fleet wall-clock")
    assert best_ratio >= THRESHOLD, (
        f"fleet pass ran at {best_ratio:.2f}x the static plan's speed; "
        f"gate requires >={THRESHOLD:.3f} (fleet no more than 10% slower)")
