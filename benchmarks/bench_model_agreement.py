"""Benchmark: cross-model agreement on the speculative study (Section 6).

The paper states that its speculative predictions "were seen to be in good
agreement with other related analytical models" (the LogGP model of
Sundaram-Stukel & Vernon and the Los Alamos model of Hoisie et al.).  This
benchmark evaluates all three predictors on the 20-million-cell study at a
range of processor counts and records their relative spread.
"""

from __future__ import annotations

from conftest import run_once, save_report

from repro.experiments.agreement import run_model_agreement
from repro.experiments.report import format_agreement


def test_pace_vs_loggp_vs_hoisie(benchmark, report_dir):
    result = run_once(benchmark, run_model_agreement,
                      processor_counts=[16, 256, 1024, 4096, 8000])
    report = format_agreement(result)
    print("\n" + report)
    save_report(report_dir, "model_agreement", report)

    benchmark.extra_info["worst_spread_pct"] = round(result.worst_spread * 100, 1)
    benchmark.extra_info["worst_deviation_from_pace_pct"] = round(
        result.worst_deviation_from_pace * 100, 1)

    # "Good agreement" between three independently formulated analytic
    # models: all predictions within a factor-level band of each other.
    assert result.worst_spread < 0.6
    assert result.worst_deviation_from_pace < 0.6
    # And every model agrees on the qualitative conclusion: the run time at
    # 8000 processors stays within the same order of magnitude as at 16.
    first, last = result.comparisons[0], result.comparisons[-1]
    for model in ("pace", "loggp", "hoisie"):
        assert last.values[model] < 10 * first.values[model]
