"""Benchmark: batched multi-seed trace replay vs sequential replays.

``test_batched_replay_32_samples_vs_sequential`` is the acceptance gate
of the multi-seed vectorisation: on a 256-rank modelled validation
scenario, ``CompiledTrace.replay_batch`` resolving S=32 jitter-noise
samples in one max-plus pass must be at least 5x faster than 32
sequential single-seed ``replay`` calls — with every sample bit-identical
to its sequential counterpart (elapsed time and per-rank
finish/compute/comm times).

``test_batched_daemon_noise_bit_identical`` asserts the same per-sample
identity under daemon noise (whose data-dependent draw counts force the
per-sample stream kernel, so the win is smaller and recorded for the
trajectory only) and checks one sample against the reference engine at
the matched seed.

Baseline on the reference container (256 ranks, 1 iteration, ~100k
events): 32 sequential jitter replays ~3.3 s vs one batched pass
~0.56 s (~5.9x); daemon-noise batch ~1.1x.
"""

from __future__ import annotations

import time

from gate_report import record_gate

from repro.machines.presets import get_machine
from repro.simnet.noise import NoiseModel
from repro.sweep3d.input import standard_deck

#: Noise seeds resolved per batched pass.
SAMPLES = 32

#: Ranks of the benchmark scenario (the sweep grid the speculative
#: studies actually sample; big enough that per-event Python overhead,
#: not numpy dispatch, dominates the sequential path).
PX, PY = 16, 16


def _plan_256_ranks(machine):
    deck = standard_deck("validation", px=PX, py=PY, max_iterations=1)
    return machine.simulation_plan(deck, PX, PY)


def _jitter_noise(machine, seed=0):
    """The machine's jitter amplitudes without daemon noise (the
    vectorised draw path, and the dominant spread in practice)."""
    return NoiseModel(seed=seed,
                      compute_jitter=machine.compute_jitter,
                      network_jitter=machine.network_jitter,
                      daemon_interval=0.0)


def _sample_key(sim):
    return (sim.elapsed_time,
            tuple((r.finish_time, r.compute_time, r.comm_time)
                  for r in sim.ranks))


def test_batched_replay_32_samples_vs_sequential():
    """One replay_batch pass at S=32 is >=5x 32 sequential replays."""
    machine = get_machine("hypothetical-opteron-myrinet")
    plan = _plan_256_ranks(machine)
    trace = plan.compile_trace()
    noise = _jitter_noise(machine)
    seeds = [noise.seed + offset for offset in range(SAMPLES)]

    batch = trace.replay_batch(seeds, noise)
    singles = [trace.replay(noise.reseeded(seed)) for seed in seeds]
    for index, single in enumerate(singles):
        assert batch.elapsed[index] == single.elapsed_time
        assert _sample_key(batch.sample(index)) == _sample_key(single)

    best_speedup = 0.0
    for _ in range(2):                          # one retry guards against noise
        start = time.perf_counter()
        for seed in seeds:
            trace.replay(noise.reseeded(seed))
        sequential_elapsed = time.perf_counter() - start
        start = time.perf_counter()
        trace.replay_batch(seeds, noise)
        batched_elapsed = time.perf_counter() - start
        best_speedup = max(best_speedup, sequential_elapsed / batched_elapsed)
        if best_speedup >= 5.0:
            break
    print(f"\n{PX}x{PY} ranks, S={SAMPLES} jitter samples: sequential "
          f"{sequential_elapsed:.2f} s, batched {batched_elapsed:.2f} s, "
          f"speedup {best_speedup:.1f}x ({trace.describe()})")
    record_gate("multiseed_batch_vs_sequential_256rank", best_speedup, 5.0)
    assert best_speedup >= 5.0


def test_batched_daemon_noise_bit_identical():
    """Daemon-noise samples equal sequential replays and the engine."""
    machine = get_machine("hypothetical-opteron-myrinet")
    plan = _plan_256_ranks(machine)
    trace = plan.compile_trace()
    noise = machine.noise_model(0)              # daemon noise on
    seeds = [noise.seed + offset for offset in range(8)]

    batch = trace.replay_batch(seeds, noise)
    for index, seed in enumerate(seeds):
        single = trace.replay(noise.reseeded(seed))
        assert batch.elapsed[index] == single.elapsed_time
        assert _sample_key(batch.sample(index)) == _sample_key(single)

    # One engine run closes the chain: batch sample == replay == engine.
    engine_run = plan.run(noise=machine.noise_model(0), mode="engine")
    assert batch.elapsed[0] == engine_run.elapsed_time
    assert _sample_key(batch.sample(0)) == _sample_key(engine_run.simulation)

    speedup = 0.0
    for _ in range(2):                          # one retry guards against noise
        start = time.perf_counter()
        for seed in seeds:
            trace.replay(noise.reseeded(seed))
        sequential_elapsed = time.perf_counter() - start
        start = time.perf_counter()
        trace.replay_batch(seeds, noise)
        batched_elapsed = time.perf_counter() - start
        speedup = max(speedup, sequential_elapsed / batched_elapsed)
        if speedup >= 1.0:
            break
    print(f"\n{PX}x{PY} ranks, 8 daemon-noise samples: sequential "
          f"{sequential_elapsed:.2f} s, batched {batched_elapsed:.2f} s, "
          f"speedup {speedup:.1f}x")
    # The per-sample daemon stream kernel caps the win; the identity is
    # the gate here, the speedup is recorded for the trajectory only and
    # must merely stay close to parity (no regression vs sequential).
    record_gate("multiseed_batch_daemon_256rank", speedup, 0.8)
    assert speedup >= 0.8


def test_batched_replay_speed(benchmark):
    """Absolute cost of one S=32 batched pass (for trend tracking)."""
    machine = get_machine("hypothetical-opteron-myrinet")
    plan = _plan_256_ranks(machine)
    trace = plan.compile_trace()
    noise = _jitter_noise(machine)
    seeds = [noise.seed + offset for offset in range(SAMPLES)]

    batch = benchmark(lambda: trace.replay_batch(seeds, noise))
    assert batch.elapsed_mean > 0
    benchmark.extra_info["events"] = trace.n_events
    benchmark.extra_info["samples"] = SAMPLES
