"""Benchmark: the warm prediction service vs cold one-shot processes.

``test_warm_service_vs_cold_one_shots`` is the acceptance gate of the
always-on service: N concurrent predict requests against a warm
:class:`~repro.service.core.PredictionService` (real socket, real HTTP)
must complete at least 5x faster than the same N predictions evaluated
cold — ``api.clear_cached_context()`` before every call, so each one
pays the PSL parse+compile and machine profiling a freshly started
process would pay.  Every served number is asserted bit-identical to
its cold counterpart first; the speedup is meaningless if the service
returned different values.

The warm pass is served from the in-memory result LRU (the requests
repeat the priming pass), so the gate measures what an interactive
client of a long-lived service actually experiences: routing + protocol
overhead against memoised results, not model evaluation.

Baseline on the reference container (8 configurations, iterations=2):
cold one-shots ~0.25 s total vs 8 concurrent warm requests over the
socket ~0.03 s (~8x); the 5x threshold leaves room for slow CI runners.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor

from gate_report import record_gate

import repro.api as api
from repro.service.core import BackgroundServer

MACHINE = "pentium3-myrinet"
ITERATIONS = 2

#: The benchmark's request set: distinct small validation geometries.
CONFIGS = ((1, 1), (1, 2), (2, 1), (2, 2), (2, 3), (3, 2), (2, 4), (4, 2))


def test_warm_service_vs_cold_one_shots(tmp_path):
    """N concurrent warm service predicts are >=5x N cold one-shots."""
    # Cold baseline: every prediction rebuilds the full context, exactly
    # like a fresh `repro-sweep3d` process would.
    cold_results = {}
    start = time.perf_counter()
    for px, py in CONFIGS:
        api.clear_cached_context()
        cold_results[(px, py)] = api.predict(MACHINE, px, py,
                                             iterations=ITERATIONS)
    cold_elapsed = time.perf_counter() - start
    api.clear_cached_context()

    with BackgroundServer(cache_dir=tmp_path / "cache") as server:
        client = api.ServiceClient(port=server.port)

        # Priming pass: compute once, and prove bit-identity while at it.
        for px, py in CONFIGS:
            response = client.predict(MACHINE, px, py,
                                      iterations=ITERATIONS)
            cold = cold_results[(px, py)]
            assert response.total_time == cold.total_time
            assert response.compute_time == cold.compute_time
            assert response.communication_time == cold.communication_time

        def fetch(config):
            px, py = config
            return api.ServiceClient(port=server.port).predict(
                MACHINE, px, py, iterations=ITERATIONS)

        best_speedup = 0.0
        with ThreadPoolExecutor(max_workers=len(CONFIGS)) as pool:
            for _ in range(2):              # one retry guards against noise
                start = time.perf_counter()
                responses = list(pool.map(fetch, CONFIGS))
                warm_elapsed = time.perf_counter() - start
                speedup = cold_elapsed / warm_elapsed
                best_speedup = max(best_speedup, speedup)
                if best_speedup >= 5.0:
                    break

        for (px, py), response in zip(CONFIGS, responses):
            assert response.source == "memory"
            assert response.total_time == cold_results[(px, py)].total_time

        stats = client.stats()
        assert stats.lru["hits"] >= len(CONFIGS)

    record_gate("service_warm_vs_cold_predicts", best_speedup, 5.0)
    assert best_speedup >= 5.0, (
        f"warm service pass {best_speedup:.1f}x vs cold one-shots; "
        f"gate requires >=5x (cold {cold_elapsed:.3f}s)")
