"""Benchmark: cost of producing a simulated "measurement" (the DES backend).

``test_sim_sweep_25_points_batched_vs_naive`` is the acceptance gate of the
batched-simulation refactor: a 25-point (px, py) scenario grid evaluated
through ``SweepRunner`` with the registered ``SimulationBackend`` must be at
least 3x faster than the per-point path (a fresh ``ClusterEngine``,
decomposition, quadrature and per-block operation-mix pricing per point —
the seed's ``machine.simulate``) while producing bit-identical results:
same elapsed times, same per-rank finish times, same message counts.

The batched path wins by lowering each configuration once into a
``SimulationPlan`` and pricing every distinct compute-block shape once in a
sweep-wide ``SweepCostTable`` (weak scaling means all 25 points share the
same shapes), instead of rebuilding ``OperationMix`` objects for every
block of every rank of every iteration.

``test_sim_sweep_disk_cache_warm_run`` is the persistence gate: a second
run of the same grid against a shared cache directory must be served from
disk (> 0 hits — in fact all 25) with identical results and no
re-simulation.

Baseline on the reference container: 25-point grid (2 source iterations)
~2.5 s naive vs ~0.65 s batched (~3.9x), warm disk-cached rerun ~3 ms.
"""

from __future__ import annotations

import time

from gate_report import record_gate

from repro.experiments.backends import SimulationBackend, simulation_grid
from repro.experiments.sweep import SweepRunner
from repro.machines.presets import get_machine
from repro.sweep3d.input import standard_deck

#: Source iterations per simulated run (kept small; scales both paths).
ITERATIONS = 2

#: The (px, py) grid of the gate: 25 points, 1..25 ranks.
ARRAYS = [(px, py) for px in range(1, 6) for py in range(1, 6)]


def _run_naive(machine, backend) -> tuple[float, list]:
    """Per-point engine construction: the seed's measurement path."""
    start = time.perf_counter()
    results = []
    for scenario in simulation_grid(ARRAYS):
        deck, px, py = backend.deck_for(scenario)
        offset = backend.seed_offset_for(scenario, deck, px, py)
        run = machine.simulate(deck, px, py, numeric=False, seed_offset=offset)
        results.append((run.elapsed_time,
                        tuple(r.finish_time for r in run.simulation.ranks),
                        run.total_messages))
    return time.perf_counter() - start, results


def _run_batched(machine, cache=None) -> tuple[float, list, SweepRunner]:
    """The scenario grid through SweepRunner + the registered backend."""
    start = time.perf_counter()
    runner = SweepRunner(
        backend=SimulationBackend(machine, max_iterations=ITERATIONS),
        cache=cache)
    outcomes = runner.run(simulation_grid(ARRAYS))
    elapsed = time.perf_counter() - start
    results = [(o.result.elapsed_time, o.result.rank_finish_times,
                o.result.total_messages) for o in outcomes]
    return elapsed, results, runner


def test_sim_sweep_25_points_batched_vs_naive():
    """The batched simulation backend is >=3x the per-point engine path."""
    machine = get_machine("pentium3-myrinet")
    backend = SimulationBackend(machine, max_iterations=ITERATIONS)

    best_speedup = 0.0
    for _ in range(2):                      # one retry guards against noise
        naive_elapsed, naive_results = _run_naive(machine, backend)
        batched_elapsed, batched_results, _ = _run_batched(machine)
        assert batched_results == naive_results     # bit-identical, all 25 points
        best_speedup = max(best_speedup, naive_elapsed / batched_elapsed)
        if best_speedup >= 3.0:
            break
    print(f"\n25-point simulation sweep: naive {naive_elapsed:.2f}s, "
          f"batched {batched_elapsed:.2f}s, speedup {best_speedup:.1f}x")
    record_gate("sim_sweep_25pt_batched_vs_naive", best_speedup, 3.0)
    assert best_speedup >= 3.0


def test_sim_sweep_disk_cache_warm_run(tmp_path):
    """A warm rerun against the shared disk store simulates nothing."""
    machine = get_machine("pentium3-myrinet")
    cache_dir = tmp_path / "sweep-cache"

    _, cold_results, cold_runner = _run_batched(machine, cache=str(cache_dir))
    assert cold_runner.disk_stats.stores == len(ARRAYS)

    warm_elapsed, warm_results, warm_runner = _run_batched(
        machine, cache=str(cache_dir))
    assert warm_runner.disk_stats.hits > 0
    assert warm_runner.disk_stats.hits == len(ARRAYS)
    assert warm_runner.disk_stats.misses == 0
    assert warm_runner.stats.predictions == 0       # nothing re-simulated
    assert warm_results == cold_results
    print(f"\nwarm disk-cached rerun: {warm_elapsed * 1000:.0f} ms "
          f"({warm_runner.disk_stats.describe()})")
    record_gate("sim_sweep_disk_cache_warm_hit_rate",
                warm_runner.disk_stats.hit_rate, 1.0, unit="hit rate")


def test_batched_sim_sweep_speed(benchmark):
    """Absolute cost of the batched 25-point sweep (for trend tracking)."""
    machine = get_machine("pentium3-myrinet")
    runner = SweepRunner(
        backend=SimulationBackend(machine, max_iterations=ITERATIONS))

    outcomes = benchmark.pedantic(
        lambda: runner.run(simulation_grid(ARRAYS)), rounds=3, iterations=1)
    assert len(outcomes) == len(ARRAYS)
    benchmark.extra_info["cost_table_hit_rate"] = round(
        runner.stats.subtask_hit_rate, 3)


def test_single_simulation_speed(benchmark):
    """One Table-1 style measurement (2x2, 2 iterations) via the plan path."""
    machine = get_machine("pentium3-myrinet")
    deck = standard_deck("validation", px=2, py=2, max_iterations=ITERATIONS)
    plan = machine.simulation_plan(deck, 2, 2)

    result = benchmark(lambda: plan.run(noise=machine.noise_model(4)))
    assert result.elapsed_time > 0
    benchmark.extra_info["simulated_seconds"] = round(result.elapsed_time, 2)
