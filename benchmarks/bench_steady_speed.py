"""Benchmark: steady-state cycle-mean tier vs full trace replay.

``test_steady_vs_replay_4x4_long_run`` is the acceptance gate of the
periodic-trace steady-state tier: on a 16-rank modelled validation
scenario iterated long enough that the periodic bulk dominates
(~320 source iterations, ~3.3M events), ``SimulationPlan.run
(mode="steady")`` — which replays only the warm-up plus a short lock-in
window and extrapolates the repeating bulk as a max-plus cycle mean —
must resolve the run at least 20x faster than the full O(events) trace
replay, bit-identical down to the last rank counter: same elapsed time,
per-rank finish/compute/comm times, message and traffic statistics.

``test_steady_refuses_loudly_and_falls_back`` locks the other half of
the contract: on a machine whose cost table is not quantised (sums of
its durations are not exactly representable), the steady tier must
*refuse* — recording the reason on ``plan.last_steady_refusal`` — and
fall back to a replay that still matches the engine bit for bit.
Silent wrong-but-fast extrapolation is the failure mode this guards.

``test_steady_scaling_smoke_uses_steady_tier`` is the end-to-end gate:
the ``steady-scaling`` study's smoke grid, run with the default
``sim_execution="auto"``, must actually land every scenario on the
steady tier (per-scenario execution counts in ``StudyResult.execution``)
and produce rows identical to the forced-engine path modulo the tier
column itself.

Baseline on the reference container (16 ranks, 320 iterations, ~3.3M
events): full replay ~0.9 s/run vs steady ~25 ms/run (~35x); the
one-off capture pass (~25 s) is shared by both paths and amortised
across the sweep exactly as in the replay tier.
"""

from __future__ import annotations

import time

from gate_report import record_gate

from repro.experiments.study import build_spec, run_study
from repro.machines.presets import get_machine
from repro.sweep3d.input import standard_deck

#: Source iterations per simulated run.  Long enough that the periodic
#: bulk dwarfs the warm-up + lock-in window the steady tier replays.
ITERATIONS = 320

#: Runs per timing sample (the steady pass is fast; average timer noise).
RUNS = 3


def _result_key(run):
    """Everything the gate compares, down to the last bit."""
    sim = run.simulation
    return (
        sim.elapsed_time,
        tuple((r.finish_time, r.compute_time, r.comm_time, r.messages_sent,
               r.bytes_sent, r.messages_received, r.bytes_received)
              for r in sim.ranks),
        sim.traffic.messages,
        sim.traffic.bytes,
        sim.traffic.intra_node_messages,
        sim.traffic.inter_node_messages,
        tuple(sorted(sim.traffic.by_tag.items())),
        tuple(run.error_history),
    )


def _long_plan(machine, iterations=ITERATIONS):
    deck = standard_deck("validation", px=4, py=4, max_iterations=iterations)
    return machine.simulation_plan(deck, 4, 4)


def test_steady_vs_replay_4x4_long_run():
    """Steady tier is >=20x a full replay on a long 16-rank run."""
    machine = get_machine("steady")              # quantised cost table
    plan = _long_plan(machine)
    trace = plan.compile_trace()

    replayed = plan.run(mode="replay")
    steadied = plan.run(mode="steady")
    assert plan.last_execution == "steady", plan.last_steady_refusal
    assert plan.steadies >= 1
    assert _result_key(steadied) == _result_key(replayed)

    # A short engine run closes the chain on the same machine: the tiers
    # agree with the per-event reference, not merely with each other.
    short = _long_plan(machine, iterations=12)
    assert _result_key(short.run(mode="steady")) == \
        _result_key(short.run(mode="engine"))

    best_speedup = 0.0
    for _ in range(2):                          # one retry guards against noise
        start = time.perf_counter()
        for _ in range(RUNS):
            plan.run(mode="replay")
        replay_elapsed = time.perf_counter() - start
        start = time.perf_counter()
        for _ in range(RUNS):
            plan.run(mode="steady")
        steady_elapsed = time.perf_counter() - start
        best_speedup = max(best_speedup, replay_elapsed / steady_elapsed)
        if best_speedup >= 20.0:
            break
    print(f"\n16-rank x{ITERATIONS}-iteration run: replay "
          f"{replay_elapsed / RUNS * 1e3:.0f} ms, steady "
          f"{steady_elapsed / RUNS * 1e3:.1f} ms, "
          f"speedup {best_speedup:.1f}x ({trace.describe()})")
    record_gate("steady_vs_replay_16rank_long", best_speedup, 20.0)
    assert best_speedup >= 20.0


def test_steady_refuses_loudly_and_falls_back():
    """Non-dyadic costs refuse with a reason; the fallback stays exact."""
    machine = get_machine("hypothetical-opteron-myrinet")   # continuous
    plan = _long_plan(machine, iterations=12)

    run = plan.run(mode="steady")
    assert plan.last_execution == "replay"
    assert plan.steadies == 0
    assert "dyadic" in plan.last_steady_refusal
    assert _result_key(run) == _result_key(plan.run(mode="engine"))

    # Noise refuses too — extrapolation would erase the drawn stream.
    quantised = _long_plan(get_machine("steady"), iterations=12)
    noisy = quantised.run(noise=machine.noise_model(3), mode="steady")
    assert quantised.last_execution == "replay"
    assert "noise" in quantised.last_steady_refusal
    assert _result_key(noisy) == \
        _result_key(quantised.run(noise=machine.noise_model(3), mode="engine"))
    record_gate("steady_loud_fallback_identical", 1.0, 1.0, unit="identical")


def test_steady_scaling_smoke_uses_steady_tier():
    """steady-scaling smoke lands on the steady tier, rows == engine."""
    auto = run_study(build_spec("steady-scaling").smoke())
    engine = run_study(build_spec("steady-scaling",
                                  sim_execution="engine").smoke())

    assert sum(auto.execution.values()) == len(auto.rows)
    assert auto.execution == {"steady": len(auto.rows)}
    assert engine.execution == {"engine": len(engine.rows)}

    def strip(rows):
        return [{k: v for k, v in row.items() if k != "tier"} for row in rows]

    assert strip(auto.rows) == strip(engine.rows)
    record_gate("steady_scaling_smoke_identical", 1.0, 1.0, unit="identical")


def test_steady_replay_speed(benchmark):
    """Absolute cost of one steady-tier resolution (for trend tracking)."""
    machine = get_machine("steady")
    plan = _long_plan(machine)
    plan.compile_trace()
    plan.run(mode="steady")                     # warm the period analysis

    result = benchmark(lambda: plan.run(mode="steady"))
    assert result.elapsed_time > 0
    benchmark.extra_info["events"] = plan.compile_trace().n_events
    benchmark.extra_info["iterations"] = ITERATIONS
    benchmark.extra_info["simulated_seconds"] = round(result.elapsed_time, 2)
