"""Benchmark: regenerate Table 1 (Pentium-3 / Myrinet 2000 cluster).

The paper's Table 1 validates the PACE model on 24 weak-scaled
configurations (4 to 112 processors, 50^3 cells per processor, mk=10,
12 iterations) and reports a maximum error below 10% with an average of
3.41%.  This benchmark reproduces every row: the prediction comes from the
PACE evaluation engine, the measurement from the discrete-event cluster
simulator, and the error statistics are attached to the benchmark record.
"""

from __future__ import annotations

from conftest import run_once, save_report

from repro.experiments.report import format_validation_table
from repro.experiments.tables import run_table


def test_table1_full_reproduction(benchmark, report_dir):
    result = run_once(benchmark, run_table, "table1", simulate_measurement=True,
                      max_iterations=12)
    report = format_validation_table(result)
    print("\n" + report)
    save_report(report_dir, "table1", report)

    benchmark.extra_info["rows"] = len(result.rows)
    benchmark.extra_info["max_abs_error_pct"] = round(result.max_abs_error, 2)
    benchmark.extra_info["avg_abs_error_pct"] = round(result.average_abs_error, 2)
    benchmark.extra_info["paper_avg_abs_error_pct"] = 3.41

    # The headline claim of the paper: every error is below 10%.
    assert len(result.rows) == 24
    assert result.max_abs_error < 10.0
    # Predictions must follow the paper's weak-scaling shape: monotone
    # growth with the processor count and within 25% of the published
    # measurements at both ends of the table.
    predictions = result.predictions()
    assert predictions[-1] > predictions[0]
    assert abs(predictions[0] - 26.54) / 26.54 < 0.25
    assert abs(predictions[-1] - 46.32) / 46.32 < 0.25


def test_table1_prediction_only(benchmark, report_dir):
    """Prediction-only variant (no simulated measurement): the cost of using
    the model the way a procurement study would, for all 24 rows."""
    result = run_once(benchmark, run_table, "table1", simulate_measurement=False,
                      max_iterations=12)
    report = format_validation_table(result)
    save_report(report_dir, "table1_prediction_only", report)
    benchmark.extra_info["rows"] = len(result.rows)
    for row in result.rows:
        assert row.predicted == row.predicted  # not NaN
        assert abs(row.predicted - row.paper_measured) / row.paper_measured < 0.25
