"""Benchmark: regenerate Table 2 (AMD Opteron / Gigabit Ethernet cluster).

Nine weak-scaled configurations from 4 to 30 processors; the paper reports
an average error of 5.35% with every row below 10%.
"""

from __future__ import annotations

from conftest import run_once, save_report

from repro.experiments.report import format_validation_table
from repro.experiments.tables import run_table


def test_table2_full_reproduction(benchmark, report_dir):
    result = run_once(benchmark, run_table, "table2", simulate_measurement=True,
                      max_iterations=12)
    report = format_validation_table(result)
    print("\n" + report)
    save_report(report_dir, "table2", report)

    benchmark.extra_info["rows"] = len(result.rows)
    benchmark.extra_info["max_abs_error_pct"] = round(result.max_abs_error, 2)
    benchmark.extra_info["avg_abs_error_pct"] = round(result.average_abs_error, 2)
    benchmark.extra_info["paper_avg_abs_error_pct"] = 5.35

    assert len(result.rows) == 9
    assert result.max_abs_error < 10.0
    predictions = result.predictions()
    assert predictions == sorted(predictions)
    # Absolute times in the same ballpark as the published 8.98-12.07 s range.
    assert abs(predictions[0] - 8.98) / 8.98 < 0.25
    assert abs(predictions[-1] - 12.07) / 12.07 < 0.25
