"""Benchmark: regenerate Table 3 (SGI Altix Itanium-2 56-way SMP).

Sixteen configurations from 4 to 56 processors on the shared-memory Altix;
the paper reports an average error of 6.23% (all rows positive — the model
under-predicts on this machine) with every row below 10%.
"""

from __future__ import annotations

from conftest import run_once, save_report

from repro.experiments.report import format_validation_table
from repro.experiments.tables import run_table


def test_table3_full_reproduction(benchmark, report_dir):
    result = run_once(benchmark, run_table, "table3", simulate_measurement=True,
                      max_iterations=12)
    report = format_validation_table(result)
    print("\n" + report)
    save_report(report_dir, "table3", report)

    benchmark.extra_info["rows"] = len(result.rows)
    benchmark.extra_info["max_abs_error_pct"] = round(result.max_abs_error, 2)
    benchmark.extra_info["avg_abs_error_pct"] = round(result.average_abs_error, 2)
    benchmark.extra_info["paper_avg_abs_error_pct"] = 6.23

    assert len(result.rows) == 16
    assert result.max_abs_error < 10.0
    predictions = result.predictions()
    assert predictions[-1] > predictions[0]
    assert abs(predictions[0] - 14.66) / 14.66 < 0.25
    assert abs(predictions[-1] - 21.04) / 21.04 < 0.25
