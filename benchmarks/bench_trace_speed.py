"""Benchmark: trace-compiled replay of modelled simulated runs.

``test_trace_replay_16_rank_vs_engine`` is the acceptance gate of the
trace-replay optimisation: on a 16-rank modelled validation scenario the
compiled trace (``SimulationPlan.compile_trace()`` — the event stream
recorded once, each run resolved as a vectorised max-plus recurrence)
must replay at least 10x faster than a ``ClusterEngine`` run of the same
plan, with bit-identical results — same elapsed time, same per-rank
finish/compute/comm times, same message and traffic statistics.

``test_trace_replay_noisy_bit_identical`` asserts the same identity for
noisy runs at matched seeds (the noise stream is consumed at the recorded
draw sites in exactly the engine's order) and records the noisy-replay
speedup; daemon noise forces the scalar draw loop, so the win there is
smaller but the identity is absolute.

``test_trace_smoke_studies_bit_identical`` is the end-to-end gate: a
``run --all --smoke`` pass with trace replay enabled (the default,
``sim_execution="auto"``) produces row/CSV artifacts bit-identical to the
forced engine path for all nine registered studies.

Baseline on the reference container (16 ranks, 2 iterations, ~10k
events): engine ~40 ms/run vs replay ~1.7 ms/run (~24x); trace capture
~27 ms (less than one engine run, so even a single-shot scenario grid is
not slower); noisy replay ~11 ms (~5x).
"""

from __future__ import annotations

import time

from gate_report import record_gate

from repro.experiments.artifacts import write_study_artifacts
from repro.experiments.study import build_spec, get_study, run_studies, study_names
from repro.machines.presets import get_machine
from repro.sweep3d.input import standard_deck

#: Source iterations per simulated run (kept small; scales both paths).
ITERATIONS = 2

#: Runs per timing sample (replay is fast; average out timer noise).
RUNS = 5


def _result_key(run):
    """Everything the gate compares, down to the last bit."""
    sim = run.simulation
    return (
        sim.elapsed_time,
        tuple((r.finish_time, r.compute_time, r.comm_time, r.messages_sent,
               r.bytes_sent, r.messages_received, r.bytes_received)
              for r in sim.ranks),
        sim.traffic.messages,
        sim.traffic.bytes,
        sim.traffic.intra_node_messages,
        sim.traffic.inter_node_messages,
        tuple(sorted(sim.traffic.by_tag.items())),
        tuple(run.error_history),
    )


def _plan_16_ranks(machine):
    deck = standard_deck("validation", px=4, py=4, max_iterations=ITERATIONS)
    return machine.simulation_plan(deck, 4, 4)


def test_trace_replay_16_rank_vs_engine():
    """Replay is >=10x the engine on a 16-rank modelled scenario, bit-identical."""
    machine = get_machine("pentium3-myrinet")
    plan = _plan_16_ranks(machine)

    reference = plan.run(mode="engine")         # warms the cost table
    trace = plan.compile_trace()
    replayed = plan.run(mode="replay")
    assert _result_key(replayed) == _result_key(reference)
    assert trace.n_messages == reference.total_messages

    best_speedup = 0.0
    for _ in range(2):                          # one retry guards against noise
        start = time.perf_counter()
        for _ in range(RUNS):
            plan.run(mode="engine")
        engine_elapsed = time.perf_counter() - start
        start = time.perf_counter()
        for _ in range(RUNS):
            plan.run(mode="replay")
        replay_elapsed = time.perf_counter() - start
        best_speedup = max(best_speedup, engine_elapsed / replay_elapsed)
        if best_speedup >= 10.0:
            break
    print(f"\n16-rank modelled run: engine {engine_elapsed / RUNS * 1e3:.1f} ms, "
          f"replay {replay_elapsed / RUNS * 1e3:.2f} ms, "
          f"speedup {best_speedup:.1f}x ({trace.describe()})")
    record_gate("trace_replay_vs_engine_16rank", best_speedup, 10.0)
    assert best_speedup >= 10.0


def test_trace_replay_noisy_bit_identical():
    """Noisy replays at matched seeds equal the engine bit for bit."""
    machine = get_machine("pentium3-myrinet")
    plan = _plan_16_ranks(machine)

    for seed in (1, 17, 4242):
        engine_run = plan.run(noise=machine.noise_model(seed), mode="engine")
        replay_run = plan.run(noise=machine.noise_model(seed), mode="replay")
        assert _result_key(replay_run) == _result_key(engine_run)

    start = time.perf_counter()
    for _ in range(RUNS):
        plan.run(noise=machine.noise_model(7), mode="engine")
    engine_elapsed = time.perf_counter() - start
    start = time.perf_counter()
    for _ in range(RUNS):
        plan.run(noise=machine.noise_model(7), mode="replay")
    replay_elapsed = time.perf_counter() - start
    speedup = engine_elapsed / replay_elapsed
    print(f"\nnoisy 16-rank run: engine {engine_elapsed / RUNS * 1e3:.1f} ms, "
          f"replay {replay_elapsed / RUNS * 1e3:.2f} ms, speedup {speedup:.1f}x")
    # Daemon noise serialises the draw loop; the identity is the gate here,
    # the speedup is recorded for the trajectory only.
    record_gate("trace_replay_noisy_16rank", speedup, 1.0)
    assert speedup >= 1.0


def test_trace_capture_amortises_within_one_run():
    """Capture + replay does not cost more than ~2 engine runs.

    The backend trace-replays every modelled scenario by default, so a
    grid whose every point is evaluated once must not regress: the
    capture pass (generators driven once, no timing arithmetic) plus one
    replay has to stay in the same ballpark as a single engine run
    (~0.75x on the reference container; the bound leaves headroom for
    loaded CI runners, and a best-of-2 retry absorbs one-off hiccups).
    """
    machine = get_machine("pentium3-myrinet")

    plan = _plan_16_ranks(machine)
    plan.run(mode="engine")                     # warm the cost table
    start = time.perf_counter()
    for _ in range(3):
        plan.run(mode="engine")
    engine_elapsed = (time.perf_counter() - start) / 3

    best_ratio = float("inf")
    for _ in range(2):                          # one retry guards against noise
        fresh = _plan_16_ranks(machine)
        start = time.perf_counter()
        fresh.compile_trace()
        fresh.run(noise=machine.noise_model(3), mode="replay")
        cold_elapsed = time.perf_counter() - start
        best_ratio = min(best_ratio, cold_elapsed / engine_elapsed)
        if best_ratio <= 2.0:
            break
    print(f"\ncold capture+replay {cold_elapsed * 1e3:.1f} ms vs engine "
          f"{engine_elapsed * 1e3:.1f} ms (best ratio {best_ratio:.2f})")
    # record_gate treats higher as better; record engine-runs-per-cold-start.
    record_gate("trace_cold_capture_vs_engine", 1.0 / best_ratio, 0.5,
                unit="engine runs per cold capture+replay (inverse ratio)")
    assert best_ratio <= 2.0


def test_trace_smoke_studies_bit_identical(tmp_path):
    """run --all --smoke with replay == the engine path, all nine studies.

    ``sim_execution`` is a spec parameter, so the two runs have different
    spec hashes by construction; the identity that matters — and is
    asserted — is the produced data: per-study columns, rows and CSV
    bytes.
    """
    auto_specs, engine_specs = [], []
    for name in study_names():
        auto_specs.append(build_spec(name).smoke())
        params = {}
        if "sim_execution" in get_study(name).defaults:
            params["sim_execution"] = "engine"
        engine_specs.append(build_spec(name, **params).smoke())

    auto_results = run_studies(auto_specs)
    engine_results = run_studies(engine_specs)
    write_study_artifacts(auto_results, tmp_path / "auto")
    write_study_artifacts(engine_results, tmp_path / "engine")

    assert len(auto_results) == len(engine_results) == len(study_names())
    for auto, engine in zip(auto_results, engine_results):
        assert auto.spec.study == engine.spec.study
        assert auto.columns == engine.columns
        assert auto.rows == engine.rows, f"{auto.spec.study} rows differ"
        name = auto.spec.study
        auto_csv = (tmp_path / "auto" / f"{name}.csv").read_bytes()
        engine_csv = (tmp_path / "engine" / f"{name}.csv").read_bytes()
        assert auto_csv == engine_csv, f"{name} CSV differs"
    record_gate("trace_smoke_studies_identical", 1.0, 1.0, unit="identical")


def test_trace_replay_speed(benchmark):
    """Absolute cost of one 16-rank noisy replay (for trend tracking)."""
    machine = get_machine("pentium3-myrinet")
    plan = _plan_16_ranks(machine)
    plan.compile_trace()

    result = benchmark(lambda: plan.run(noise=machine.noise_model(4),
                                        mode="replay"))
    assert result.elapsed_time > 0
    benchmark.extra_info["events"] = plan.compile_trace().n_events
    benchmark.extra_info["simulated_seconds"] = round(result.elapsed_time, 2)
