"""Shared helpers for the benchmark harness.

Each benchmark regenerates one table or figure of the paper.  Because a
single regeneration is already a substantial amount of work (a full
validation table simulates dozens of cluster runs), benchmarks execute one
round of one iteration and attach the reproduced-vs-published numbers to
``benchmark.extra_info``; the rendered reports are also written to
``benchmarks/output/`` so they can be inspected after the run.
"""

from __future__ import annotations

import pathlib

import pytest

#: Directory the rendered table/figure reports are written into.
OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def report_dir() -> pathlib.Path:
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    return OUTPUT_DIR


def save_report(report_dir: pathlib.Path, name: str, text: str) -> None:
    """Persist a rendered report next to the benchmark results."""
    (report_dir / f"{name}.txt").write_text(text + "\n")


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
