"""Machine-readable benchmark-gate reporting for the CI perf trajectory.

When the ``BENCH_JSON`` environment variable names a file, every
acceptance gate records its observed value there as it runs::

    {"gates": [{"gate": "...", "observed": 15.3, "threshold": 5.0,
                "unit": "x speedup", "passed": true}, ...]}

CI points ``BENCH_JSON`` at ``BENCH_sweep.json`` and uploads it as a
build artifact, so the speedup trajectory is tracked per commit instead
of living only in scrollback.  Without the variable this module is a
no-op, so local ``pytest benchmarks/`` runs are unaffected.
"""

from __future__ import annotations

import json
import os


def record_gate(name: str, observed: float, threshold: float,
                unit: str = "x speedup") -> None:
    """Append one gate observation to the ``BENCH_JSON`` report file.

    Re-recording a gate (a retry loop's second pass) replaces its entry;
    the file is rewritten whole on every call, so a crashed later gate
    still leaves the earlier observations on disk.
    """
    path = os.environ.get("BENCH_JSON")
    if not path:
        return
    gates = []
    if os.path.exists(path):
        try:
            with open(path) as handle:
                gates = json.load(handle).get("gates", [])
        except (OSError, ValueError):
            gates = []
    gates = [gate for gate in gates if gate.get("gate") != name]
    gates.append({
        "gate": name,
        "observed": round(float(observed), 3),
        "threshold": threshold,
        "unit": unit,
        "passed": bool(observed >= threshold),
    })
    gates.sort(key=lambda gate: gate["gate"])
    with open(path, "w") as handle:
        json.dump({"gates": gates}, handle, indent=2, sort_keys=True)
        handle.write("\n")
