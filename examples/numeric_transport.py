#!/usr/bin/env python
"""Numeric transport run: SWEEP3D as a real solver on the virtual cluster.

The other examples use the simulated cluster purely as a timing instrument
(modelled compute).  This example runs the *numeric* solver — the actual
diamond-difference S_N transport sweep — both serially and decomposed over
a 2x2 processor array on the simulated machine, and checks the physics:

* the parallel flux field is identical to the serial one (the KBA
  decomposition does not change the mathematics),
* the converged solution satisfies particle balance
  (production = absorption + boundary leakage),
* the flux is everywhere non-negative and approaches the infinite-medium
  value deep inside the domain.

Run with::

    python examples/numeric_transport.py [--cells 8 --iterations 20]
"""

from __future__ import annotations

import argparse

import numpy as np

import repro.api as api
from repro.sweep3d.driver import run_serial_sweep
from repro.sweep3d.verification import (
    infinite_medium_flux,
    interior_flux_ratio,
    flux_is_nonnegative,
    particle_balance,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cells", type=int, default=8,
                        help="cells per direction per processor (keep small: numeric mode)")
    parser.add_argument("--iterations", type=int, default=20)
    parser.add_argument("--sn", type=int, default=6, choices=[2, 4, 6, 8])
    args = parser.parse_args()

    deck = api.Sweep3DInput(it=2 * args.cells, jt=2 * args.cells, kt=args.cells,
                            mk=max(1, args.cells // 2), mmi=3, sn=args.sn,
                            epsi=1e-6, max_iterations=args.iterations,
                            sigma_t=1.0, sigma_s=0.5, fixed_source=1.0,
                            label="numeric-example")
    print(deck.describe())

    print("\n=== serial reference solve ===")
    serial = run_serial_sweep(deck)
    print(f"iterations: {serial.iterations} (converged: {serial.converged})")
    print(f"mean scalar flux: {serial.mean_flux():.6f}")
    balance = particle_balance(deck, serial.phi, serial.boundary_leakage)
    print(f"particle balance residual: {balance.relative_residual:.2e}")
    print(f"flux non-negative: {flux_is_nonnegative(serial.phi)}")
    print(f"centre flux / infinite-medium flux "
          f"({infinite_medium_flux(deck):.3f}): {interior_flux_ratio(deck, serial.phi):.3f}")

    print("\n=== parallel solve on the simulated Pentium-3 cluster (2x2) ===")
    run = api.simulate("pentium3-myrinet", 2, 2, deck=deck, numeric=True,
                       with_noise=False)
    phi_parallel = run.global_flux()
    difference = float(np.abs(phi_parallel - serial.phi).max())
    print(f"simulated run time: {run.elapsed_time * 1e3:.2f} ms "
          f"({run.total_messages} messages)")
    print(f"max |parallel - serial| flux difference: {difference:.3e}")
    print(f"iterations (parallel): {run.iterations}")
    print(f"final global flux error: {run.error_history[-1]:.3e}")

    if difference < 1e-12:
        print("\nThe 2-D pipelined decomposition reproduces the serial solution exactly.")
    else:
        print("\nWARNING: parallel and serial solutions differ beyond round-off!")


if __name__ == "__main__":
    main()
