#!/usr/bin/env python
"""Speculative procurement study: the paper's Section 6 (Figures 8 and 9).

The performance model is reused to speculate about a *hypothetical* system:
the 2-way Opteron SMP node architecture combined with the Myrinet 2000
communication model, scaled to 8000 processors.  Two ASCI-relevant problem
sizes are studied — 20 million cells (5x5x100 per processor) and 1 billion
cells (25x25x200 per processor) — with the achieved floating point rate at
its measured value (340 MFLOPS) and increased by 25% and 50% to quantify
the benefit of a processor upgrade.

The example also extrapolates the single-group, 12-iteration benchmark time
to a realistic multigroup calculation (30 energy groups, 1000 time steps),
the scaling the paper uses to argue that this configuration "will grossly
overrun ASCI execution time goals".

Run with::

    python examples/procurement_study.py [--figure figure8] [--max-processors 1024]
"""

from __future__ import annotations

import argparse

from repro.experiments.figures import FIGURE8_STUDY, FIGURE9_STUDY, run_speculative_figure
from repro.experiments.report import format_figure

#: Realistic multigroup workload factors quoted in Section 6 of the paper.
ENERGY_GROUPS = 30
TIME_STEPS = 1000


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--figure", default="figure8", choices=["figure8", "figure9"],
                        help="which speculative figure to reproduce")
    parser.add_argument("--max-processors", type=int, default=8000,
                        help="truncate the processor axis (full study goes to 8000)")
    args = parser.parse_args()

    study = FIGURE8_STUDY if args.figure == "figure8" else FIGURE9_STUDY
    counts = [count for count in study.processor_counts if count <= args.max_processors]
    result = run_speculative_figure(study, processor_counts=counts)
    print(format_figure(result))

    actual = result.actual
    largest = actual.processor_counts[-1]
    benchmark_time = actual.final_time
    # One benchmark run covers 1 energy group and 12 iterations; a realistic
    # calculation runs ~30 groups for ~1000 time steps.
    realistic = benchmark_time * ENERGY_GROUPS * TIME_STEPS
    print(f"\nbenchmark time at {largest} processors           : {benchmark_time:8.2f} s")
    print(f"scaled to {ENERGY_GROUPS} groups x {TIME_STEPS} time steps : "
          f"{realistic:10.0f} s ({realistic / 3600.0:.1f} hours)")
    for factor in study.rate_factors[1:]:
        upgraded = result.series_for(factor).final_time
        print(f"with a +{(factor - 1) * 100:.0f}% processor upgrade the benchmark time "
              f"drops to {upgraded:.2f} s "
              f"({benchmark_time / upgraded:.2f}x faster)")


if __name__ == "__main__":
    main()
