#!/usr/bin/env python
"""Quickstart: predict and "measure" one SWEEP3D configuration.

This example walks the complete PACE workflow of the paper on the Pentium-3
/ Myrinet cluster (the Table 1 machine):

1. characterise the serial kernel — ``capp`` static analysis of the bundled
   C source, verified against the canonical operation counts;
2. build the HMCL hardware object — PAPI-substitute profiling of the
   achieved flop rate plus MPI micro-benchmarks fitted with the A-E
   piece-wise model;
3. evaluate the PSL application model to obtain a *prediction*;
4. run the sweep on the simulated cluster to obtain a *measurement*;
5. compare the two, the way each row of Table 1 does.

Run with::

    python examples/quickstart.py [--px 2 --py 2 --iterations 12]
"""

from __future__ import annotations

import argparse

from repro import units
from repro.core.capp import analyze_sweep_kernel_resource
from repro.core.evaluation import EvaluationEngine
from repro.core.hmcl.parser import format_hmcl
from repro.core.workload import SweepWorkload, load_sweep3d_model
from repro.machines import get_machine
from repro.sweep3d.input import standard_deck
from repro.sweep3d.kernel import SweepKernel


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--machine", default="pentium3-myrinet")
    parser.add_argument("--px", type=int, default=2)
    parser.add_argument("--py", type=int, default=2)
    parser.add_argument("--iterations", type=int, default=12)
    args = parser.parse_args()

    machine = get_machine(args.machine)
    print("=== machine ===")
    print(machine.describe())

    # -- 1. serial kernel characterisation (capp + verification) -----------
    print("\n=== capp static analysis of the sweep kernel ===")
    analysis = analyze_sweep_kernel_resource()
    per_cell = analysis.tally("sweep_block", dict(nx=1, ny=1, mk=1, mmi=1))
    print(f"capp per cell/angle tally : {per_cell.as_dict()}")
    print(f"capp floating point ops   : {per_cell.flops:.0f}")
    print(f"canonical characterisation: {SweepKernel.flops_per_cell_angle():.0f} flops")

    # -- 2. hardware layer: profiling + communication benchmark ------------
    deck = standard_deck("validation", px=args.px, py=args.py,
                         max_iterations=args.iterations)
    profile = machine.profile_flop_rate(deck, args.px, args.py)
    print("\n=== hardware layer ===")
    print(profile.describe())
    hardware = machine.hardware_model(deck, args.px, args.py)
    print("\nHMCL hardware object:")
    print(format_hmcl(hardware))

    # -- 3. prediction (PACE evaluation engine) ----------------------------
    workload = SweepWorkload(deck, args.px, args.py)
    engine = EvaluationEngine(load_sweep3d_model(), hardware)
    prediction = engine.predict(workload.model_variables())
    print("=== prediction ===")
    print(workload.describe())
    print(prediction.describe())

    # -- 4. simulated measurement ------------------------------------------
    print("\n=== simulated measurement ===")
    run = machine.simulate(deck, args.px, args.py)
    print(f"measured (simulated cluster): {units.format_seconds(run.elapsed_time)} "
          f"using {run.total_messages} messages")

    # -- 5. comparison -------------------------------------------------------
    error = units.relative_error(run.elapsed_time, prediction.total_time)
    print("\n=== comparison ===")
    print(f"predicted: {prediction.total_time:8.2f} s")
    print(f"measured : {run.elapsed_time:8.2f} s")
    print(f"error    : {error:+.2f}%  (the paper reports errors below 10%)")


if __name__ == "__main__":
    main()
