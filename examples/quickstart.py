#!/usr/bin/env python
"""Quickstart: predict and "measure" one SWEEP3D configuration.

Everything here goes through the stable :mod:`repro.api` facade and walks
the PACE workflow of the paper on the Pentium-3 / Myrinet cluster (the
Table 1 machine):

1. pick a machine preset and a standard input deck;
2. evaluate the PSL application model to obtain a *prediction*
   (``api.predict`` — the machine's HMCL hardware object is built from its
   profiling and MPI micro-benchmark campaigns under the hood);
3. run the sweep on the simulated cluster to obtain a *measurement*
   (``api.simulate``);
4. compare the two, the way each row of Table 1 does;
5. do the same thing declaratively: the whole of Table 1 is a registered
   *study*, so one serializable spec reproduces the comparison for every
   row at once.

Run with::

    python examples/quickstart.py [--px 2 --py 2 --iterations 12]
"""

from __future__ import annotations

import argparse

import repro.api as api
from repro import units


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--machine", default="pentium3-myrinet")
    parser.add_argument("--px", type=int, default=2)
    parser.add_argument("--py", type=int, default=2)
    parser.add_argument("--iterations", type=int, default=12)
    args = parser.parse_args()

    machine = api.get_machine(args.machine)
    print("=== machine ===")
    print(machine.describe())

    # -- 1-2. prediction (the analytic PACE model) -------------------------
    prediction = api.predict(machine, args.px, args.py,
                             iterations=args.iterations)
    print("\n=== prediction ===")
    print(prediction.describe())

    # -- 3. simulated measurement ------------------------------------------
    print("\n=== simulated measurement ===")
    run = api.simulate(machine, args.px, args.py, iterations=args.iterations)
    print(f"measured (simulated cluster): {units.format_seconds(run.elapsed_time)} "
          f"using {run.total_messages} messages")

    # -- 4. comparison -------------------------------------------------------
    error = units.relative_error(run.elapsed_time, prediction.total_time)
    print("\n=== comparison ===")
    print(f"predicted: {prediction.total_time:8.2f} s")
    print(f"measured : {run.elapsed_time:8.2f} s")
    print(f"error    : {error:+.2f}%  (the paper reports errors below 10%)")

    # -- 5. the same thing, declaratively ------------------------------------
    pes = args.px * args.py
    spec = api.build_spec("table1", max_pes=pes,
                          max_iterations=args.iterations)
    print("\n=== as a registered study ===")
    print(f"spec (hash {spec.spec_hash()[:12]}):")
    print(spec.to_toml())
    result = api.run_study(spec)
    for row in result.rows:
        print(f"{row['data_size']} on {row['pes']} PEs: "
              f"predicted {row['predicted_s']:.2f} s, "
              f"measured {row['measured_s']:.2f} s "
              f"({row['error_pct']:+.2f}%)")


if __name__ == "__main__":
    main()
