#!/usr/bin/env python
"""Validation study: reproduce a slice of the paper's Tables 1-3.

For a chosen machine this example runs a set of weak-scaled configurations
(50x50x50 cells per processor, ``mk=10``), producing for each the PACE
prediction, the simulated measurement and the signed error, side by side
with the values published in the corresponding table of the paper.

Run with::

    python examples/validate_cluster.py --table table2
    python examples/validate_cluster.py --table table1 --max-pes 32 --iterations 4
"""

from __future__ import annotations

import argparse

from repro.experiments.report import format_validation_table
from repro.experiments.tables import run_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--table", default="table2",
                        choices=["table1", "table2", "table3"],
                        help="which of the paper's validation tables to reproduce")
    parser.add_argument("--max-pes", type=int, default=30,
                        help="largest processor count to run (keeps the example fast)")
    parser.add_argument("--iterations", type=int, default=12,
                        help="source iterations (the paper always uses 12)")
    parser.add_argument("--no-measurement", action="store_true",
                        help="skip the discrete-event measurement and only predict")
    args = parser.parse_args()

    result = run_table(args.table,
                       simulate_measurement=not args.no_measurement,
                       max_iterations=args.iterations,
                       max_pes=args.max_pes)
    print(format_validation_table(result))

    errors = result.errors()
    if errors:
        print(f"\nall {len(errors)} reproduced errors are below 10%: "
              f"{all(abs(e) < 10 for e in errors)}")
    else:
        print("\n(measurement skipped; compare the Predicted column against "
              "the Paper Meas. column)")


if __name__ == "__main__":
    main()
