#!/usr/bin/env python
"""Validation study: reproduce a slice of the paper's Tables 1-3.

The validation tables are registered studies, so this example is four
lines of :mod:`repro.api`: build a spec, run it, print the report, write
the JSON/CSV artifacts.  The spec is serializable — the printed TOML can
be saved and re-run verbatim with ``repro-sweep3d run <file>.toml``.

Run with::

    python examples/validate_cluster.py --table table2
    python examples/validate_cluster.py --table table1 --max-pes 32 --iterations 4
    python examples/validate_cluster.py --table table3 --out artifacts/
"""

from __future__ import annotations

import argparse

import repro.api as api
from repro.experiments.report import format_validation_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--table", default="table2",
                        choices=["table1", "table2", "table3"],
                        help="which of the paper's validation tables to reproduce")
    parser.add_argument("--max-pes", type=int, default=30,
                        help="largest processor count to run (keeps the example fast)")
    parser.add_argument("--iterations", type=int, default=12,
                        help="source iterations (the paper always uses 12)")
    parser.add_argument("--no-measurement", action="store_true",
                        help="skip the discrete-event measurement and only predict")
    parser.add_argument("--workers", type=int, default=1,
                        help="multiprocessing fan-out for the row grids")
    parser.add_argument("--out", default=None, metavar="DIR",
                        help="write the JSON/CSV artifacts and manifest here")
    args = parser.parse_args()

    spec = api.build_spec(args.table,
                          simulate_measurement=not args.no_measurement,
                          max_iterations=args.iterations,
                          max_pes=args.max_pes,
                          workers=args.workers)
    print(f"spec (hash {spec.spec_hash()[:12]}):\n{spec.to_toml()}")

    result = api.run_study(spec)
    print(format_validation_table(result.payload))

    errors = result.payload.errors()
    if errors:
        print(f"\nall {len(errors)} reproduced errors are below 10%: "
              f"{all(abs(e) < 10 for e in errors)}")
    else:
        print("\n(measurement skipped; compare the Predicted column against "
              "the Paper Meas. column)")

    if args.out is not None:
        manifest = api.write_study_artifacts([result], args.out)
        print(f"artifacts written; manifest: {manifest}")


if __name__ == "__main__":
    main()
