"""Setuptools shim for environments without the ``wheel`` package.

``pip install -e .`` (PEP 517) needs ``wheel`` to build an editable wheel;
on offline machines without it, ``python setup.py develop`` provides the
same editable install using only setuptools.  All metadata lives in
``pyproject.toml``; the package data is repeated here so that legacy
``setup.py``-driven installs also ship the model resources
(``repro/core/resources``: the PSL model, the HMCL hardware objects and the
capp C kernel) instead of only the ``.py`` files.
"""
from setuptools import setup

setup(
    package_data={
        "repro.core": [
            "resources/*.psl",
            "resources/hardware/*.hmcl",
            "resources/csrc/*.c",
        ],
    },
)
