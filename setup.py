"""Setuptools shim for environments without the ``wheel`` package.

``pip install -e .`` (PEP 517) needs ``wheel`` to build an editable wheel;
on offline machines without it, ``python setup.py develop`` provides the
same editable install using only setuptools.  All metadata lives in
``pyproject.toml``.
"""
from setuptools import setup

setup()
