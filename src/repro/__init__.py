"""repro — reproduction of the PACE predictive performance model of SWEEP3D.

This package reproduces "Predictive Performance Analysis of a Parallel
Pipelined Synchronous Wavefront Application for Commodity Processor Cluster
Systems" (Mudalige, Jarvis, Spooner, Nudd — IEEE Cluster 2006):

* :mod:`repro.core` — the PACE framework itself: the PSL modelling
  language, the ``capp`` static C analyser, the HMCL hardware language,
  the parallel template strategies and the evaluation engine.
* :mod:`repro.sweep3d` — a full Python implementation of the SWEEP3D
  discrete-ordinates wavefront benchmark (serial and KBA-parallel).
* :mod:`repro.simproc` / :mod:`repro.simnet` / :mod:`repro.simmpi` — the
  simulated commodity processors, interconnects and discrete-event MPI
  that stand in for the paper's physical clusters.
* :mod:`repro.profiling` — PAPI-style flop profiling and MPI
  micro-benchmarks that populate the hardware layer.
* :mod:`repro.analytic` — the LogGP and Los Alamos baseline models.
* :mod:`repro.machines` — the paper's four machines as presets.
* :mod:`repro.experiments` — the declarative Study API
  (spec -> runner -> result) plus every registered experiment.
* :mod:`repro.api` — the stable public facade over all of the above.

Quick start::

    import repro.api as api

    prediction = api.predict("pentium3-myrinet", px=2, py=2)
    measurement = api.simulate("pentium3-myrinet", px=2, py=2)
    print(prediction.total_time, measurement.elapsed_time)

    # every experiment of the paper is a registered, serializable study:
    result = api.run_study(api.build_spec("table2", max_pes=16))
    api.write_study_artifacts([result], "artifacts/")
"""

from repro._version import __version__
from repro import errors, units

__all__ = ["__version__", "api", "errors", "units"]


def __getattr__(name: str):
    # ``repro.api`` pulls in the experiments layer; load it lazily so that
    # ``import repro`` stays light for the solver/simulator-only users.
    if name == "api":
        import repro.api as api
        return api
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
