"""repro — reproduction of the PACE predictive performance model of SWEEP3D.

This package reproduces "Predictive Performance Analysis of a Parallel
Pipelined Synchronous Wavefront Application for Commodity Processor Cluster
Systems" (Mudalige, Jarvis, Spooner, Nudd — IEEE Cluster 2006):

* :mod:`repro.core` — the PACE framework itself: the PSL modelling
  language, the ``capp`` static C analyser, the HMCL hardware language,
  the parallel template strategies and the evaluation engine.
* :mod:`repro.sweep3d` — a full Python implementation of the SWEEP3D
  discrete-ordinates wavefront benchmark (serial and KBA-parallel).
* :mod:`repro.simproc` / :mod:`repro.simnet` / :mod:`repro.simmpi` — the
  simulated commodity processors, interconnects and discrete-event MPI
  that stand in for the paper's physical clusters.
* :mod:`repro.profiling` — PAPI-style flop profiling and MPI
  micro-benchmarks that populate the hardware layer.
* :mod:`repro.analytic` — the LogGP and Los Alamos baseline models.
* :mod:`repro.machines` — the paper's four machines as presets.
* :mod:`repro.experiments` — regeneration of Tables 1-3 and Figures 8-9.

Quick start::

    from repro.machines import get_machine
    from repro.core.workload import SweepWorkload, load_sweep3d_model
    from repro.core.evaluation import EvaluationEngine
    from repro.sweep3d.input import standard_deck

    machine = get_machine("pentium3-myrinet")
    deck = standard_deck("validation", px=2, py=2)
    hardware = machine.hardware_model(deck, 2, 2)
    engine = EvaluationEngine(load_sweep3d_model(), hardware)
    prediction = engine.predict(SweepWorkload(deck, 2, 2).model_variables())
    measurement = machine.simulate(deck, 2, 2)
    print(prediction.total_time, measurement.elapsed_time)
"""

from repro._version import __version__
from repro import errors, units

__all__ = ["__version__", "errors", "units"]
