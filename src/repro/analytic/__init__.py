"""Baseline analytic wavefront models.

The paper's related-work section (and its Section 6 claim that the PACE
predictions "concur with other related analytical models") refers to two
hand-crafted analytical models of SWEEP3D:

* the **LogGP** model of Sundaram-Stukel & Vernon (PPoPP'99), expressed in
  the LogGP machine parameters (:mod:`repro.analytic.loggp`), and
* the **Los Alamos** model of Hoisie, Lubeck & Wasserman, expressed as
  total computation + communication time with a pipeline fill term
  (:mod:`repro.analytic.hoisie`).

Both are re-implemented here (as renditions of the published formulations,
parameterised from the same simulated machines) so that the model-agreement
experiment can compare all three predictors on the speculative
configurations.
"""

from repro.analytic.loggp import LogGPParameters, LogGPWavefrontModel
from repro.analytic.hoisie import HoisieWavefrontModel
from repro.analytic.comparison import ModelComparison, compare_models

__all__ = [
    "LogGPParameters",
    "LogGPWavefrontModel",
    "HoisieWavefrontModel",
    "ModelComparison",
    "compare_models",
]
