"""Cross-model agreement: PACE vs LogGP vs the Los Alamos model.

Section 6 of the paper notes that its speculative predictions "concur with
those gained through other related analytical models".  This module runs
the same workload through the three predictors and reports their relative
spread, which the model-agreement benchmark asserts stays within a modest
band.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analytic.hoisie import HoisieWavefrontModel
from repro.analytic.loggp import LogGPParameters, LogGPWavefrontModel
from repro.core.evaluation import EvaluationEngine
from repro.core.hmcl.model import HardwareModel
from repro.core.workload import SweepWorkload, load_sweep3d_model


@dataclass
class ModelComparison:
    """Predictions of the three models for one workload."""

    workload: SweepWorkload
    pace: float
    loggp: float
    hoisie: float

    @property
    def values(self) -> dict[str, float]:
        return {"pace": self.pace, "loggp": self.loggp, "hoisie": self.hoisie}

    @property
    def spread(self) -> float:
        """Relative spread: (max - min) / mean of the three predictions."""
        values = list(self.values.values())
        mean = sum(values) / len(values)
        if mean == 0:
            return 0.0
        return (max(values) - min(values)) / mean

    def max_relative_difference(self, reference: str = "pace") -> float:
        """Largest relative deviation of the other models from ``reference``."""
        base = self.values[reference]
        if base == 0:
            return 0.0
        return max(abs(value - base) / base for key, value in self.values.items()
                   if key != reference)

    def describe(self) -> str:
        return (f"{self.workload.describe()}\n"
                f"  PACE   : {self.pace:10.3f} s\n"
                f"  LogGP  : {self.loggp:10.3f} s\n"
                f"  Hoisie : {self.hoisie:10.3f} s\n"
                f"  spread : {self.spread * 100:.1f}%")


def compare_models(workload: SweepWorkload, hardware: HardwareModel,
                   engine: EvaluationEngine | None = None,
                   pace: float | None = None) -> ModelComparison:
    """Run one workload through PACE, LogGP and the Los Alamos model.

    A precomputed ``pace`` prediction (e.g. from a batched scenario sweep)
    skips the per-call engine evaluation.
    """
    if pace is None:
        if engine is None:
            engine = EvaluationEngine(load_sweep3d_model(), hardware)
        pace = engine.predict(workload.model_variables()).total_time

    seconds_per_flop = hardware.cpu.seconds_per_flop
    loggp_model = LogGPWavefrontModel(LogGPParameters.from_hardware(hardware))
    loggp = loggp_model.predict(workload, seconds_per_flop)

    hoisie_model = HoisieWavefrontModel(hardware)
    hoisie = hoisie_model.predict(workload, seconds_per_flop)

    return ModelComparison(workload=workload, pace=pace, loggp=loggp, hoisie=hoisie)
