"""The Los Alamos (Hoisie et al.) wavefront model.

Hoisie, Lubeck & Wasserman ("Performance and Scalability Analysis of
Teraflop-Scale Parallel Architectures using Multidimensional Wavefront
Applications", IJHPCA 2000; also equation (2) of the reproduced paper)
express the run time as

    T_total = T_computation + T_communication - T_overlap

with the pipelined wavefront captured by the well-known closed form

    T_iter = (N_blocks + pipeline_delay) * (T_block + T_msg)

where ``N_blocks = 8 Kb Ab`` is the number of pipelined stages each
processor executes per iteration and ``pipeline_delay`` counts the extra
stages the far-corner processor waits for across the octant sequence
(approximately ``2 (Px + Py - 2)`` for the two pairs of opposing corners of
the standard octant ordering).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.hmcl.model import HardwareModel
from repro.core.workload import SweepWorkload
from repro.sweep3d.kernel import SweepKernel


@dataclass
class HoisieWavefrontModel:
    """Los Alamos style closed-form predictor for SWEEP3D."""

    hardware: HardwareModel

    # ------------------------------------------------------------------

    def block_compute_time(self, workload: SweepWorkload, seconds_per_flop: float) -> float:
        """Computation time of one pipelined block on one processor."""
        nx, ny, _ = workload.cells_per_processor
        deck = workload.deck
        flops = SweepKernel.flops_per_cell_angle() * nx * ny * deck.mk * deck.mmi
        return flops * seconds_per_flop

    def block_message_time(self, workload: SweepWorkload) -> float:
        """Communication time added to each pipeline stage."""
        nx, ny, _ = workload.cells_per_processor
        deck = workload.deck
        time = 0.0
        if workload.px > 1:
            ew_bytes = ny * deck.mk * deck.mmi * 8.0
            time += self.hardware.mpi.recv_cost(ew_bytes) + self.hardware.mpi.send_cost(ew_bytes)
        if workload.py > 1:
            ns_bytes = nx * deck.mk * deck.mmi * 8.0
            time += self.hardware.mpi.recv_cost(ns_bytes) + self.hardware.mpi.send_cost(ns_bytes)
        return time

    def predict(self, workload: SweepWorkload,
                seconds_per_flop: float | None = None) -> float:
        """Predicted run time of the full SWEEP3D execution.

        ``seconds_per_flop`` defaults to the hardware model's achieved
        floating point cost.
        """
        deck = workload.deck
        if seconds_per_flop is None:
            seconds_per_flop = self.hardware.cpu.seconds_per_flop

        blocks = 8 * deck.n_k_blocks * deck.n_angle_blocks
        t_block = self.block_compute_time(workload, seconds_per_flop)
        t_msg = self.block_message_time(workload)
        delay_stages = 2.0 * (workload.px - 1 + workload.py - 1)

        sweep_iteration = (blocks + delay_stages) * (t_block + t_msg)

        # Non-sweep serial work (source update, convergence test, balance
        # edit) and the two per-iteration collectives.
        nx, ny, _ = workload.cells_per_processor
        cells = nx * ny * deck.kt
        serial = 7.0 * cells * seconds_per_flop
        collective = self.hardware.mpi.collective_cost(workload.nranks, 8.0, phases=2) * 2.0

        return deck.max_iterations * (sweep_iteration + serial + collective)

    # ------------------------------------------------------------------

    def decompose(self, workload: SweepWorkload) -> dict[str, float]:
        """The T_computation / T_communication split of equation (2)."""
        deck = workload.deck
        seconds_per_flop = self.hardware.cpu.seconds_per_flop
        blocks = 8 * deck.n_k_blocks * deck.n_angle_blocks
        t_block = self.block_compute_time(workload, seconds_per_flop)
        t_msg = self.block_message_time(workload)
        delay_stages = 2.0 * (workload.px - 1 + workload.py - 1)
        computation = deck.max_iterations * blocks * t_block
        communication = deck.max_iterations * (
            blocks * t_msg + delay_stages * (t_block + t_msg))
        return {
            "computation": computation,
            "communication": communication,
            "total": self.predict(workload),
        }
