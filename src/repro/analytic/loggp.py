"""A LogGP rendition of the SWEEP3D wavefront model.

Sundaram-Stukel & Vernon (PPoPP'99) model SWEEP3D in the LogGP parameters:

* ``L`` — network latency,
* ``o`` — per-message CPU overhead (send or receive side),
* ``g`` — gap between consecutive messages,
* ``G`` — gap per byte (reciprocal bandwidth),
* ``P`` — processor count,

interleaving the per-block computation ``W`` with the communication of the
east-west and north-south boundary messages at every pipeline stage.  The
formulation below follows that structure for the blocking-send/receive
implementation of SWEEP3D:

* a processor's cost per block (steady state):
  ``T_stage = W + 2 (2o + L + m G)`` for an interior processor
  (one receive and one send in each of the two directions),
* the pipeline fill from the sweep origin to the far corner costs
  ``(Px + Py - 2)`` hops of ``W + 2o + L + m G`` for each of the four
  corner changes of the octant-pair sequence,
* one iteration performs ``8 Kb Ab`` blocks per processor.

This is a *baseline*: the exact bookkeeping of the original paper (repeated
sweeps, limited octant overlap) is approximated, which is precisely why the
PACE model — which evaluates the dependency structure — is the primary
predictor of the reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.hmcl.model import HardwareModel
from repro.core.workload import SweepWorkload
from repro.errors import ModelError
from repro.simnet.link import LinkModel
from repro.sweep3d.kernel import SweepKernel


@dataclass(frozen=True)
class LogGPParameters:
    """The LogGP machine parameters (seconds / seconds-per-byte)."""

    latency: float          # L
    overhead: float         # o
    gap: float              # g
    gap_per_byte: float     # G

    def __post_init__(self) -> None:
        for name in ("latency", "overhead", "gap", "gap_per_byte"):
            if getattr(self, name) < 0:
                raise ModelError(f"LogGP parameter {name} must be >= 0")

    @classmethod
    def from_link(cls, link: LinkModel) -> "LogGPParameters":
        """Derive LogGP parameters from a simulated link model."""
        overhead = 0.5 * (link.send_overhead + link.recv_overhead)
        return cls(latency=link.latency, overhead=overhead,
                   gap=max(link.send_overhead, link.recv_overhead),
                   gap_per_byte=1.0 / link.bandwidth)

    @classmethod
    def from_hardware(cls, hardware: HardwareModel,
                      probe_bytes: float = 8.0) -> "LogGPParameters":
        """Derive LogGP parameters from a fitted HMCL mpi section."""
        overhead = hardware.mpi.send_cost(probe_bytes)
        latency = max(0.0, hardware.mpi.delivery_cost(probe_bytes) - overhead)
        large = 65536.0
        per_byte = max(0.0, (hardware.mpi.delivery_cost(large)
                             - hardware.mpi.delivery_cost(probe_bytes)) / (large - probe_bytes))
        return cls(latency=latency, overhead=overhead,
                   gap=hardware.mpi.recv_cost(probe_bytes), gap_per_byte=per_byte)

    def one_way(self, nbytes: float) -> float:
        """End-to-end one-way time of an ``nbytes`` message under LogGP."""
        return self.overhead + self.latency + nbytes * self.gap_per_byte + self.overhead


@dataclass
class LogGPWavefrontModel:
    """LogGP-based predictor for the pipelined SWEEP3D sweep."""

    parameters: LogGPParameters

    def predict(self, workload: SweepWorkload, seconds_per_flop: float) -> float:
        """Predicted run time of the full (12-iteration) SWEEP3D execution.

        ``seconds_per_flop`` is the achieved serial cost of one floating
        point operation (the same quantity the PACE hardware layer holds).
        """
        deck = workload.deck
        px, py = workload.px, workload.py
        nx, ny, _ = workload.cells_per_processor
        params = self.parameters

        kb = deck.n_k_blocks
        ab = deck.n_angle_blocks
        blocks = 8 * kb * ab

        flops_per_block = (SweepKernel.flops_per_cell_angle()
                           * nx * ny * deck.mk * deck.mmi)
        work = flops_per_block * seconds_per_flop

        ew_bytes = ny * deck.mk * deck.mmi * 8.0
        ns_bytes = nx * deck.mk * deck.mmi * 8.0
        comm_per_stage = 0.0
        if px > 1:
            comm_per_stage += (2.0 * params.overhead + params.latency
                               + ew_bytes * params.gap_per_byte)
        if py > 1:
            comm_per_stage += (2.0 * params.overhead + params.latency
                               + ns_bytes * params.gap_per_byte)

        stage = work + comm_per_stage
        hop = work + params.one_way(max(ew_bytes, ns_bytes)) if (px > 1 or py > 1) else work
        fill = (px - 1 + py - 1) * hop

        # Four corner changes per iteration (the octant pairs), each repaying
        # roughly half of the full fill because consecutive corners share an
        # edge of the processor array.
        refill = 2.0 * fill

        sweep_iteration = blocks * stage + fill + refill

        # Per-iteration serial phases and the two small collectives.
        cells = nx * ny * deck.kt
        serial = (2.0 + 4.0 + 1.0) * cells * seconds_per_flop
        collective = 2.0 * _tree_depth(px * py) * 2.0 * params.one_way(8.0)

        return deck.max_iterations * (sweep_iteration + serial + collective)


def _tree_depth(nranks: int) -> int:
    depth = 0
    remaining = nranks - 1
    while remaining > 0:
        depth += 1
        remaining //= 2
    return depth
