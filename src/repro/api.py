"""The stable public facade of the reproduction.

Everything a user (or a fleet of machines) needs sits behind this module:

* the **Study API** — :class:`StudySpec` / :class:`StudyRunner` /
  :class:`StudyResult`, :func:`build_spec`, :func:`run_study`,
  :func:`run_studies`, :func:`load_spec`, :func:`study_names` and
  :func:`write_study_artifacts` (see :mod:`repro.experiments.study`);
* the machine presets (:func:`get_machine`, :func:`available_machines`)
  and standard input decks (:func:`standard_deck`);
* one-shot conveniences for a single configuration: :func:`predict`
  (the analytic PACE model) and :func:`simulate` (the discrete-event
  cluster), mirroring the two scenario backends.  Both reuse a
  process-wide memoised :class:`StudyContext` (:func:`default_context`),
  so the PSL model is parsed and compiled once per process instead of
  once per call — drop it with :func:`clear_cached_context`;
* the **prediction service** (:mod:`repro.service`, loaded lazily):
  :class:`PredictionService` / :func:`run_server` run an always-on
  asyncio server over the same warm state, and :class:`ServiceClient`
  talks to it;
* the persistent sweep cache (:class:`SweepDiskCache`);
* **sharded execution** — :func:`plan_shards` splits one spec's grid
  into deterministic, cost-balanced shard specs any machine can run
  independently, and :func:`merge_study_results` /
  :func:`merge_manifests` recombine the shard results/artifact
  directories bit-identically to an unsharded run
  (:mod:`repro.experiments.sharding`);
* the **elastic fleet** (:mod:`repro.experiments.fleet`):
  :class:`FleetCoordinator` leases one-unit shards to
  :class:`FleetWorker` processes with heartbeat-renewed, crash-tolerant
  leases and end-of-run work stealing, results and warm cache entries
  flowing through an :class:`ArtifactStore`
  (:mod:`repro.experiments.remotestore`); :func:`run_local_fleet` runs
  the whole protocol in-process.

Static fleet example::

    import repro.api as api

    spec = api.build_spec("table1", cache_dir="/shared/sweep-cache")
    plan = api.plan_shards(spec, shards=4)       # same plan on every host
    result = api.run_study(plan.shards[2].spec)  # this host's slice
    # ... collect all shards' results, then:
    merged = api.merge_study_results(shard_results)

Elastic fleet example (one process; the CLI ``fleet serve`` / ``fleet
work`` commands run the identical protocol across machines)::

    outcome = api.run_local_fleet(["table1", "table2"], n_workers=4)
    merged = outcome.results     # bit-identical to unsharded runs

Example::

    import repro.api as api

    spec = api.build_spec("table2", max_pes=16, workers=4,
                          cache_dir="~/.cache/repro-sweep3d")
    result = api.run_study(spec)
    api.write_study_artifacts([result], "artifacts/")

    # or, for every registered study:
    results = api.StudyRunner(workers=4).run_all()
"""

from __future__ import annotations

from repro.experiments.artifacts import (
    compare_artifact_dirs,
    load_study_results,
    merge_manifests,
    read_manifest,
    write_study_artifacts,
)
from repro.experiments.diskcache import DiskCacheStats, SweepDiskCache
from repro.experiments.fleet import (
    FleetCoordinator,
    FleetOutcome,
    FleetWorker,
    fleet_status,
    run_local_fleet,
)
from repro.experiments.remotestore import (
    ArtifactStore,
    LocalDirStore,
    MemoryStore,
    pull_cache_entries,
    push_cache_entries,
    store_from_url,
)
from repro.experiments.sharding import (
    ShardPlan,
    ShardPlanner,
    make_shard_spec,
    merge_study_results,
    parent_spec,
    plan_shards,
    plan_unit_shards,
)
from repro.experiments.study import (
    StudyContext,
    StudyResult,
    StudyRunner,
    StudySpec,
    analysis_names,
    build_spec,
    load_spec,
    register_analysis,
    register_study,
    run_studies,
    run_study,
    study_names,
)
from repro.experiments.uncertainty import NoiseCalibration, calibrate_noise
from repro.machines.machine import Machine
from repro.machines.presets import MACHINE_PRESETS, get_machine
from repro.sweep3d.input import Sweep3DInput, standard_deck

__all__ = [
    "StudyContext",
    "StudyResult",
    "StudyRunner",
    "StudySpec",
    "analysis_names",
    "build_spec",
    "load_spec",
    "register_analysis",
    "register_study",
    "run_studies",
    "run_study",
    "study_names",
    "read_manifest",
    "write_study_artifacts",
    "load_study_results",
    "ShardPlan",
    "ShardPlanner",
    "plan_shards",
    "plan_unit_shards",
    "make_shard_spec",
    "parent_spec",
    "merge_study_results",
    "merge_manifests",
    "compare_artifact_dirs",
    "FleetCoordinator",
    "FleetOutcome",
    "FleetWorker",
    "fleet_status",
    "run_local_fleet",
    "ArtifactStore",
    "LocalDirStore",
    "MemoryStore",
    "store_from_url",
    "push_cache_entries",
    "pull_cache_entries",
    "DiskCacheStats",
    "SweepDiskCache",
    "Machine",
    "get_machine",
    "available_machines",
    "Sweep3DInput",
    "standard_deck",
    "predict",
    "simulate",
    "default_context",
    "clear_cached_context",
    "NoiseCalibration",
    "calibrate_noise",
    "PredictionService",
    "ServiceClient",
    "run_server",
]

#: Service symbols resolved lazily (the service imports this module).
_SERVICE_EXPORTS = {
    "PredictionService": "repro.service.core",
    "ServiceClient": "repro.service.client",
    "run_server": "repro.service.core",
}


def __getattr__(name: str):
    module_name = _SERVICE_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.api' has no attribute {name!r}")
    import importlib
    return getattr(importlib.import_module(module_name), name)


def available_machines() -> list[str]:
    """Names of every machine preset."""
    return sorted(MACHINE_PRESETS)


#: The process-wide memoised context behind the one-shot conveniences.
_DEFAULT_CONTEXT: StudyContext | None = None


def default_context() -> StudyContext:
    """The process-wide shared :class:`StudyContext` (created on first use).

    :func:`predict` and :func:`simulate` evaluate through this context, so
    repeated one-shots share one parsed+compiled PSL model and one
    :class:`Machine` instance (whose simulation-plan cache makes repeated
    ``simulate`` calls of the same configuration trace-replay warm) — the
    same mechanism the always-on prediction service (:mod:`repro.service`)
    amortises across network callers.  Results are bit-identical to a
    fresh context: memoisation shares the compile step, never the inputs.
    """
    global _DEFAULT_CONTEXT
    if _DEFAULT_CONTEXT is None:
        _DEFAULT_CONTEXT = StudyContext()
    return _DEFAULT_CONTEXT


def clear_cached_context() -> None:
    """Drop (and close) the memoised default context.

    The next one-shot rebuilds everything from scratch — useful in tests
    and for bounding memory in very long-lived processes.
    """
    global _DEFAULT_CONTEXT
    if _DEFAULT_CONTEXT is not None:
        _DEFAULT_CONTEXT.close()
    _DEFAULT_CONTEXT = None


def _resolve(machine: Machine | str) -> Machine:
    if isinstance(machine, str):
        # Memoised per preset name: repeated one-shots reuse the machine's
        # internal plan/trace caches instead of rebuilding them per call.
        return default_context().machine(machine)
    return machine


def _resolve_deck(deck: Sweep3DInput | str, px: int, py: int,
                  iterations: int) -> Sweep3DInput:
    if isinstance(deck, Sweep3DInput):
        return deck
    return standard_deck(deck, px=px, py=py, max_iterations=iterations)


def predict(machine: Machine | str, px: int, py: int,
            deck: Sweep3DInput | str = "validation",
            iterations: int = 12):
    """Predict one configuration with the analytic PACE model.

    Returns a :class:`~repro.core.evaluation.result.PredictionResult`.
    The machine's HMCL hardware object is built from its profiling and
    micro-benchmark campaigns, exactly as each validation-table row does.
    The PSL model is compiled once per process (:func:`default_context`)
    and shared across calls; the result is bit-identical to a cold
    evaluation.
    """
    from repro.core.evaluation import EvaluationEngine
    from repro.core.workload import SweepWorkload

    context = default_context()
    machine = _resolve(machine)
    deck = _resolve_deck(deck, px, py, iterations)
    hardware = machine.hardware_model(deck, px, py)
    engine = EvaluationEngine(context.model(), hardware,
                              compiled=context.compiled_model())
    return engine.predict(SweepWorkload(deck, px, py).model_variables())


def simulate(machine: Machine | str, px: int, py: int,
             deck: Sweep3DInput | str = "validation",
             iterations: int = 12,
             numeric: bool = False,
             with_noise: bool = True,
             seed_offset: int = 0,
             execution: str = "engine",
             samples: int = 0):
    """Run one configuration on the discrete-event simulated cluster.

    Returns the full :class:`~repro.sweep3d.driver.Sweep3DRunResult`
    (elapsed time, message traffic, and — in ``numeric`` mode — the flux
    field), i.e. the paper's "measurement" side.

    ``execution`` selects the tier: ``"engine"`` (default) runs the
    per-event reference :class:`~repro.simmpi.engine.ClusterEngine`;
    ``"replay"`` records the configuration's event stream once and
    resolves the run as a max-plus trace replay
    (:mod:`repro.simmpi.trace`) — bit-identical, and much faster when
    the same configuration is simulated repeatedly; ``"steady"`` attempts
    the steady-state cycle-mean tier (:mod:`repro.simmpi.steady`), which
    replays only the trace's warm-up plus a short lock-in window and
    extrapolates the periodic bulk — bit-identical or it refuses, falling
    back to replay; ``"auto"`` picks the fastest applicable tier.

    ``samples > 0`` draws that many noise seeds in **one** batched replay
    and returns a :class:`~repro.sweep3d.driver.Sweep3DSampleSet`
    (per-sample elapsed times plus mean/std/CI95).  Sampled runs are
    replay-resolved, so the default ``execution="engine"`` is upgraded to
    ``"auto"`` (bit-identical per sample); sample 0 uses ``seed_offset``'s
    own noise stream, so its run matches the single-run path exactly.
    """
    machine = _resolve(machine)
    deck = _resolve_deck(deck, px, py, iterations)
    if samples:
        if execution == "engine":
            execution = "auto"
        return machine.simulate(deck, px, py, numeric=numeric,
                                with_noise=with_noise,
                                seed_offset=seed_offset,
                                execution=execution, samples=samples)
    return machine.simulate(deck, px, py, numeric=numeric,
                            with_noise=with_noise, seed_offset=seed_offset,
                            execution=execution)
