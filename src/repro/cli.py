"""Command line interface: ``python -m repro`` / ``repro-sweep3d``.

The primary entrypoint is the declarative Study API
(:mod:`repro.experiments.study`): ``run`` executes registered studies or
spec files and writes JSON/CSV artifacts plus a run manifest, ``studies``
lists what is registered, and ``cache`` inspects/prunes the persistent
sweep store:

.. code-block:: console

    repro-sweep3d studies
    repro-sweep3d run table2 --smoke
    repro-sweep3d run table1 figure8 --workers 4 --out artifacts/
    repro-sweep3d run my-study.toml --out artifacts/
    repro-sweep3d run --all --smoke --out artifacts/
    repro-sweep3d run table2 --set max_pes=16 --set max_iterations=2
    repro-sweep3d cache stats --cache-dir ~/.cache/repro-sweep3d
    repro-sweep3d cache prune --cache-dir ~/.cache/repro-sweep3d \\
        --max-entries 5000 --max-age-s 604800

Sharded execution splits one spec's grid across machines with zero
coordination beyond a spec file and a shared cache directory: ``shard
plan`` shows (or writes) the deterministic split, ``run --shard i/N``
executes one machine's slice, and ``merge`` recombines the shard
artifact directories into a run that matches the unsharded one
bit-for-bit (rows and CSVs; ``--expect`` asserts it):

.. code-block:: console

    repro-sweep3d shard plan table1 --shards 4
    repro-sweep3d run --all --smoke --shard 2/4 --out shard-2/ \\
        --cache-dir /shared/sweep-cache
    repro-sweep3d merge shard-0/ shard-1/ shard-2/ shard-3/ \\
        --out merged/ --expect reference/

The per-experiment sub-commands survive as deprecation-era shims over the
same pipeline, alongside the ad-hoc grid/inspection tools:

.. code-block:: console

    repro-sweep3d table1 --max-pes 16 --iterations 2
    repro-sweep3d figure8
    repro-sweep3d sweep --machine opteron --arrays 1x1,2x2,4x4 --workers 4
    repro-sweep3d predict --machine opteron --px 4 --py 4
    repro-sweep3d simulate --machine pentium3 --px 2 --py 2 --iterations 2
    repro-sweep3d simulate --machine pentium3 --arrays 1x1,2x2,4x4 \\
        --iterations 2 --workers 4 --cache-dir ~/.cache/repro-sweep3d
    repro-sweep3d simulate --machine pentium3 --px 2 --py 2 --execution engine
    repro-sweep3d simulate --machine steady --px 4 --py 4 --execution steady
    repro-sweep3d simulate --machine steady --px 4 --py 4 --describe-trace
    repro-sweep3d simulate --machine pentium3 --px 2 --py 2 --samples 32
    repro-sweep3d run table2 --smoke --set sim_execution=engine
    repro-sweep3d run table2 --smoke --samples 16
    repro-sweep3d run noise-sensitivity --smoke
    repro-sweep3d ablation
    repro-sweep3d agreement
    repro-sweep3d machines
    repro-sweep3d hmcl --machine altix
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro import units
from repro._version import __version__
from repro.core.evaluation import EvaluationEngine
from repro.core.hmcl.parser import format_hmcl
from repro.core.workload import SweepWorkload, load_sweep3d_model
from repro.errors import ExperimentError
from repro.experiments.report import (
    format_ablation,
    format_agreement,
    format_figure,
    format_validation_table,
)
from repro.experiments.study import (
    StudyRunner,
    StudySpec,
    build_spec,
    get_study,
    load_spec,
    run_study,
    study_names,
)
from repro.machines.presets import MACHINE_PRESETS, get_machine
from repro.sweep3d.input import standard_deck


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sweep3d",
        description="PACE predictive performance model of SWEEP3D "
                    "(reproduction of Mudalige et al., CLUSTER 2006)")
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    cmd = sub.add_parser(
        "run",
        help="run registered studies and/or spec files through the Study API")
    cmd.add_argument("studies", nargs="*", metavar="STUDY|SPEC-FILE",
                     help="registered study names and/or .toml/.json spec files")
    cmd.add_argument("--all", action="store_true",
                     help="run every registered study")
    cmd.add_argument("--smoke", action="store_true",
                     help="reduced grids (CI smoke: each study's smoke overrides)")
    cmd.add_argument("--workers", type=int, default=None,
                     help="multiprocessing fan-out override for every study")
    cmd.add_argument("--cache-dir", default=None,
                     help="shared disk-backed sweep cache directory")
    cmd.add_argument("--out", default=None, metavar="DIR",
                     help="write JSON/CSV artifacts plus manifest.json here")
    cmd.add_argument("--set", action="append", default=[], metavar="KEY=VALUE",
                     dest="overrides",
                     help="study parameter override (repeatable; values are "
                          "parsed as JSON, e.g. --set max_pes=16 "
                          "--set 'processor_counts=[1,16,256]')")
    cmd.add_argument("--shard", default=None, metavar="I/N",
                     help="run only shard I of an N-way deterministic split "
                          "of every selected study's grid (fleet execution; "
                          "see 'shard plan' and 'merge')")
    cmd.add_argument("--samples", type=int, default=None, metavar="S",
                     help="multi-seed uncertainty: studies that accept a "
                          "'samples' parameter replay every measurement "
                          "under S noise seeds in one batched pass and add "
                          "mean/std/CI95 columns (other selected studies "
                          "are unaffected)")

    cmd = sub.add_parser("studies", help="list the registered studies")
    cmd.add_argument("--json", action="store_true",
                     help="machine-readable listing: name, title, machine, "
                          "backend, defaults, smoke overrides and shard axis "
                          "per study")

    cmd = sub.add_parser(
        "shard",
        help="plan how a study's grid splits across a fleet of machines")
    shard_sub = cmd.add_subparsers(dest="shard_command", required=True)
    scmd = shard_sub.add_parser(
        "plan", help="deterministically split a spec's grid into shard specs")
    scmd.add_argument("study", metavar="STUDY|SPEC-FILE",
                      help="registered study name or .toml/.json spec file")
    scmd.add_argument("--shards", type=int, default=2,
                      help="number of machines the grid splits across")
    scmd.add_argument("--smoke", action="store_true",
                      help="plan the reduced smoke grid (matches "
                           "'run --smoke --shard')")
    scmd.add_argument("--workers", type=int, default=None,
                      help="worker override recorded in the shard specs")
    scmd.add_argument("--cache-dir", default=None,
                      help="shared sweep cache directory recorded in the "
                           "shard specs")
    scmd.add_argument("--set", action="append", default=[],
                      metavar="KEY=VALUE", dest="overrides",
                      help="study parameter override (values parsed as JSON)")
    scmd.add_argument("--out", default=None, metavar="DIR",
                      help="write each shard spec as a .toml file here")

    cmd = sub.add_parser(
        "merge",
        help="recombine shard artifact directories into one merged run")
    cmd.add_argument("dirs", nargs="+", metavar="DIR",
                     help="shard artifact directories (each holding a "
                          "manifest.json written by 'run --shard --out')")
    cmd.add_argument("--out", required=True, metavar="DIR",
                     help="directory for the merged artifacts + manifest")
    cmd.add_argument("--expect", default=None, metavar="DIR",
                     help="reference artifact directory (an unsharded run); "
                          "exit nonzero unless the merged artifacts match "
                          "it bit-for-bit (timing normalised)")

    cmd = sub.add_parser(
        "fleet",
        help="elastic shard fleet: lease grid units to workers with "
             "fault-tolerant reassignment")
    fleet_sub = cmd.add_subparsers(dest="fleet_command", required=True)
    fcmd = fleet_sub.add_parser(
        "serve",
        help="enqueue studies as leased units and supervise to completion")
    fcmd.add_argument("studies", nargs="*", metavar="STUDY|SPEC-FILE",
                      help="registered study names and/or .toml/.json spec files")
    fcmd.add_argument("--all", action="store_true",
                      help="enqueue every registered study")
    fcmd.add_argument("--fleet-dir", required=True, metavar="DIR",
                      help="shared work-queue directory (fresh per run)")
    fcmd.add_argument("--store", default=None, metavar="URL",
                      help="artifact store URL (file://DIR or mem://NAME; "
                           "default: <fleet-dir>/store)")
    fcmd.add_argument("--smoke", action="store_true",
                      help="reduced grids (each study's smoke overrides)")
    fcmd.add_argument("--set", action="append", default=[],
                      metavar="KEY=VALUE", dest="overrides",
                      help="study parameter override (values parsed as JSON)")
    fcmd.add_argument("--lease-ttl", type=float, default=30.0, metavar="S",
                      help="seconds a lease survives without a heartbeat "
                           "before its unit is reassigned (default 30)")
    fcmd.add_argument("--poll", type=float, default=0.2, metavar="S",
                      help="controller-loop cadence in seconds")
    fcmd.add_argument("--timeout", type=float, default=None, metavar="S",
                      help="fail the run after this many seconds")
    fcmd.add_argument("--no-steal", action="store_true",
                      help="never revoke prefetched units from stragglers")
    fcmd.add_argument("--out", default=None, metavar="DIR",
                      help="write the merged artifacts + manifest here")
    fcmd.add_argument("--expect", default=None, metavar="DIR",
                      help="reference artifact directory; exit nonzero "
                           "unless the merged artifacts match it bit-for-bit "
                           "(timing normalised)")
    fcmd = fleet_sub.add_parser(
        "work", help="claim, execute and publish fleet units until done")
    fcmd.add_argument("--fleet-dir", required=True, metavar="DIR",
                      help="the coordinator's shared work-queue directory")
    fcmd.add_argument("--store", default=None, metavar="URL",
                      help="artifact store URL override (default: the fleet "
                           "descriptor's store)")
    fcmd.add_argument("--worker-id", default=None,
                      help="stable worker identity (default: host-pid)")
    fcmd.add_argument("--cache-dir", default=None,
                      help="local sweep cache directory; warm entries sync "
                           "through the store")
    fcmd.add_argument("--poll", type=float, default=0.2, metavar="S",
                      help="queue scan cadence in seconds")
    fcmd.add_argument("--prefetch", type=int, default=1, metavar="N",
                      help="units claimed per scan (stragglers' surplus is "
                           "stolen back)")
    fcmd.add_argument("--throttle", type=float, default=0.0, metavar="S",
                      help="pause before each unit while heartbeating "
                           "(simulates a slow machine; chaos/bench aid)")
    fcmd.add_argument("--max-units", type=int, default=None, metavar="N",
                      help="exit after completing this many units")
    fcmd.add_argument("--wait-timeout", type=float, default=120.0,
                      metavar="S",
                      help="seconds to wait for the queue descriptor to "
                           "appear")
    fcmd = fleet_sub.add_parser(
        "status", help="snapshot a fleet directory's queue state")
    fcmd.add_argument("--fleet-dir", required=True, metavar="DIR")
    fcmd.add_argument("--json", action="store_true",
                      help="machine-readable snapshot")

    cmd = sub.add_parser(
        "cache",
        help="inspect or prune a sweep cache directory (incl. its trace cache)")
    cache_sub = cmd.add_subparsers(dest="cache_command", required=True)
    for cache_name, cache_help in (("stats", "entry count and on-disk size"),
                                   ("prune", "evict stale/excess entries")):
        ccmd = cache_sub.add_parser(cache_name, help=cache_help)
        ccmd.add_argument("--cache-dir", required=True,
                          help="sweep cache directory")
        if cache_name == "prune":
            ccmd.add_argument("--max-entries", type=int, default=None,
                              help="keep at most this many entries (oldest evicted)")
            ccmd.add_argument("--max-age-s", type=float, default=None,
                              help="evict entries stored more than this many "
                                   "seconds ago")

    for name in ("table1", "table2", "table3"):
        cmd = sub.add_parser(name, help=f"reproduce {name} of the paper")
        cmd.add_argument("--max-pes", type=int, default=None,
                         help="only run rows with at most this many processors")
        cmd.add_argument("--iterations", type=int, default=12,
                         help="source iterations per run (paper: 12)")
        cmd.add_argument("--no-measurement", action="store_true",
                         help="skip the discrete-event measurement (predictions only)")

    for name in ("figure8", "figure9"):
        cmd = sub.add_parser(name, help=f"reproduce {name} (speculative scaling study)")
        cmd.add_argument("--max-processors", type=int, default=None,
                         help="truncate the processor-count axis")

    cmd = sub.add_parser("predict", help="predict one configuration with the PACE model")
    cmd.add_argument("--machine", default="pentium3", help="machine name or alias")
    cmd.add_argument("--px", type=int, default=2)
    cmd.add_argument("--py", type=int, default=2)
    cmd.add_argument("--deck", default="validation",
                     help="standard deck name (validation, asci-20m, asci-1b, mini)")
    cmd.add_argument("--iterations", type=int, default=12)

    cmd = sub.add_parser(
        "simulate",
        help="run sweeps on the simulated cluster (batched scenario grid)")
    cmd.add_argument("--machine", default="pentium3")
    cmd.add_argument("--px", type=int, default=2)
    cmd.add_argument("--py", type=int, default=2)
    cmd.add_argument("--arrays", default=None,
                     help="comma-separated PXxPY processor arrays to sweep "
                          "(overrides --px/--py; e.g. 1x1,2x2,4x4)")
    cmd.add_argument("--deck", default="validation")
    cmd.add_argument("--iterations", type=int, default=12)
    cmd.add_argument("--numeric", action="store_true",
                     help="perform the real flux arithmetic (small grids only)")
    cmd.add_argument("--backend", default="simulate",
                     help="registered scenario backend to evaluate the grid "
                          "with (simulate or predict)")
    cmd.add_argument("--execution", default="auto",
                     choices=("auto", "engine", "replay", "steady"),
                     help="simulation tier: 'auto' picks the fastest "
                          "bit-identical tier (steady-state cycle-mean "
                          "extrapolation for noise-free periodic traces, "
                          "else trace replay, else the engine), 'engine' "
                          "forces the per-event reference engine, 'replay' "
                          "forces replay, 'steady' attempts the steady tier "
                          "and falls back to replay when it refuses; all "
                          "tiers are bit-identical (simulate backend only)")
    cmd.add_argument("--workers", type=int, default=1,
                     help="multiprocessing fan-out for the grid")
    cmd.add_argument("--cache-dir", default=None,
                     help="disk-backed sweep cache directory (shared across "
                          "runs and worker processes)")
    cmd.add_argument("--samples", type=int, default=0, metavar="S",
                     help="replay every grid point under S noise seeds in "
                          "one batched pass and report mean/std/CI95 "
                          "(simulate backend, replay-capable execution)")
    cmd.add_argument("--no-noise", action="store_true",
                     help="disable the machine's OS/network noise model "
                          "(deterministic modelled runs; required for the "
                          "steady tier, which refuses noisy traces)")
    cmd.add_argument("--describe-trace", action="store_true",
                     help="compile each grid point's event trace and print "
                          "its period/steady-eligibility diagnostics instead "
                          "of running the sweep (simulate backend only)")

    cmd = sub.add_parser("sweep", help="batch-evaluate a scenario grid with the PACE model")
    cmd.add_argument("--machine", default="pentium3", help="machine name or alias")
    cmd.add_argument("--deck", default="validation",
                     help="standard deck name (validation, asci-20m, asci-1b, mini)")
    cmd.add_argument("--arrays", default="1x1,2x2,4x4,8x8",
                     help="comma-separated PXxPY processor arrays to sweep")
    cmd.add_argument("--iterations", type=int, default=12)
    cmd.add_argument("--workers", type=int, default=1,
                     help="multiprocessing fan-out for the sweep")

    cmd = sub.add_parser("ablation", help="legacy vs coarse hardware benchmarking ablation")
    cmd.add_argument("--iterations", type=int, default=12)

    cmd = sub.add_parser("agreement", help="PACE vs LogGP vs Hoisie model agreement")

    sub.add_parser("machines", help="list the available machine presets")

    cmd = sub.add_parser("hmcl", help="print the HMCL hardware object of a machine")
    cmd.add_argument("--machine", default="pentium3")
    cmd.add_argument("--px", type=int, default=2)
    cmd.add_argument("--py", type=int, default=2)
    cmd.add_argument("--deck", default="validation")

    cmd = sub.add_parser(
        "serve",
        help="run the always-on prediction service (asyncio HTTP server)")
    cmd.add_argument("--host", default="127.0.0.1")
    cmd.add_argument("--port", type=int, default=8642)
    cmd.add_argument("--cache-dir", default=None,
                     help="disk-backed sweep cache directory (the persistent "
                          "tier behind the in-memory LRU)")
    cmd.add_argument("--workers", type=int, default=2,
                     help="threads evaluating coalesced request batches")
    cmd.add_argument("--lru-size", type=int, default=256,
                     help="entries held by the in-memory result tier "
                          "(0 disables it)")
    cmd.add_argument("--window-ms", type=float, default=2.0,
                     help="coalescing window: how long the first request of "
                          "a batch waits for mergeable company")
    cmd.add_argument("--artifact-dir", default=None,
                     help="where finished study jobs write their artifacts "
                          "(one sub-directory per job)")
    cmd.add_argument("--job-fleet-workers", type=int, default=0,
                     help="front study jobs with an in-process elastic "
                          "fleet of this many workers (0: run jobs inline)")

    cmd = sub.add_parser("client",
                         help="talk to a running prediction service")
    cmd.add_argument("--host", default="127.0.0.1")
    cmd.add_argument("--port", type=int, default=8642)
    cmd.add_argument("--timeout", type=float, default=120.0)
    client_sub = cmd.add_subparsers(dest="client_command", required=True)
    ccmd = client_sub.add_parser("predict", help="one analytic prediction")
    ccmd.add_argument("--machine", default="pentium3")
    ccmd.add_argument("--px", type=int, default=2)
    ccmd.add_argument("--py", type=int, default=2)
    ccmd.add_argument("--deck", default="validation")
    ccmd.add_argument("--iterations", type=int, default=12)
    ccmd = client_sub.add_parser("simulate",
                                 help="one discrete-event simulation run")
    ccmd.add_argument("--machine", default="pentium3")
    ccmd.add_argument("--px", type=int, default=2)
    ccmd.add_argument("--py", type=int, default=2)
    ccmd.add_argument("--deck", default="validation")
    ccmd.add_argument("--iterations", type=int, default=12)
    ccmd.add_argument("--seed", type=int, default=0,
                      help="noise-seed offset (api.simulate's seed_offset)")
    ccmd.add_argument("--no-noise", action="store_true")
    ccmd.add_argument("--execution", default="auto",
                      choices=("auto", "engine", "replay", "steady"))
    ccmd.add_argument("--samples", type=int, default=0)
    ccmd = client_sub.add_parser(
        "submit", help="submit a study as a background job")
    ccmd.add_argument("study", metavar="STUDY|SPEC-FILE",
                      help="registered study name or .toml/.json spec file")
    ccmd.add_argument("--smoke", action="store_true",
                      help="submit the reduced smoke grid")
    ccmd.add_argument("--set", action="append", default=[],
                      metavar="KEY=VALUE", dest="overrides",
                      help="study parameter override (values parsed as JSON)")
    ccmd.add_argument("--wait", action="store_true",
                      help="block until the job finishes and print its status")
    ccmd = client_sub.add_parser("status", help="poll one job's state")
    ccmd.add_argument("job_id")
    ccmd = client_sub.add_parser(
        "result", help="fetch a finished job's full result artifact")
    ccmd.add_argument("job_id")
    ccmd.add_argument("--wait", action="store_true",
                      help="block until the job reaches a terminal state")
    ccmd = client_sub.add_parser("cancel", help="cancel a queued job")
    ccmd.add_argument("job_id")
    ccmd = client_sub.add_parser(
        "artifacts", help="list a finished job's artifact files")
    ccmd.add_argument("job_id")
    client_sub.add_parser("jobs", help="list every job and its state")
    client_sub.add_parser("health", help="server health and capabilities")
    client_sub.add_parser("stats", help="server counters (caches, coalescer)")
    return parser


def _parse_override(text: str) -> tuple[str, object]:
    """Parse one ``--set KEY=VALUE`` item (values are JSON, else strings)."""
    key, sep, raw = text.partition("=")
    if not sep or not key:
        raise ExperimentError(
            f"bad --set {text!r}; expected KEY=VALUE (e.g. max_pes=16)")
    try:
        value = json.loads(raw)
    except json.JSONDecodeError:
        value = raw
    return key, value


def _overrides_for(study: str, overrides: dict,
                   used: set[str]) -> dict:
    """The subset of ``--set`` overrides the study's registry accepts."""
    accepted = set(get_study(study).defaults)
    applicable = {key: value for key, value in overrides.items()
                  if key in accepted}
    used.update(applicable)
    return applicable


def _resolve_spec_token(token: str, overrides: dict,
                        used: set[str]) -> StudySpec:
    """A canonical spec from a study name or spec-file path, ``--set`` applied."""
    if token.endswith((".toml", ".json")) or "/" in token:
        spec = load_spec(token)
        params = spec.params_dict
        params.update(_overrides_for(spec.study, overrides, used))
        return build_spec(spec.study, machine=spec.machine,
                          backend=spec.backend, workers=spec.workers,
                          cache_dir=spec.cache_dir, analysis=spec.analysis,
                          **params)
    return build_spec(token, **_overrides_for(token, overrides, used))


def _parse_shard(text: str) -> tuple[int, int] | None:
    """Parse a ``--shard I/N`` selector (None on bad input)."""
    index_text, sep, count_text = text.partition("/")
    try:
        if not sep:
            raise ValueError(text)
        index, count = int(index_text), int(count_text)
    except ValueError:
        print(f"bad --shard {text!r}; expected I/N (e.g. 0/4)")
        return None
    if count < 1 or not 0 <= index < count:
        print(f"bad --shard {text!r}; need 0 <= I < N")
        return None
    return index, count


def _cmd_run(args: argparse.Namespace) -> int:
    try:
        overrides = dict(_parse_override(item) for item in args.overrides)
    except ExperimentError as exc:
        print(exc)
        return 2
    exempt_from_unused: set[str] = set()
    if args.samples is not None:
        if args.samples < 0:
            print("--samples must be >= 0")
            return 2
        # Injected like --set samples=S, but studies without a 'samples'
        # parameter simply ignore it instead of failing the run.
        overrides["samples"] = args.samples
        exempt_from_unused.add("samples")
    shard_selector = None
    if args.shard is not None:
        shard_selector = _parse_shard(args.shard)
        if shard_selector is None:
            return 2
    used_overrides: set[str] = set()
    specs: list[StudySpec] = []
    if args.all:
        specs.extend(build_spec(name, **_overrides_for(name, overrides,
                                                       used_overrides))
                     for name in study_names())
    specs.extend(_resolve_spec_token(token, overrides, used_overrides)
                 for token in args.studies)
    if not specs:
        print("nothing to run: name studies/spec files or pass --all "
              f"(registered: {', '.join(study_names())})")
        return 2
    unused = set(overrides) - used_overrides - exempt_from_unused
    if unused:
        print(f"--set parameter(s) {sorted(unused)} not accepted by any "
              f"selected study")
        return 2

    smoke = args.smoke
    if shard_selector is not None:
        # The plan is computed on the grid that actually runs, so apply
        # the smoke reduction (and runner-level overrides, which are part
        # of the spec hash) before planning.
        from repro.experiments.sharding import make_shard_spec
        index, count = shard_selector
        resolved = [spec.with_overrides(workers=args.workers,
                                        cache_dir=args.cache_dir)
                    for spec in specs]
        if smoke:
            resolved = [spec.smoke() for spec in resolved]
            smoke = False
        specs = []
        for spec in resolved:
            shard = make_shard_spec(spec, index, count)
            if shard is None:
                print(f"shard {index}/{count}: {spec.study} has fewer grid "
                      "units than shards; no work here")
            else:
                specs.append(shard)

    runner = StudyRunner(workers=args.workers, cache_dir=args.cache_dir)
    results = runner.run_many(specs, smoke=smoke) if specs else []

    for result in results:
        print(f"== {result.spec.study} "
              f"[{result.spec_hash[:12]}] "
              f"({len(result.rows)} row(s), {result.elapsed_s:.2f} s) ==")
        print(result.describe())
        if result.disk_stats.hits or result.disk_stats.misses or \
                result.disk_stats.stores:
            print(result.disk_stats.describe())
        print()
    if args.out is not None:
        from repro.experiments.artifacts import write_study_artifacts
        # A shard that received no work still publishes a (study-less)
        # manifest so fleet collectors always find an artifact directory.
        manifest = write_study_artifacts(results, args.out,
                                         allow_empty=shard_selector is not None)
        print(f"wrote {len(results)} artifact pair(s) + {manifest}")
    return 0


def _cmd_shard_plan(args: argparse.Namespace) -> int:
    from repro.experiments.sharding import plan_shards
    try:
        overrides = dict(_parse_override(item) for item in args.overrides)
    except ExperimentError as exc:
        print(exc)
        return 2
    used: set[str] = set()
    spec = _resolve_spec_token(args.study, overrides, used)
    unused = set(overrides) - used
    if unused:
        print(f"--set parameter(s) {sorted(unused)} not accepted by "
              f"{spec.study}")
        return 2
    spec = spec.with_overrides(workers=args.workers, cache_dir=args.cache_dir)
    if args.smoke:
        spec = spec.smoke()
    plan = plan_shards(spec, args.shards)
    print(plan.describe())
    if args.out is not None:
        from pathlib import Path
        out = Path(args.out)
        out.mkdir(parents=True, exist_ok=True)
        for shard in plan.shards:
            path = out / f"{spec.study}-shard{shard.index}.toml"
            path.write_text(shard.spec.to_toml())
            print(f"wrote {path}")
    return 0


def _cmd_merge(args: argparse.Namespace) -> int:
    from repro.experiments.artifacts import (
        compare_artifact_dirs,
        merge_manifests,
        read_manifest,
    )
    try:
        manifest = merge_manifests(args.dirs, args.out)
    except ExperimentError as exc:
        print(f"merge failed: {exc}")
        return 2
    merged = read_manifest(args.out)
    for entry in merged["studies"]:
        print(f"{entry['study']:<10} [{entry['spec_hash'][:12]}] "
              f"{entry['rows']} row(s)")
    print(f"merged {len(args.dirs)} director(y/ies) -> {manifest}")
    if args.expect is not None:
        try:
            diffs = compare_artifact_dirs(args.out, args.expect)
        except ExperimentError as exc:
            print(f"cannot compare against {args.expect}: {exc}")
            return 2
        if diffs:
            print(f"merged run does NOT match {args.expect}:")
            for diff in diffs:
                print(f"  - {diff}")
            return 1
        print(f"merged run matches {args.expect} bit-for-bit "
              "(timing normalised)")
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    from repro.experiments.fleet import (
        FleetCoordinator,
        FleetWorker,
        fleet_status,
    )
    from repro.experiments.remotestore import store_from_url
    if args.fleet_command == "status":
        status = fleet_status(args.fleet_dir)
        if args.json:
            print(json.dumps(status, indent=2, sort_keys=True))
            return 0
        print(f"fleet {status['fleet_dir']}: {status['status']}"
              + (f" ({status['reason']})" if status["reason"] else ""))
        print(f"units: {status['done']}/{status['unit_count']} done, "
              f"{status['leased']} leased, {status['open']} open")
        for worker in status["workers"]:
            state = "alive" if worker["alive"] else "stale"
            active = worker["active_unit"]
            unit = f", executing unit {active}" if active is not None else ""
            print(f"worker {worker['worker']}: {state}{unit}")
        print(f"events logged: {status['events']}")
        return 0

    if args.fleet_command == "work":
        store = store_from_url(args.store) if args.store else None
        worker = FleetWorker(args.fleet_dir, store=store,
                             worker_id=args.worker_id,
                             cache_dir=args.cache_dir, poll_s=args.poll,
                             prefetch=args.prefetch,
                             throttle_s=args.throttle)
        completed = worker.run(max_units=args.max_units,
                               wait_timeout_s=args.wait_timeout)
        print(f"worker {worker.worker_id}: completed {completed} unit(s)")
        return 0

    # fleet serve
    try:
        overrides = dict(_parse_override(item) for item in args.overrides)
    except ExperimentError as exc:
        print(exc)
        return 2
    used: set[str] = set()
    specs: list[StudySpec] = []
    if args.all:
        specs.extend(build_spec(name, **_overrides_for(name, overrides, used))
                     for name in study_names())
    specs.extend(_resolve_spec_token(token, overrides, used)
                 for token in args.studies)
    if not specs:
        print("nothing to serve: name studies/spec files or pass --all "
              f"(registered: {', '.join(study_names())})")
        return 2
    unused = set(overrides) - used
    if unused:
        print(f"--set parameter(s) {sorted(unused)} not accepted by any "
              f"selected study")
        return 2
    store = store_from_url(args.store) if args.store else None
    coordinator = FleetCoordinator(args.fleet_dir, store=store,
                                   lease_ttl_s=args.lease_ttl,
                                   poll_s=args.poll,
                                   steal=not args.no_steal)
    units = coordinator.enqueue(specs, smoke=args.smoke)
    print(f"enqueued {units} unit(s) from {len(specs)} stud(y/ies) "
          f"at {args.fleet_dir}")
    outcome = coordinator.serve(timeout_s=args.timeout, out_dir=args.out)
    print(outcome.describe())
    if outcome.status != "done":
        return 2
    for result in outcome.results:
        print(f"{result.spec.study:<10} [{result.spec_hash[:12]}] "
              f"{len(result.rows)} row(s)")
    if args.expect is not None:
        from repro.experiments.artifacts import compare_artifact_dirs
        if args.out is None:
            print("--expect needs --out (the merged artifacts to compare)")
            return 2
        diffs = compare_artifact_dirs(args.out, args.expect)
        if diffs:
            print(f"fleet run does NOT match {args.expect}:")
            for diff in diffs:
                print(f"  - {diff}")
            return 1
        print(f"fleet run matches {args.expect} bit-for-bit "
              "(timing normalised)")
    return 0


def _cmd_studies(args: argparse.Namespace) -> int:
    if args.json:
        from repro.experiments.sharding import shard_axis_for
        from repro.experiments.study import _listify
        listing = []
        for name in study_names():
            definition = get_study(name)
            listing.append({
                "name": name,
                "title": definition.title,
                "machine": definition.default_machine,
                "backend": definition.default_backend,
                "defaults": {key: _listify(value)
                             for key, value in definition.defaults.items()},
                "smoke": {key: _listify(value)
                          for key, value in definition.smoke_params.items()},
                "shard_axis": shard_axis_for(name).param,
            })
        print(json.dumps(listing, indent=2, sort_keys=True))
        return 0
    for name in study_names():
        definition = get_study(name)
        machine = definition.default_machine or "-"
        print(f"{name:<10} {machine:<28} {definition.title}")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.experiments.diskcache import SweepDiskCache
    from repro.simmpi.tracecache import TraceDiskCache
    cache = SweepDiskCache(args.cache_dir)
    # The sweep layer keeps its compiled-trace cache in a `traces/`
    # subdirectory of the sweep cache; both tiers are reported/pruned
    # together so one command covers everything the directory holds.
    trace_cache = TraceDiskCache(cache.path / "traces")
    if args.cache_command == "stats":
        print(f"cache directory: {cache.path}")
        print(f"entries: {len(cache)}")
        print(f"total bytes: {cache.total_bytes()}")
        print(f"trace entries: {len(trace_cache)}")
        print(f"trace total bytes: {trace_cache.total_bytes()}")
        return 0
    if args.max_entries is None and args.max_age_s is None:
        print("cache prune: give --max-entries and/or --max-age-s")
        return 2
    result = cache.prune(max_entries=args.max_entries,
                         max_age_s=args.max_age_s)
    print(result.describe())
    trace_result = trace_cache.prune(max_entries=args.max_entries,
                                     max_age_s=args.max_age_s)
    print(f"traces: {trace_result.describe()}")
    return 0


def _cmd_table(name: str, args: argparse.Namespace) -> int:
    result = run_study(build_spec(
        name,
        simulate_measurement=not args.no_measurement,
        max_iterations=args.iterations,
        max_pes=args.max_pes,
    ))
    print(format_validation_table(result.payload))
    return 0


def _cmd_figure(name: str, args: argparse.Namespace) -> int:
    from repro.experiments.study import SPECULATIVE_STUDIES
    params = {}
    if args.max_processors is not None:
        study = SPECULATIVE_STUDIES[name]
        params["processor_counts"] = [count for count in study.processor_counts
                                      if count <= args.max_processors]
    result = run_study(build_spec(name, **params))
    print(format_figure(result.payload))
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    machine = get_machine(args.machine)
    deck = standard_deck(args.deck, px=args.px, py=args.py,
                         max_iterations=args.iterations)
    workload = SweepWorkload(deck, args.px, args.py)
    hardware = machine.hardware_model(deck, args.px, args.py)
    engine = EvaluationEngine(load_sweep3d_model(), hardware)
    prediction = engine.predict(workload.model_variables())
    print(machine.describe())
    print(f"workload: {workload.describe()}")
    print(prediction.describe())
    return 0


def _parse_arrays(text: str) -> list[tuple[int, int]] | None:
    """Parse a ``1x1,2x2,...`` processor-array list (None on bad input)."""
    arrays: list[tuple[int, int]] = []
    for token in text.split(","):
        token = token.strip().lower()
        if not token:
            continue
        try:
            px_text, py_text = token.split("x", 1)
            px, py = int(px_text), int(py_text)
        except ValueError:
            print(f"bad processor array {token!r}; expected PXxPY (e.g. 4x4)")
            return None
        if px < 1 or py < 1:
            print(f"bad processor array {token!r}; dimensions must be >= 1")
            return None
        arrays.append((px, py))
    if not arrays:
        print("no processor arrays given")
        return None
    return arrays


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.experiments.backends import (
        PredictionBackend,
        create_backend,
        simulation_grid,
    )
    from repro.experiments.sweep import Scenario, ScenarioSweep, SweepRunner

    if args.workers < 1:
        print("--workers must be >= 1")
        return 2
    machine = get_machine(args.machine)
    if args.arrays is not None:
        arrays = _parse_arrays(args.arrays)
        if arrays is None:
            return 2
    else:
        if args.px < 1 or args.py < 1:
            print("--px/--py must be >= 1")
            return 2
        arrays = [(args.px, args.py)]

    if args.describe_trace:
        if args.backend != "simulate":
            print("--describe-trace needs the simulate backend")
            return 2
        from repro.errors import TraceError
        print(machine.describe())
        for px, py in arrays:
            deck = standard_deck(args.deck, px=px, py=py,
                                 max_iterations=args.iterations)
            plan = machine.simulation_plan(deck, px, py, numeric=args.numeric)
            try:
                print(f"{px}x{py}: {plan.compile_trace().describe()}")
                print(f"{px}x{py}: {plan.last_capture.describe()}")
            except TraceError as exc:
                print(f"{px}x{py}: not trace-compilable ({exc})")
                return 2
        return 0

    # The grid's scenario variables depend on the backend's contract: the
    # simulation backend lowers (px, py) points itself; the prediction
    # backend takes PACE model variables plus one hardware object (weak
    # scaling: one profile serves every point).
    if args.backend == "simulate":
        try:
            backend = create_backend("simulate", machine=machine,
                                     deck=args.deck,
                                     max_iterations=args.iterations,
                                     numeric=args.numeric,
                                     execution=args.execution,
                                     with_noise=not args.no_noise,
                                     samples=args.samples)
        except ExperimentError as exc:
            print(exc)
            return 2
        sweep = simulation_grid(arrays, deck=args.deck)
    elif args.backend == "predict":
        if args.samples:
            print("--samples needs the simulate backend")
            return 2
        first_deck = standard_deck(args.deck, px=arrays[0][0], py=arrays[0][1],
                                   max_iterations=args.iterations)
        hardware = machine.hardware_model(first_deck, arrays[0][0], arrays[0][1])
        backend = PredictionBackend(model=load_sweep3d_model(), hardware=hardware)
        sweep = ScenarioSweep()
        for px, py in arrays:
            deck = standard_deck(args.deck, px=px, py=py,
                                 max_iterations=args.iterations)
            workload = SweepWorkload(deck, px, py)
            sweep.add(Scenario(label=f"{px}x{py}",
                               variables=workload.model_variables(),
                               tags={"px": px, "py": py, "pes": px * py}))
    else:
        from repro.experiments.backends import available_backends
        print(f"unknown backend {args.backend!r}; available: "
              f"{', '.join(available_backends())}")
        return 2

    runner = SweepRunner(backend=backend, workers=args.workers,
                         cache=args.cache_dir)
    outcomes = runner.run(sweep)

    print(machine.describe())
    if len(outcomes) == 1 and args.backend == "simulate":
        result = outcomes[0].result
        print(f"simulated run time: {units.format_seconds(result.elapsed_time)} "
              f"({result.total_messages} messages, "
              f"{result.compute_fraction * 100:.1f}% compute)")
        if getattr(result, "execution_tier", ""):
            print(f"execution tier: {result.execution_tier}")
        if result.n_samples:
            print(f"noise spread over {result.n_samples} seed(s): "
                  f"mean {units.format_seconds(result.elapsed_mean)} "
                  f"± {units.format_seconds(result.elapsed_ci95)} (95% CI), "
                  f"std {units.format_seconds(result.elapsed_std)}")
        if args.numeric and result.error_history:
            print(f"final flux error: {result.error_history[-1]:.3e} "
                  f"after {result.iterations} iterations")
    else:
        column = "Simulated" if args.backend == "simulate" else "Predicted"
        sampled = args.backend == "simulate" and args.samples > 0
        print(f"scenario grid via the {args.backend!r} backend "
              f"({args.deck} deck, {args.iterations} iteration(s), "
              f"{len(outcomes)} point(s)"
              + (f", {args.samples} sample(s)/point)" if sampled else ")"))
        header = f"{'Array':>8} {'PEs':>6} {column:>14}"
        if sampled:
            header += f" {'Mean':>14} {'95% CI':>14}"
        print(header)
        for outcome in outcomes:
            line = (f"{outcome.scenario.label:>8} {outcome.tags['pes']:>6} "
                    f"{units.format_seconds(outcome.total_time):>14}")
            if sampled:
                result = outcome.result
                line += (f" {units.format_seconds(result.elapsed_mean):>14}"
                         f" {units.format_seconds(result.elapsed_ci95):>14}")
            print(line)
    print(f"cache: {runner.stats.describe()}")
    if args.cache_dir is not None:
        print(f"disk: {runner.disk_stats.describe()}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.sweep import Scenario, ScenarioSweep, SweepRunner

    if args.workers < 1:
        print("--workers must be >= 1")
        return 2
    machine = get_machine(args.machine)
    arrays = _parse_arrays(args.arrays)
    if arrays is None:
        return 2

    # Weak scaling: the per-processor problem size is constant across the
    # grid, so one hardware model serves every point.
    first_deck = standard_deck(args.deck, px=arrays[0][0], py=arrays[0][1],
                               max_iterations=args.iterations)
    hardware = machine.hardware_model(first_deck, arrays[0][0], arrays[0][1])

    sweep = ScenarioSweep()
    for px, py in arrays:
        deck = standard_deck(args.deck, px=px, py=py,
                             max_iterations=args.iterations)
        workload = SweepWorkload(deck, px, py)
        sweep.add(Scenario(label=f"{px}x{py}",
                           variables=workload.model_variables(),
                           tags={"px": px, "py": py, "pes": px * py}))

    runner = SweepRunner(model=load_sweep3d_model(), hardware=hardware,
                         workers=args.workers)
    outcomes = runner.run(sweep)

    print(f"scenario sweep on {machine.name} ({args.deck} deck, "
          f"{args.iterations} iteration(s), {len(outcomes)} point(s))")
    print(f"{'Array':>8} {'PEs':>6} {'Predicted':>14}")
    for outcome in outcomes:
        print(f"{outcome.scenario.label:>8} {outcome.tags['pes']:>6} "
              f"{units.format_seconds(outcome.total_time):>14}")
    print(f"cache: {runner.stats.describe()}")
    return 0


def _cmd_hmcl(args: argparse.Namespace) -> int:
    machine = get_machine(args.machine)
    deck = standard_deck(args.deck, px=args.px, py=args.py)
    hardware = machine.hardware_model(deck, args.px, args.py)
    print(format_hmcl(hardware))
    return 0


def _cmd_machines() -> int:
    for name in sorted(MACHINE_PRESETS):
        print(get_machine(name).describe())
        print()
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.core import run_server
    return run_server(host=args.host, port=args.port,
                      cache_dir=args.cache_dir, workers=args.workers,
                      lru_size=args.lru_size,
                      window_s=args.window_ms / 1000.0,
                      artifact_dir=args.artifact_dir,
                      job_fleet_workers=args.job_fleet_workers)


def _cmd_client(args: argparse.Namespace) -> int:
    from repro.errors import ServiceError
    from repro.service.client import ServiceClient
    from repro.service.protocol import encode

    client = ServiceClient(host=args.host, port=args.port,
                           timeout=args.timeout)
    command = args.client_command
    try:
        if command == "predict":
            response = client.predict(args.machine, args.px, args.py,
                                      deck=args.deck,
                                      iterations=args.iterations)
            print(f"predicted time: {response.total_time:.6f} s "
                  f"(compute {response.compute_time:.6f} s, "
                  f"communication {response.communication_time:.6f} s) "
                  f"[{response.source}]")
            return 0
        if command == "simulate":
            response = client.simulate(args.machine, args.px, args.py,
                                       deck=args.deck,
                                       iterations=args.iterations,
                                       with_noise=not args.no_noise,
                                       seed=args.seed,
                                       execution=args.execution,
                                       samples=args.samples)
            print(f"simulated time: {response.elapsed_time:.6f} s on "
                  f"{response.machine} ({response.px}x{response.py}, "
                  f"{response.total_messages} messages, "
                  f"tier {response.execution_tier or '?'}) "
                  f"[{response.source}]")
            if response.elapsed_samples:
                print(f"samples: n={len(response.elapsed_samples)} "
                      f"mean={response.elapsed_mean:.6f} s "
                      f"std={response.elapsed_std:.6f} s "
                      f"ci95={response.elapsed_ci95:.6f} s")
            return 0
        if command == "submit":
            overrides = dict(_parse_override(item)
                             for item in args.overrides)
            spec = _resolve_spec_token(args.study, overrides, set())
            response = client.submit_study(spec, smoke=args.smoke)
            if args.wait:
                response = client.wait(response.job_id)
            print(json.dumps(encode(response), indent=2, sort_keys=True))
            return 0 if response.state not in ("failed", "cancelled") else 1
        if command == "status":
            response = client.status(args.job_id)
        elif command == "result":
            if args.wait:
                client.wait(args.job_id)
            response = client.result(args.job_id)
        elif command == "cancel":
            response = client.cancel(args.job_id)
        elif command == "artifacts":
            response = client.artifacts(args.job_id)
        elif command == "jobs":
            response = client.jobs()
        elif command == "health":
            response = client.health()
        elif command == "stats":
            response = client.stats()
        else:  # pragma: no cover — argparse enforces the choices
            return 2
        print(json.dumps(encode(response), indent=2, sort_keys=True))
        return 0
    except (ServiceError, ExperimentError) as exc:
        print(f"error: {exc}")
        return 2


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    command = args.command
    if command == "run":
        return _cmd_run(args)
    if command == "studies":
        return _cmd_studies(args)
    if command == "shard":
        return _cmd_shard_plan(args)
    if command == "merge":
        return _cmd_merge(args)
    if command == "fleet":
        try:
            return _cmd_fleet(args)
        except ExperimentError as exc:
            print(f"fleet failed: {exc}")
            return 2
    if command == "cache":
        return _cmd_cache(args)
    if command in ("table1", "table2", "table3"):
        return _cmd_table(command, args)
    if command in ("figure8", "figure9"):
        return _cmd_figure(command, args)
    if command == "predict":
        return _cmd_predict(args)
    if command == "simulate":
        return _cmd_simulate(args)
    if command == "sweep":
        return _cmd_sweep(args)
    if command == "ablation":
        print(format_ablation(run_study(build_spec(
            "ablation", max_iterations=args.iterations)).payload))
        return 0
    if command == "agreement":
        print(format_agreement(run_study(build_spec("agreement")).payload))
        return 0
    if command == "machines":
        return _cmd_machines()
    if command == "hmcl":
        return _cmd_hmcl(args)
    if command == "serve":
        return _cmd_serve(args)
    if command == "client":
        return _cmd_client(args)
    parser.error(f"unknown command {command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
