"""PACE — the layered performance characterisation framework of the paper.

This package is the paper's primary contribution re-implemented in Python:

* :mod:`repro.core.clc` — C-language characterisation (clc) operation
  tallies, the unit of serial-kernel description.
* :mod:`repro.core.capp` — the ``capp`` static source analyser: parses a C
  subset, extracts control flow and produces clc flow descriptions.
* :mod:`repro.core.psl` — the Performance Specification Language (a CHIP3S
  dialect): lexer, parser, AST and interpreter for application, subtask and
  parallel-template objects.
* :mod:`repro.core.hmcl` — the Hardware Modelling and Configuration
  Language: processor clc costs and the piece-wise MPI cost model.
* :mod:`repro.core.templates` — the parallel template strategies
  (``pipeline``, ``globalsum``, ``globalmax``, ``async``).
* :mod:`repro.core.evaluation` — the evaluation engine that combines an
  application model with a hardware model to produce a prediction.
* :mod:`repro.core.workload` — helpers that bind SWEEP3D problem
  parameters to the shipped model objects.

The SWEEP3D model scripts of Figures 4-6 and the hardware objects of
Figure 7 live under ``repro/core/resources``.
"""

from repro.core.clc import ClcVector
from repro.core.hmcl.model import CpuCostModel, HardwareModel, MpiCostModel
from repro.core.hmcl.parser import parse_hmcl, format_hmcl
from repro.core.ir import ModelObject, ModelSet, ObjectKind
from repro.core.psl.parser import parse_psl
from repro.core.evaluation.engine import EvaluationEngine
from repro.core.evaluation.result import PredictionResult
from repro.core.workload import SweepWorkload, load_sweep3d_model

__all__ = [
    "ClcVector",
    "CpuCostModel",
    "HardwareModel",
    "MpiCostModel",
    "parse_hmcl",
    "format_hmcl",
    "ModelObject",
    "ModelSet",
    "ObjectKind",
    "parse_psl",
    "EvaluationEngine",
    "PredictionResult",
    "SweepWorkload",
    "load_sweep3d_model",
]
