"""``capp`` — the PACE static C source analyser.

``capp`` parses the serial kernel's C source, extracts its control flow
(loops, branches) and tallies the performance-critical operations of each
statement into clc vectors.  The result is a *flow description*: a tree of
loops/branches/straight-line blocks whose leaves carry operation counts and
whose loop trip counts may be symbolic (resolved later from the problem
parameters or from run-time profiles, as the paper does for the ``ndiag``
value and the branch probabilities).

Only the C subset needed by the bundled ``sweep_kernel.c`` is supported;
unsupported constructs raise :class:`~repro.errors.CappSyntaxError` rather
than being silently ignored.
"""

from repro.core.capp.analyzer import (
    CappAnalyzer,
    analyze_source,
    analyze_sweep_kernel_resource,
)
from repro.core.capp.flow import FlowBlock, FlowBranch, FlowLoop, FlowSeq

__all__ = [
    "CappAnalyzer",
    "analyze_source",
    "analyze_sweep_kernel_resource",
    "FlowBlock",
    "FlowBranch",
    "FlowLoop",
    "FlowSeq",
]
