"""The ``capp`` analysis pass: C AST -> flow descriptions.

The analyser walks each function of the parsed C subset, infers which
operands are double precision (from declarations and parameter types),
tallies the performance-critical operations of every statement and builds a
:class:`~repro.core.capp.flow.FlowNode` tree mirroring the control flow.

Counting rules (documented so the characterisation is reproducible):

===========================  ===========================================
C construct                  clc contribution
===========================  ===========================================
``a + b`` / ``a - b``        ``AFDG`` if either operand is double, else ``INTG``
``a * b``                    ``MFDG`` / ``INTG``
``a / b``                    ``DFDG`` / ``INTG``
array element read           ``LDDG`` (double array) + ``INTG`` per index
array element write          ``STDG`` (double array) + ``INTG`` per index
``if``                       ``IFBR`` plus probability-weighted branch bodies
``for``                      ``LFOR`` once, body weighted by the trip count,
                             plus ``IFBR`` + ``INTG`` per iteration
``fabs(x)``                  ``AFDG``
``fmax/fmin/max/min``        ``AFDG`` + ``IFBR``
``sqrt(x)``                  ``DFDG`` x 2
===========================  ===========================================

Scalar reads/writes are assumed register-allocated and cost nothing — the
same assumption the original capp made, and one reason the paper corrects
static counts with run-time profiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from importlib import resources as importlib_resources
from typing import Mapping

from repro.core.capp import cast
from repro.core.capp.cparser import parse_c
from repro.core.capp.flow import FlowBlock, FlowBranch, FlowLoop, FlowNode, FlowSeq
from repro.core.clc import ClcVector
from repro.errors import CappError

#: Known intrinsic/library calls and their operation cost.
_INTRINSIC_COSTS: dict[str, dict[str, float]] = {
    "fabs": {"AFDG": 1.0},
    "fmax": {"AFDG": 1.0, "IFBR": 1.0},
    "fmin": {"AFDG": 1.0, "IFBR": 1.0},
    "max": {"AFDG": 1.0, "IFBR": 1.0},
    "min": {"AFDG": 1.0, "IFBR": 1.0},
    "sqrt": {"DFDG": 2.0},
    "exp": {"MFDG": 8.0, "AFDG": 6.0},
}

_DEFAULT_BRANCH_PROBABILITY = 0.5


@dataclass
class FunctionAnalysis:
    """Result of analysing a single function."""

    name: str
    flow: FlowNode
    double_symbols: set[str] = field(default_factory=set)
    warnings: list[str] = field(default_factory=list)

    def tally(self, bindings: Mapping[str, float] | None = None) -> ClcVector:
        """Total clc vector under the given variable bindings."""
        return self.flow.tally(dict(bindings or {}))

    def describe(self) -> str:
        return f"function {self.name}:\n" + self.flow.describe(indent=2)


@dataclass
class CappAnalyzer:
    """Analysis of one translation unit."""

    functions: dict[str, FunctionAnalysis] = field(default_factory=dict)
    warnings: list[str] = field(default_factory=list)

    def function(self, name: str) -> FunctionAnalysis:
        try:
            return self.functions[name]
        except KeyError:
            raise CappError(
                f"capp: no function named {name!r} was analysed "
                f"(found: {sorted(self.functions)})") from None

    def tally(self, name: str, bindings: Mapping[str, float] | None = None) -> ClcVector:
        """Clc vector of function ``name`` under ``bindings``."""
        return self.function(name).tally(bindings)


class _FunctionWalker:
    """Walks one function body, producing its flow description."""

    def __init__(self, func: cast.FunctionDef):
        self.func = func
        self.doubles: set[str] = set()
        self.arrays: set[str] = set()
        self.warnings: list[str] = []
        for param in func.params:
            if param.ctype in ("double", "float"):
                self.doubles.add(param.name)
                if param.is_pointer:
                    self.arrays.add(param.name)
            elif param.is_pointer:
                self.arrays.add(param.name)

    # -- type bookkeeping ------------------------------------------------

    def _is_double(self, node: cast.CNode) -> bool:
        if isinstance(node, cast.Num):
            return node.is_float
        if isinstance(node, cast.Var):
            return node.name in self.doubles
        if isinstance(node, cast.Index):
            base = node.base
            return isinstance(base, cast.Var) and base.name in self.doubles
        if isinstance(node, cast.Call):
            return node.name in _INTRINSIC_COSTS
        if isinstance(node, cast.Unary):
            return self._is_double(node.operand)
        if isinstance(node, (cast.Bin, cast.Assign)):
            left = node.left if isinstance(node, cast.Bin) else node.target
            right = node.right if isinstance(node, cast.Bin) else node.value
            return self._is_double(left) or self._is_double(right)
        return False

    # -- expression counting ------------------------------------------------

    def count_expression(self, node: cast.CNode, is_store_target: bool = False) -> ClcVector:
        if isinstance(node, (cast.Num, cast.Var)):
            return ClcVector()
        if isinstance(node, cast.Index):
            clc = ClcVector({"INTG": float(len(node.indices))})
            for index in node.indices:
                clc = clc + self.count_expression(index)
            base_is_double = self._is_double(node)
            if base_is_double:
                clc = clc + ClcVector({"STDG" if is_store_target else "LDDG": 1.0})
            return clc
        if isinstance(node, cast.Call):
            clc = ClcVector()
            for arg in node.args:
                clc = clc + self.count_expression(arg)
            cost = _INTRINSIC_COSTS.get(node.name)
            if cost is None:
                self.warnings.append(
                    f"call to unknown function {node.name!r} counted as zero cost")
                return clc
            return clc + ClcVector(dict(cost))
        if isinstance(node, cast.Unary):
            clc = self.count_expression(node.operand)
            if node.op == "-":
                return clc + ClcVector({"AFDG" if self._is_double(node.operand) else "INTG": 1.0})
            if node.op in ("++", "--"):
                return clc + ClcVector({"INTG": 1.0})
            return clc
        if isinstance(node, cast.Bin):
            clc = self.count_expression(node.left) + self.count_expression(node.right)
            is_double = self._is_double(node)
            if node.op in ("+", "-"):
                return clc + ClcVector({"AFDG" if is_double else "INTG": 1.0})
            if node.op == "*":
                return clc + ClcVector({"MFDG" if is_double else "INTG": 1.0})
            if node.op == "/":
                return clc + ClcVector({"DFDG" if is_double else "INTG": 1.0})
            if node.op == "%":
                return clc + ClcVector({"INTG": 1.0})
            # Comparisons and logical connectives: the branch cost is charged
            # by the enclosing if/for statement.
            return clc
        if isinstance(node, cast.Assign):
            clc = self.count_expression(node.value)
            clc = clc + self.count_expression(node.target, is_store_target=True)
            if node.op != "=":
                is_double = self._is_double(node)
                op = node.op[0]
                if op in ("+", "-"):
                    clc = clc + ClcVector({"AFDG" if is_double else "INTG": 1.0})
                elif op == "*":
                    clc = clc + ClcVector({"MFDG" if is_double else "INTG": 1.0})
                elif op == "/":
                    clc = clc + ClcVector({"DFDG" if is_double else "INTG": 1.0})
            return clc
        raise CappError(f"capp: cannot count expression node {node!r}")

    # -- statements ------------------------------------------------------------

    def walk_block(self, block: cast.Block) -> FlowNode:
        children: list[FlowNode] = []
        for statement in block.statements:
            children.append(self.walk_statement(statement))
        return FlowSeq(children)

    def walk_statement(self, statement: cast.CNode) -> FlowNode:
        if isinstance(statement, cast.Block):
            return self.walk_block(statement)
        if isinstance(statement, cast.Decl):
            return self._walk_declaration(statement)
        if isinstance(statement, cast.ExprStmt):
            return FlowBlock(self.count_expression(statement.expr))
        if isinstance(statement, cast.Return):
            if statement.value is None:
                return FlowBlock(ClcVector())
            return FlowBlock(self.count_expression(statement.value))
        if isinstance(statement, cast.If):
            return self._walk_if(statement)
        if isinstance(statement, cast.For):
            return self._walk_for(statement)
        raise CappError(f"capp: unsupported statement node {statement!r}")

    def _walk_declaration(self, decl: cast.Decl) -> FlowNode:
        clc = ClcVector()
        for name, init, is_array in decl.names:
            if decl.ctype in ("double", "float"):
                self.doubles.add(name)
                if is_array:
                    self.arrays.add(name)
            if init is not None:
                clc = clc + self.count_expression(init)
        return FlowBlock(clc)

    def _walk_if(self, statement: cast.If) -> FlowNode:
        probability = statement.pragma.get("prob", _DEFAULT_BRANCH_PROBABILITY)
        condition_cost = FlowBlock(
            self.count_expression(statement.cond) + ClcVector({"IFBR": 1.0}))
        then_flow = self.walk_block(statement.then)
        else_flow = self.walk_block(statement.els) if statement.els is not None else None
        return FlowSeq([condition_cost,
                        FlowBranch(probability, then_flow, else_flow)])

    def _walk_for(self, statement: cast.For) -> FlowNode:
        count = self._trip_count(statement)
        init_cost = ClcVector()
        if isinstance(statement.init, cast.ExprStmt):
            init_cost = self.count_expression(statement.init.expr)
        elif isinstance(statement.init, cast.Decl):
            init_node = self._walk_declaration(statement.init)
            init_cost = init_node.tally({})
        per_iteration = FlowSeq([
            self.walk_block(statement.body),
            FlowBlock(ClcVector({"IFBR": 1.0, "INTG": 1.0})),   # test + increment
        ])
        return FlowSeq([
            FlowBlock(init_cost + ClcVector({"LFOR": 1.0})),
            FlowLoop(count, per_iteration),
        ])

    def _trip_count(self, statement: cast.For) -> cast.CNode | float:
        if "trips" in statement.pragma:
            return float(statement.pragma["trips"])
        start: cast.CNode | None = None
        variable: str | None = None
        if isinstance(statement.init, cast.ExprStmt) \
                and isinstance(statement.init.expr, cast.Assign):
            assign = statement.init.expr
            if isinstance(assign.target, cast.Var):
                variable = assign.target.name
                start = assign.value
        elif isinstance(statement.init, cast.Decl) and len(statement.init.names) == 1:
            name, init, _ = statement.init.names[0]
            variable, start = name, init
        cond = statement.cond
        if (variable is None or start is None or not isinstance(cond, cast.Bin)
                or not isinstance(cond.left, cast.Var) or cond.left.name != variable
                or cond.op not in ("<", "<=")):
            raise CappError(
                "capp: cannot infer the trip count of a for loop; add a "
                "'/* capp: trips=<n> */' pragma (the profiled average), as the "
                "paper does for data-dependent loop bounds")
        limit = cond.right
        difference = cast.Bin("-", limit, start)
        if cond.op == "<=":
            return cast.Bin("+", difference, cast.Num(1.0, False))
        return difference


def analyze_source(source: str) -> CappAnalyzer:
    """Run ``capp`` over C source text."""
    program = parse_c(source)
    analyzer = CappAnalyzer()
    for func in program.functions:
        walker = _FunctionWalker(func)
        flow = walker.walk_block(func.body)
        analysis = FunctionAnalysis(name=func.name, flow=flow,
                                    double_symbols=set(walker.doubles),
                                    warnings=list(walker.warnings))
        analyzer.functions[func.name] = analysis
        analyzer.warnings.extend(walker.warnings)
    return analyzer


def sweep_kernel_source() -> str:
    """The bundled C source of the SWEEP3D inner kernel."""
    resource = importlib_resources.files("repro.core") / "resources" / "csrc" / "sweep_kernel.c"
    return resource.read_text()


def analyze_sweep_kernel_resource() -> CappAnalyzer:
    """Run ``capp`` over the bundled SWEEP3D kernel source."""
    return analyze_source(sweep_kernel_source())
