"""Abstract syntax tree node types for the ``capp`` C subset."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


class CNode:
    """Marker base class for every C AST node."""

    __slots__ = ()


# -- expressions -------------------------------------------------------------


@dataclass
class Num(CNode):
    value: float
    is_float: bool


@dataclass
class Var(CNode):
    name: str


@dataclass
class Index(CNode):
    """Array access ``base[i][j]...``."""

    base: CNode
    indices: list[CNode]


@dataclass
class Call(CNode):
    name: str
    args: list[CNode]


@dataclass
class Unary(CNode):
    op: str
    operand: CNode


@dataclass
class Bin(CNode):
    op: str
    left: CNode
    right: CNode


@dataclass
class Assign(CNode):
    """Assignment ``target op value`` where op is ``=``, ``+=``, ``-=``, ``*=`` or ``/=``."""

    target: CNode
    op: str
    value: CNode


# -- statements ---------------------------------------------------------------


@dataclass
class Block(CNode):
    statements: list[CNode] = field(default_factory=list)


@dataclass
class Decl(CNode):
    """Variable declaration: ``double a, b = 0.0, c[N];``"""

    ctype: str
    names: list[tuple[str, Optional[CNode], bool]] = field(default_factory=list)


@dataclass
class For(CNode):
    init: Optional[CNode]
    cond: Optional[CNode]
    step: Optional[CNode]
    body: Block
    #: Values from a preceding ``/* capp: ... */`` pragma (e.g. ``trips``).
    pragma: dict[str, float] = field(default_factory=dict)


@dataclass
class If(CNode):
    cond: CNode
    then: Block
    els: Optional[Block] = None
    #: Values from a preceding pragma (e.g. ``prob``).
    pragma: dict[str, float] = field(default_factory=dict)


@dataclass
class ExprStmt(CNode):
    expr: CNode


@dataclass
class Return(CNode):
    value: Optional[CNode] = None


@dataclass
class Param(CNode):
    ctype: str
    name: str
    is_pointer: bool = False


@dataclass
class FunctionDef(CNode):
    return_type: str
    name: str
    params: list[Param] = field(default_factory=list)
    body: Block = field(default_factory=Block)


@dataclass
class Program(CNode):
    functions: list[FunctionDef] = field(default_factory=list)

    def function(self, name: str) -> FunctionDef:
        for func in self.functions:
            if func.name == name:
                return func
        raise KeyError(f"no function named {name!r} in translation unit")
