"""Tokenizer for the C subset understood by ``capp``."""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import CappSyntaxError

#: Token kinds produced by the lexer.
KEYWORDS = {
    "double", "float", "int", "long", "void", "for", "if", "else", "return",
    "const", "static", "while",
}

_TOKEN_RE = re.compile(r"""
    (?P<ws>\s+)
  | (?P<pragma>/\*\s*capp:[^*]*\*/)
  | (?P<comment>/\*.*?\*/|//[^\n]*)
  | (?P<preproc>\#[^\n]*)
  | (?P<number>(\d+\.\d*|\.\d+|\d+)([eE][-+]?\d+)?)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op>\+\+|--|\+=|-=|\*=|/=|<=|>=|==|!=|&&|\|\||[-+*/%<>=!])
  | (?P<punct>[()\[\]{};,])
""", re.VERBOSE | re.DOTALL)


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source line (for error reporting)."""

    kind: str      # "number", "ident", "keyword", "op", "punct", "pragma"
    text: str
    line: int

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Token({self.kind}, {self.text!r}, line {self.line})"


def tokenize(source: str) -> list[Token]:
    """Tokenise C source, keeping ``/* capp: ... */`` pragma comments.

    Ordinary comments and preprocessor lines are discarded; anything the
    grammar does not recognise raises :class:`CappSyntaxError`.
    """
    tokens: list[Token] = []
    pos = 0
    line = 1
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            raise CappSyntaxError(
                f"capp: unexpected character {source[pos]!r} on line {line}")
        text = match.group()
        kind = match.lastgroup or ""
        line += text.count("\n")
        pos = match.end()
        if kind in ("ws", "comment", "preproc"):
            continue
        if kind == "ident" and text in KEYWORDS:
            kind = "keyword"
        tokens.append(Token(kind=kind, text=text, line=line))
    return tokens


def parse_pragma(token: Token) -> dict[str, float]:
    """Parse a ``/* capp: key=value key=value */`` pragma into a dictionary.

    Pragmas supply the information static analysis cannot know — average
    loop trip counts and branch probabilities obtained from run-time
    profiling, exactly as the paper's combined static + dynamic approach.
    """
    inner = token.text[2:-2]                      # strip /* */
    inner = inner.split("capp:", 1)[1]
    values: dict[str, float] = {}
    for item in inner.replace(",", " ").split():
        if "=" not in item:
            raise CappSyntaxError(f"capp: malformed pragma entry {item!r} on line {token.line}")
        key, _, value = item.partition("=")
        try:
            values[key.strip()] = float(value)
        except ValueError as exc:
            raise CappSyntaxError(
                f"capp: non-numeric pragma value {value!r} on line {token.line}") from exc
    return values
