"""Recursive-descent parser for the ``capp`` C subset.

Supported constructs: function definitions, scalar/array declarations,
``for`` loops, ``if``/``else``, assignment and compound-assignment
statements, arithmetic/comparison/logical expressions, array indexing and
calls.  ``/* capp: ... */`` pragma comments may precede ``for`` and ``if``
statements to supply profiled trip counts and branch probabilities.
Anything outside the subset raises :class:`~repro.errors.CappSyntaxError`.
"""

from __future__ import annotations

from typing import Optional

from repro.core.capp import cast
from repro.core.capp.clexer import Token, parse_pragma, tokenize
from repro.errors import CappSyntaxError

_TYPE_KEYWORDS = {"double", "float", "int", "long", "void"}
_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/="}


class CParser:
    """Parses one translation unit of the supported C subset."""

    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.index = 0
        self._pending_pragma: dict[str, float] = {}

    # -- token helpers -----------------------------------------------------

    def _peek(self, offset: int = 0) -> Optional[Token]:
        index = self.index + offset
        return self.tokens[index] if index < len(self.tokens) else None

    def _next(self) -> Token:
        token = self._peek()
        if token is None:
            raise CappSyntaxError("capp: unexpected end of source")
        self.index += 1
        return token

    def _accept(self, text: str) -> bool:
        token = self._peek()
        if token is not None and token.text == text:
            self.index += 1
            return True
        return False

    def _expect(self, text: str) -> Token:
        token = self._next()
        if token.text != text:
            raise CappSyntaxError(
                f"capp: expected {text!r} but found {token.text!r} on line {token.line}")
        return token

    def _consume_pragmas(self) -> None:
        while True:
            token = self._peek()
            if token is not None and token.kind == "pragma":
                self._pending_pragma.update(parse_pragma(token))
                self.index += 1
            else:
                return

    def _take_pragma(self) -> dict[str, float]:
        pragma, self._pending_pragma = self._pending_pragma, {}
        return pragma

    # -- top level ----------------------------------------------------------

    def parse(self) -> cast.Program:
        program = cast.Program()
        while self._peek() is not None:
            self._consume_pragmas()
            if self._peek() is None:
                break
            program.functions.append(self._parse_function())
        return program

    def _parse_function(self) -> cast.FunctionDef:
        while self._accept("static") or self._accept("const"):
            pass
        rtype = self._parse_type_name()
        name = self._parse_identifier()
        self._expect("(")
        params: list[cast.Param] = []
        if not self._accept(")"):
            while True:
                params.append(self._parse_param())
                if self._accept(")"):
                    break
                self._expect(",")
        body = self._parse_block()
        return cast.FunctionDef(return_type=rtype, name=name, params=params, body=body)

    def _parse_param(self) -> cast.Param:
        while self._accept("const"):
            pass
        ctype = self._parse_type_name()
        is_pointer = False
        while self._accept("*"):
            is_pointer = True
        name = self._parse_identifier()
        # Array parameters: double psi[][4] -> treat like pointers.
        while self._accept("["):
            is_pointer = True
            while not self._accept("]"):
                self._next()
        return cast.Param(ctype=ctype, name=name, is_pointer=is_pointer)

    def _parse_type_name(self) -> str:
        token = self._next()
        if token.kind != "keyword" or token.text not in _TYPE_KEYWORDS:
            raise CappSyntaxError(
                f"capp: expected a type name, found {token.text!r} on line {token.line}")
        return token.text

    def _parse_identifier(self) -> str:
        token = self._next()
        if token.kind != "ident":
            raise CappSyntaxError(
                f"capp: expected an identifier, found {token.text!r} on line {token.line}")
        return token.text

    # -- statements -----------------------------------------------------------

    def _parse_block(self) -> cast.Block:
        self._expect("{")
        block = cast.Block()
        while not self._accept("}"):
            block.statements.append(self._parse_statement())
        return block

    def _parse_statement(self) -> cast.CNode:
        self._consume_pragmas()
        token = self._peek()
        if token is None:
            raise CappSyntaxError("capp: unexpected end of source in a block")
        if token.text == "{":
            return self._parse_block()
        if token.kind == "keyword":
            if token.text in _TYPE_KEYWORDS:
                return self._parse_declaration()
            if token.text == "for":
                return self._parse_for()
            if token.text == "if":
                return self._parse_if()
            if token.text == "return":
                self._next()
                value = None
                if not self._accept(";"):
                    value = self._parse_expression()
                    self._expect(";")
                return cast.Return(value)
            if token.text == "while":
                raise CappSyntaxError(
                    f"capp: 'while' loops are outside the supported subset (line {token.line})")
        expr = self._parse_expression()
        self._expect(";")
        return cast.ExprStmt(expr)

    def _parse_declaration(self) -> cast.Decl:
        ctype = self._parse_type_name()
        names: list[tuple[str, Optional[cast.CNode], bool]] = []
        while True:
            while self._accept("*"):
                pass
            name = self._parse_identifier()
            is_array = False
            while self._accept("["):
                is_array = True
                while not self._accept("]"):
                    self._next()
            init = None
            if self._accept("="):
                init = self._parse_expression()
            names.append((name, init, is_array))
            if self._accept(";"):
                break
            self._expect(",")
        return cast.Decl(ctype=ctype, names=names)

    def _parse_for(self) -> cast.For:
        pragma = self._take_pragma()
        self._expect("for")
        self._expect("(")
        init = None
        if not self._accept(";"):
            if self._peek() is not None and self._peek().text in _TYPE_KEYWORDS:
                init = self._parse_declaration()
            else:
                init = cast.ExprStmt(self._parse_expression())
                self._expect(";")
        cond = None
        if not self._accept(";"):
            cond = self._parse_expression()
            self._expect(";")
        step = None
        if not self._accept(")"):
            step = self._parse_expression()
            self._expect(")")
        body = self._parse_statement()
        if not isinstance(body, cast.Block):
            body = cast.Block([body])
        return cast.For(init=init, cond=cond, step=step, body=body, pragma=pragma)

    def _parse_if(self) -> cast.If:
        pragma = self._take_pragma()
        self._expect("if")
        self._expect("(")
        cond = self._parse_expression()
        self._expect(")")
        then = self._parse_statement()
        if not isinstance(then, cast.Block):
            then = cast.Block([then])
        els = None
        if self._accept("else"):
            els = self._parse_statement()
            if not isinstance(els, cast.Block):
                els = cast.Block([els])
        return cast.If(cond=cond, then=then, els=els, pragma=pragma)

    # -- expressions (precedence climbing) --------------------------------------

    def _parse_expression(self) -> cast.CNode:
        return self._parse_assignment()

    def _parse_assignment(self) -> cast.CNode:
        left = self._parse_logical()
        token = self._peek()
        if token is not None and token.text in _ASSIGN_OPS:
            op = self._next().text
            value = self._parse_assignment()
            return cast.Assign(target=left, op=op, value=value)
        return left

    def _parse_logical(self) -> cast.CNode:
        left = self._parse_comparison()
        while True:
            token = self._peek()
            if token is not None and token.text in ("&&", "||"):
                op = self._next().text
                right = self._parse_comparison()
                left = cast.Bin(op, left, right)
            else:
                return left

    def _parse_comparison(self) -> cast.CNode:
        left = self._parse_additive()
        while True:
            token = self._peek()
            if token is not None and token.text in ("<", ">", "<=", ">=", "==", "!="):
                op = self._next().text
                right = self._parse_additive()
                left = cast.Bin(op, left, right)
            else:
                return left

    def _parse_additive(self) -> cast.CNode:
        left = self._parse_multiplicative()
        while True:
            token = self._peek()
            if token is not None and token.text in ("+", "-"):
                op = self._next().text
                right = self._parse_multiplicative()
                left = cast.Bin(op, left, right)
            else:
                return left

    def _parse_multiplicative(self) -> cast.CNode:
        left = self._parse_unary()
        while True:
            token = self._peek()
            if token is not None and token.text in ("*", "/", "%"):
                op = self._next().text
                right = self._parse_unary()
                left = cast.Bin(op, left, right)
            else:
                return left

    def _parse_unary(self) -> cast.CNode:
        token = self._peek()
        if token is not None and token.text in ("-", "+", "!"):
            op = self._next().text
            return cast.Unary(op, self._parse_unary())
        if token is not None and token.text in ("++", "--"):
            op = self._next().text
            return cast.Unary(op, self._parse_unary())
        return self._parse_postfix()

    def _parse_postfix(self) -> cast.CNode:
        node = self._parse_primary()
        while True:
            token = self._peek()
            if token is None:
                return node
            if token.text == "(" and isinstance(node, cast.Var):
                self._next()
                args: list[cast.CNode] = []
                if not self._accept(")"):
                    while True:
                        args.append(self._parse_expression())
                        if self._accept(")"):
                            break
                        self._expect(",")
                node = cast.Call(name=node.name, args=args)
            elif token.text == "[":
                indices: list[cast.CNode] = []
                while self._accept("["):
                    indices.append(self._parse_expression())
                    self._expect("]")
                node = cast.Index(base=node, indices=indices)
            elif token.text in ("++", "--"):
                op = self._next().text
                node = cast.Unary(op, node)
            else:
                return node

    def _parse_primary(self) -> cast.CNode:
        token = self._next()
        if token.kind == "number":
            is_float = "." in token.text or "e" in token.text or "E" in token.text
            return cast.Num(value=float(token.text), is_float=is_float)
        if token.kind == "ident":
            return cast.Var(token.text)
        if token.text == "(":
            expr = self._parse_expression()
            self._expect(")")
            return expr
        raise CappSyntaxError(
            f"capp: unexpected token {token.text!r} on line {token.line}")


def parse_c(source: str) -> cast.Program:
    """Parse C source into a :class:`~repro.core.capp.cast.Program`."""
    return CParser(source).parse()
