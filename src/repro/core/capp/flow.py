"""Flow descriptions: the output of ``capp`` static analysis.

A flow description is a tree whose leaves are straight-line clc tallies and
whose interior nodes are loops (with possibly symbolic trip counts) and
branches (with probabilities).  Evaluating the tree against a set of
variable bindings — the problem parameters, or averages obtained from
run-time profiling — yields the total clc vector of the analysed function,
which is exactly what the PSL ``cflow`` procedures of the subtask objects
encode by hand in the original PACE workflow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.core.capp import cast
from repro.core.clc import ClcVector
from repro.errors import CappError


def evaluate_count_expression(node: cast.CNode | float | int,
                              bindings: Mapping[str, float]) -> float:
    """Evaluate a (possibly symbolic) trip-count expression.

    Supports numeric literals, variable references resolved from
    ``bindings`` and the four arithmetic operators; anything else is outside
    what a static trip count can use.
    """
    if isinstance(node, (int, float)):
        return float(node)
    if isinstance(node, cast.Num):
        return float(node.value)
    if isinstance(node, cast.Var):
        try:
            return float(bindings[node.name])
        except KeyError:
            raise CappError(
                f"capp: trip count references unbound variable {node.name!r}; "
                "supply it in the bindings or add a 'capp: trips=' pragma") from None
    if isinstance(node, cast.Unary) and node.op == "-":
        return -evaluate_count_expression(node.operand, bindings)
    if isinstance(node, cast.Bin):
        left = evaluate_count_expression(node.left, bindings)
        right = evaluate_count_expression(node.right, bindings)
        if node.op == "+":
            return left + right
        if node.op == "-":
            return left - right
        if node.op == "*":
            return left * right
        if node.op == "/":
            return left / right
    raise CappError(f"capp: unsupported trip count expression node {node!r}")


def count_expression_text(node: cast.CNode | float | int) -> str:
    """Readable text of a trip-count expression (for PSL emission and reports)."""
    if isinstance(node, (int, float)):
        return f"{node:g}"
    if isinstance(node, cast.Num):
        return f"{node.value:g}"
    if isinstance(node, cast.Var):
        return node.name
    if isinstance(node, cast.Unary):
        return f"-{count_expression_text(node.operand)}"
    if isinstance(node, cast.Bin):
        return (f"({count_expression_text(node.left)} {node.op} "
                f"{count_expression_text(node.right)})")
    return repr(node)


class FlowNode:
    """Base class of flow description nodes."""

    def tally(self, bindings: Mapping[str, float]) -> ClcVector:
        """Total clc vector of this subtree under ``bindings``."""
        raise NotImplementedError

    def describe(self, indent: int = 0) -> str:
        """Readable multi-line rendering of the subtree."""
        raise NotImplementedError


@dataclass
class FlowBlock(FlowNode):
    """A straight-line tally of operations."""

    clc: ClcVector = field(default_factory=ClcVector)

    def tally(self, bindings: Mapping[str, float]) -> ClcVector:
        return self.clc

    def describe(self, indent: int = 0) -> str:
        return " " * indent + self.clc.describe()


@dataclass
class FlowSeq(FlowNode):
    """Sequential composition of flow nodes."""

    children: list[FlowNode] = field(default_factory=list)

    def tally(self, bindings: Mapping[str, float]) -> ClcVector:
        total = ClcVector()
        for child in self.children:
            total = total + child.tally(bindings)
        return total

    def describe(self, indent: int = 0) -> str:
        return "\n".join(child.describe(indent) for child in self.children) \
            or (" " * indent + "(empty)")


@dataclass
class FlowLoop(FlowNode):
    """A loop whose body executes ``count`` times (possibly symbolic)."""

    count: cast.CNode | float
    body: FlowNode

    def trip_count(self, bindings: Mapping[str, float]) -> float:
        count = evaluate_count_expression(self.count, bindings)
        return max(0.0, count)

    def tally(self, bindings: Mapping[str, float]) -> ClcVector:
        return self.body.tally(bindings) * self.trip_count(bindings)

    def describe(self, indent: int = 0) -> str:
        header = " " * indent + f"loop ({count_expression_text(self.count)}):"
        return header + "\n" + self.body.describe(indent + 2)


@dataclass
class FlowBranch(FlowNode):
    """A branch taken with probability ``probability``."""

    probability: float
    then: FlowNode
    els: FlowNode | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise CappError(f"branch probability must lie in [0, 1]: {self.probability}")

    def tally(self, bindings: Mapping[str, float]) -> ClcVector:
        total = self.then.tally(bindings) * self.probability
        if self.els is not None:
            total = total + self.els.tally(bindings) * (1.0 - self.probability)
        return total

    def describe(self, indent: int = 0) -> str:
        lines = [" " * indent + f"branch (p={self.probability:g}):",
                 self.then.describe(indent + 2)]
        if self.els is not None:
            lines.append(" " * indent + "else:")
            lines.append(self.els.describe(indent + 2))
        return "\n".join(lines)
