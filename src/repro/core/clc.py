"""C-language characterisation (clc) operation vectors.

A clc describes a fragment of serial C code as a tally of performance
critical operations, keyed by the PACE mnemonics (``AFDG`` floating add,
``MFDG`` floating multiply, ``DFDG`` floating divide, ``LDDG``/``STDG``
double loads/stores, ``INTG`` integer ops, ``IFBR`` conditional branches,
``LFOR`` loop start-ups).  The paper keeps only the floating point
mnemonics in its hardware layer and treats the rest as negligible;
:class:`ClcVector` carries them all so both the coarse and the legacy cost
models can be applied to the same characterisation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.simproc.opcodes import OpCategory, OperationMix

#: Mnemonics considered floating point operations.
FLOAT_MNEMONICS = ("AFDG", "MFDG", "DFDG")

#: All mnemonics recognised in clc descriptions, in canonical order.
ALL_MNEMONICS = ("AFDG", "MFDG", "DFDG", "LDDG", "STDG", "INTG", "IFBR", "LFOR")


@dataclass
class ClcVector:
    """A tally of clc operations.

    Supports addition and scaling so that per-statement tallies can be
    accumulated over loops and branches exactly as ``capp`` and the PSL
    ``cflow`` interpreter require.
    """

    counts: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        clean: dict[str, float] = {}
        for key, value in self.counts.items():
            mnemonic = str(key).upper()
            if mnemonic not in ALL_MNEMONICS:
                raise KeyError(f"unknown clc mnemonic {key!r}")
            clean[mnemonic] = clean.get(mnemonic, 0.0) + float(value)
        self.counts = clean

    # -- queries ------------------------------------------------------------

    def count(self, mnemonic: str) -> float:
        return self.counts.get(mnemonic.upper(), 0.0)

    @property
    def flops(self) -> float:
        """Total floating point operations in the tally."""
        return sum(self.counts.get(m, 0.0) for m in FLOAT_MNEMONICS)

    @property
    def total(self) -> float:
        return sum(self.counts.values())

    def is_empty(self) -> bool:
        return not any(self.counts.values())

    # -- algebra --------------------------------------------------------------

    def __add__(self, other: "ClcVector") -> "ClcVector":
        if not isinstance(other, ClcVector):
            return NotImplemented
        counts = dict(self.counts)
        for mnemonic, value in other.counts.items():
            counts[mnemonic] = counts.get(mnemonic, 0.0) + value
        return ClcVector(counts)

    def __mul__(self, factor: float) -> "ClcVector":
        return ClcVector({m: v * factor for m, v in self.counts.items()})

    __rmul__ = __mul__

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ClcVector):
            return NotImplemented
        keys = set(self.counts) | set(other.counts)
        return all(abs(self.count(k) - other.count(k)) < 1e-12 for k in keys)

    # -- conversions ------------------------------------------------------------

    def to_operation_mix(self, working_set_bytes: float = 0.0) -> OperationMix:
        """Convert to the :class:`~repro.simproc.OperationMix` used by the processors."""
        return OperationMix(
            {OpCategory.from_mnemonic(m): v for m, v in self.counts.items()},
            working_set_bytes,
        )

    @classmethod
    def from_operation_mix(cls, mix: OperationMix) -> "ClcVector":
        """Build a clc tally from an operation mix."""
        return cls({category.value: value for category, value in mix.counts.items()})

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, float]) -> "ClcVector":
        return cls(dict(mapping))

    def as_dict(self) -> dict[str, float]:
        """Canonically ordered dictionary of the non-zero counts."""
        return {m: self.counts[m] for m in ALL_MNEMONICS if self.counts.get(m)}

    def describe(self) -> str:
        parts = [f"{m}:{v:g}" for m, v in self.as_dict().items()]
        return "clc(" + ", ".join(parts) + ")"


def sum_vectors(vectors: Iterable[ClcVector]) -> ClcVector:
    """Sum an iterable of clc vectors."""
    total = ClcVector()
    for vector in vectors:
        total = total + vector
    return total
