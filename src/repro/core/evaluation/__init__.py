"""The PACE evaluation engine.

Combines an application model (a :class:`~repro.core.ir.ModelSet` parsed
from PSL) with a hardware model (an HMCL
:class:`~repro.core.hmcl.model.HardwareModel`) to produce predictions of
execution time "within seconds", as Figure 2 of the paper describes.
"""

from repro.core.evaluation.engine import EvaluationEngine
from repro.core.evaluation.result import PredictionResult, SubtaskBreakdown

__all__ = ["EvaluationEngine", "PredictionResult", "SubtaskBreakdown"]
