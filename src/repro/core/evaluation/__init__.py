"""The PACE evaluation stack: a two-phase **compile -> execute** pipeline.

The paper's whole point is *cheap* predictive evaluation — a PACE model
should sweep hundreds of (problem size, blocking factor, processor array,
hardware) points in the time a simulator takes to run one.  The stack is
therefore split into two phases:

compile (:mod:`repro.core.evaluation.compiler`)
    :class:`CompiledModel` lowers a parsed
    :class:`~repro.core.ir.ModelSet` once: object linkage is resolved,
    expressions become pre-bound closures, cflows are constant-folded and
    memoised on exactly the variables they reference, and ``proc`` bodies
    become flat executable plans.  Compilation is hardware-independent and
    shareable across engines and sweep workers.

execute (:class:`~repro.core.evaluation.compiler.CompiledExecutor`)
    Binds a compiled model to one HMCL
    :class:`~repro.core.hmcl.model.HardwareModel` and carries the
    evaluation-time caches, keyed on the hardware fingerprint so hardware
    swaps and mutations can never produce stale predictions.

:class:`EvaluationEngine` is the stable public facade over both phases
(``predict()`` semantics are unchanged from the original interpreter, which
survives as :class:`~repro.core.evaluation.engine.InterpretedEngine`, the
bit-for-bit reference implementation).  Batch evaluation over scenario
grids lives one layer up, in :mod:`repro.experiments.sweep`, where this
pipeline is registered as the ``"predict"`` scenario backend
(:mod:`repro.experiments.backends`) alongside the discrete-event
``"simulate"`` backend; :func:`hardware_fingerprint` doubles as the
hardware component of the disk-backed sweep-cache keys.
"""

from repro.core.evaluation.compiler import (
    CacheStats,
    CompiledExecutor,
    CompiledModel,
    hardware_fingerprint,
)
from repro.core.evaluation.engine import EvaluationEngine, InterpretedEngine
from repro.core.evaluation.result import PredictionResult, SubtaskBreakdown

__all__ = [
    "CacheStats",
    "CompiledExecutor",
    "CompiledModel",
    "EvaluationEngine",
    "InterpretedEngine",
    "PredictionResult",
    "SubtaskBreakdown",
    "hardware_fingerprint",
]
