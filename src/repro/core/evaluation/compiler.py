"""Compile phase of the two-phase (compile -> execute) evaluation pipeline.

The seed evaluation engine re-walked the PSL AST on every ``predict()``
call: every expression was re-dispatched on its node type, every cflow was
re-accumulated statement by statement, and every ``call`` statement
re-resolved its target object and link block.  For a single prediction that
is fine; for the sweeps this repository exists to run (hundreds of
(problem size, blocking, processor array, hardware) points) it is the hot
path.

This module lowers a :class:`~repro.core.ir.ModelSet` once into directly
executable closures:

* **Object linkage is resolved at compile time** — ``call`` targets, link
  blocks and ``partmp`` references become direct references to compiled
  objects instead of name lookups.
* **Expressions become pre-bound closures** — one Python callable per AST
  node, built once, with ``flow(name)`` calls resolved to the owning
  object's cflow at compile time.
* **cflows are constant-folded and memoised** — each cflow knows the exact
  set of variables its value depends on (computed transitively through
  ``call`` statements).  A cflow with no free variables folds to a constant
  :class:`~repro.core.clc.ClcVector` at compile time; the rest memoise
  their vectors keyed on just the referenced variable values, so a sweep
  that varies ``npe_i`` never re-evaluates a cflow that only reads ``kt``.
* **``proc`` bodies are lowered to flat plans** — lists of instruction
  closures executed by a small driver loop, with control-flow statements
  (``for``/``if``) compiled into closures over their pre-compiled bodies.

The execute phase is :class:`CompiledExecutor`: it binds a compiled model
to one HMCL hardware object and carries the evaluation-time caches.  The
subtask cache is keyed on ``(subtask, environment, hardware fingerprint)``
so swapping or mutating the hardware model can never return stale times
(the seed engine's cache ignored the hardware entirely).

Numerical behaviour is bit-identical to the interpreted engine: the
compiled closures perform exactly the same floating point operations in
exactly the same order, and reuse the interpreter's coercion and operator
helpers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.core.clc import ClcVector
from repro.core.hmcl.model import HardwareModel
from repro.core.ir import ModelObject, ModelSet, ObjectKind
from repro.core.psl import ast
from repro.core.psl.interpreter import _apply_binop, _as_number
from repro.core.templates import get_strategy
from repro.core.templates.base import StageSpec, StageStep, TemplateResult
from repro.core.evaluation.result import PredictionResult, SubtaskBreakdown
from repro.errors import EvaluationError, PslEvaluationError, PslNameError

#: Hard cap on loop iterations inside ``proc`` bodies (guards against typos).
MAX_LOOP_ITERATIONS = 1_000_000

#: Maximum structural nesting of cflow bodies (mirrors the interpreter).
_MAX_CFLOW_DEPTH = 32

#: Sentinel used in memoisation keys for variables absent from an environment.
_MISSING = object()

Env = dict  # variable environment: dict[str, float | str]

#: A compiled expression: ``(executor, env) -> float | str``.
CompiledExpr = Callable[["CompiledExecutor", Env], object]

#: A compiled procedure instruction: ``(executor, env, state) -> None``.
Instr = Callable[["CompiledExecutor", Env, "_ExecState"], None]


def hardware_fingerprint(hardware: HardwareModel) -> tuple:
    """A value-based identity for a hardware model, used in cache keys.

    Two hardware models with the same fingerprint produce identical
    predictions, so cached subtask times may be shared between them; any
    mutation of the cpu/mpi sections changes the fingerprint and therefore
    misses the cache instead of returning stale times.
    """
    mpi = hardware.mpi
    return (
        hardware.name,
        hardware.processors_per_node,
        hardware.cpu.source,
        tuple(sorted(hardware.cpu.op_costs.items())),
        tuple(sorted(mpi.send.as_dict().items())),
        tuple(sorted(mpi.recv.as_dict().items())),
        tuple(sorted(mpi.pingpong.as_dict().items())),
    )


@dataclass
class _ExecState:
    """Accumulator while executing an application procedure."""

    time: float = 0.0
    breakdown: dict = field(default_factory=dict)

    def charge(self, name: str, result: TemplateResult) -> None:
        item = self.breakdown.setdefault(name, SubtaskBreakdown(name=name))
        item.time += result.time
        item.calls += 1
        item.compute_time += result.compute_time
        item.communication_time += result.communication_time
        self.time += result.time


@dataclass
class CacheStats:
    """Cache-hit accounting of one executor (or an aggregated sweep)."""

    predictions: int = 0
    subtask_hits: int = 0
    subtask_misses: int = 0
    flow_hits: int = 0
    flow_misses: int = 0

    def merge(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(
            predictions=self.predictions + other.predictions,
            subtask_hits=self.subtask_hits + other.subtask_hits,
            subtask_misses=self.subtask_misses + other.subtask_misses,
            flow_hits=self.flow_hits + other.flow_hits,
            flow_misses=self.flow_misses + other.flow_misses,
        )

    def since(self, baseline: "CacheStats") -> "CacheStats":
        """The accounting accumulated after ``baseline`` was captured."""
        return CacheStats(
            predictions=self.predictions - baseline.predictions,
            subtask_hits=self.subtask_hits - baseline.subtask_hits,
            subtask_misses=self.subtask_misses - baseline.subtask_misses,
            flow_hits=self.flow_hits - baseline.flow_hits,
            flow_misses=self.flow_misses - baseline.flow_misses,
        )

    @property
    def subtask_hit_rate(self) -> float:
        total = self.subtask_hits + self.subtask_misses
        return self.subtask_hits / total if total else 0.0

    def describe(self) -> str:
        return (f"{self.predictions} prediction(s); subtask cache "
                f"{self.subtask_hits} hit(s) / {self.subtask_misses} miss(es); "
                f"flow cache {self.flow_hits} hit(s) / {self.flow_misses} miss(es)")


# ---------------------------------------------------------------------------
# Compiled cflows
# ---------------------------------------------------------------------------


class CompiledCflow:
    """A cflow lowered to a closure, with constant folding and memoisation.

    ``free_vars`` is the exact set of environment variables the cflow's
    value depends on (collected transitively through ``call`` statements at
    compile time); the vector cache is keyed on just those values.  A cflow
    with no free variables is folded to its constant vector eagerly.
    """

    __slots__ = ("name", "free_vars", "_fn", "_cache")

    def __init__(self, name: str, fn: Callable[[Env], ClcVector],
                 free_vars: frozenset):
        self.name = name
        self.free_vars = tuple(sorted(free_vars))
        self._fn = fn
        self._cache: dict = {}
        if not self.free_vars:
            try:
                self._cache[()] = fn({})
            except Exception:
                # Defer compile-time failures to evaluation time so the
                # compiled pipeline raises exactly where the interpreter does.
                pass

    def key(self, env: Mapping) -> tuple:
        return tuple(env.get(name, _MISSING) for name in self.free_vars)

    def vector(self, env: Mapping) -> ClcVector:
        """The cflow's operation vector under ``env`` (memoised)."""
        key = self.key(env)
        try:
            cached = self._cache.get(key)
        except TypeError:           # unhashable variable value
            return self._fn(env)
        if cached is None:
            cached = self._fn(env)
            self._cache[key] = cached
        return cached


# ---------------------------------------------------------------------------
# Compiled objects
# ---------------------------------------------------------------------------


class CompiledObject:
    """One PSL object lowered to executable form."""

    def __init__(self, obj: ModelObject):
        self.obj = obj
        self.name = obj.name
        self.kind = obj.kind
        self.cflows: dict[str, CompiledCflow] = {}
        #: Ordered variable defaults: list of (name, compiled expression).
        self.defaults: list[tuple[str, CompiledExpr]] = []
        #: Lowered procedure plans, keyed by procedure name.
        self.plans: dict[str, list[Instr]] = {}
        #: Compiled link blocks: target name -> list of (name, expression).
        self.links: dict[str, list[tuple[str, CompiledExpr]]] = {}
        #: For subtasks: the compiled parallel template (resolved linkage).
        self.template: CompiledObject | None = None
        #: For templates: compiled stage steps, or an error message when the
        #: stage procedure contains a non-step statement.
        self.stage_steps: list[tuple[str, list[tuple[str, CompiledExpr]]]] = []
        self.stage_error: str | None = None
        self._strategy = None

    def plan(self, name: str) -> list[Instr]:
        if name not in self.plans:
            # Raise the interpreter's lookup error (includes the proc list).
            self.obj.proc(name)
        return self.plans[name]

    def strategy(self):
        if self._strategy is None:
            try:
                self._strategy = get_strategy(self.obj.strategy)
            except KeyError as exc:
                raise EvaluationError(str(exc)) from exc
        return self._strategy


# ---------------------------------------------------------------------------
# The compiler
# ---------------------------------------------------------------------------


class CompiledModel:
    """A :class:`~repro.core.ir.ModelSet` lowered to executable plans.

    Compilation is hardware-independent: one compiled model can be executed
    against any number of HMCL hardware objects (see :meth:`executor`), and
    its cflow vector caches are shared between them.
    """

    def __init__(self, model: ModelSet):
        model.validate()
        self.model = model
        self.objects: dict[str, CompiledObject] = {
            name: CompiledObject(obj) for name, obj in model.objects.items()
        }
        self.application = self.objects[model.application.name]
        for cobj in self.objects.values():
            self._compile_object(cobj)

    def executor(self, hardware: HardwareModel) -> "CompiledExecutor":
        """Bind the compiled model to a hardware object for execution."""
        return CompiledExecutor(self, hardware)

    # -- object compilation ------------------------------------------------

    def _compile_object(self, cobj: CompiledObject) -> None:
        obj = cobj.obj
        for name, cflow in obj.cflows.items():
            free: set = set()
            fn = self._compile_cflow_body(cflow.body, obj, depth=0, free=free)
            cobj.cflows[name] = CompiledCflow(name, fn, frozenset(free))
        cobj.defaults = [(name, self._compile_expression(expr, cobj))
                         for name, expr in obj.variables.items()]
        for target, assignments in obj.links.items():
            cobj.links[target] = [(name, self._compile_expression(expr, cobj))
                                  for name, expr in assignments.items()]
        if obj.kind is ObjectKind.PARTMP:
            if obj.partmp is None and "stage" in obj.procs:
                self._compile_stage(cobj)
        else:
            for name, proc in obj.procs.items():
                cobj.plans[name] = [self._compile_statement(stmt, cobj)
                                    for stmt in proc.body]
        if obj.kind is ObjectKind.SUBTASK and obj.partmp is not None:
            cobj.template = self.objects[obj.partmp]

    def _compile_stage(self, cobj: CompiledObject) -> None:
        for statement in cobj.obj.proc("stage").body:
            if not isinstance(statement, ast.StepStmt):
                cobj.stage_error = (
                    f"the stage procedure of template {cobj.name!r} may only "
                    "contain step statements")
                return
            params = [(key, self._compile_expression(expr, cobj))
                      for key, expr in statement.params.items()]
            cobj.stage_steps.append((statement.device, params))

    # -- expression compilation --------------------------------------------

    def _compile_expression(self, node: ast.PslNode,
                            cobj: CompiledObject | None,
                            free: set | None = None) -> CompiledExpr:
        """Compile an expression into a ``(executor, env) -> value`` closure.

        ``cobj`` supplies the owning object's cflows for ``flow()`` calls
        (``None`` in cflow bodies, where ``flow()`` is not available).
        ``free`` collects referenced variable names when given.
        """
        if isinstance(node, ast.Num):
            value = node.value
            return lambda ctx, env: value
        if isinstance(node, ast.Str):
            value = node.value
            return lambda ctx, env: value
        if isinstance(node, ast.VarRef):
            name = node.name
            if free is not None:
                free.add(name)

            def load(ctx, env, _name=name):
                try:
                    return env[_name]
                except KeyError:
                    raise PslNameError(
                        f"undefined variable {_name!r} in expression") from None
            return load
        if isinstance(node, ast.UnaryOp):
            operand = self._compile_expression(node.operand, cobj, free)
            if node.op == "-":
                return lambda ctx, env: -_as_number(operand(ctx, env), "unary -")
            return lambda ctx, env: _as_number(operand(ctx, env), "unary -")
        if isinstance(node, ast.BinOp):
            left = self._compile_expression(node.left, cobj, free)
            right = self._compile_expression(node.right, cobj, free)
            op = node.op
            return lambda ctx, env: _apply_binop(op, left(ctx, env), right(ctx, env))
        if isinstance(node, ast.FuncCall):
            return self._compile_call(node, cobj, free)
        raise PslEvaluationError(f"cannot evaluate expression node {node!r}")

    def _compile_call(self, node: ast.FuncCall, cobj: CompiledObject | None,
                      free: set | None) -> CompiledExpr:
        name = node.name.lower()
        if name == "flow":
            return self._compile_flow_call(node, cobj)

        args = [self._compile_expression(arg, cobj, free) for arg in node.args]

        def numbers(ctx, env):
            return [_as_number(arg(ctx, env), name) for arg in args]

        if name == "ceil" and len(args) == 1:
            arg = args[0]
            return lambda ctx, env: float(
                math.ceil(_as_number(arg(ctx, env), name) - 1e-12))
        if name == "floor" and len(args) == 1:
            arg = args[0]
            return lambda ctx, env: float(
                math.floor(_as_number(arg(ctx, env), name) + 1e-12))
        if name == "abs" and len(args) == 1:
            arg = args[0]
            return lambda ctx, env: abs(_as_number(arg(ctx, env), name))
        if name == "log2" and len(args) == 1:
            arg = args[0]

            def log2(ctx, env):
                value = _as_number(arg(ctx, env), name)
                if value <= 0:
                    raise PslEvaluationError("log2() of a non-positive value")
                return math.log2(value)
            return log2
        if name == "max" and args:
            return lambda ctx, env: max(numbers(ctx, env))
        if name == "min" and args:
            return lambda ctx, env: min(numbers(ctx, env))

        message = (f"unknown PSL function {node.name!r} with "
                   f"{len(node.args)} argument(s)")

        def unknown(ctx, env):
            numbers(ctx, env)       # evaluate arguments first, as the interpreter does
            raise PslEvaluationError(message)
        return unknown

    def _compile_flow_call(self, node: ast.FuncCall,
                           cobj: CompiledObject | None) -> CompiledExpr:
        if cobj is None:
            def no_hardware(ctx, env):
                raise PslEvaluationError(
                    "flow() can only be used where a hardware model is in scope "
                    "(link expressions and procedures of subtask objects)")
            return no_hardware
        if len(node.args) != 1:
            def bad_arity(ctx, env):
                raise PslEvaluationError("flow() takes exactly one argument")
            return bad_arity
        arg = node.args[0]
        if isinstance(arg, ast.VarRef):
            target = arg.name
        elif isinstance(arg, ast.Str):
            target = arg.value
        else:
            def bad_arg(ctx, env):
                raise PslEvaluationError("flow() expects a cflow name")
            return bad_arg
        cflow = cobj.cflows.get(target)
        if cflow is None:
            obj = cobj.obj

            def missing(ctx, env):
                obj.cflow(target)           # raises the interpreter's PslNameError
            return missing
        return lambda ctx, env: ctx.flow_value(cflow, env)

    # -- cflow compilation --------------------------------------------------

    def _compile_cflow_body(self, body: list, obj: ModelObject, depth: int,
                            free: set) -> Callable[[Env], ClcVector]:
        if depth > _MAX_CFLOW_DEPTH:
            def too_deep(env):
                raise PslEvaluationError(
                    "cflow call nesting exceeds 32 levels (cycle?)")
            return too_deep

        # Statement closures take and return the running total so the
        # accumulation order (and therefore every floating point rounding)
        # matches the interpreter bit for bit — a branch with an else arm
        # performs two separate additions there, not one fused sum.
        parts = [self._compile_cflow_statement(statement, obj, depth, free)
                 for statement in body]

        def run(env):
            total = ClcVector()
            for part in parts:
                total = part(env, total)
            return total
        return run

    def _compile_cflow_statement(
            self, statement, obj: ModelObject, depth: int,
            free: set) -> Callable[[Env, ClcVector], ClcVector]:
        if isinstance(statement, ast.ClcStmt):
            counts = [(mnemonic, self._compile_expression(expr, None, free))
                      for mnemonic, expr in statement.counts.items()]

            def clc(env, total):
                return total + ClcVector({
                    mnemonic: _as_number(expr(None, env), f"clc {mnemonic}")
                    for mnemonic, expr in counts})
            return clc
        if isinstance(statement, ast.LoopStmt):
            count_expr = self._compile_expression(statement.count, None, free)
            inner = self._compile_cflow_body(statement.body, obj, depth + 1, free)

            def loop(env, total):
                count = _as_number(count_expr(None, env), "loop count")
                if count < 0:
                    raise PslEvaluationError(f"negative loop count {count} in cflow")
                return total + inner(env) * count
            return loop
        if isinstance(statement, ast.BranchStmt):
            prob_expr = self._compile_expression(statement.probability, None, free)
            then = self._compile_cflow_body(statement.then, obj, depth + 1, free)
            els = (self._compile_cflow_body(statement.els, obj, depth + 1, free)
                   if statement.els else None)

            def branch(env, total):
                probability = _as_number(prob_expr(None, env), "branch probability")
                if not 0.0 <= probability <= 1.0:
                    raise PslEvaluationError(
                        f"branch probability {probability} outside [0, 1] in cflow")
                total = total + then(env) * probability
                if els is not None:
                    total = total + els(env) * (1.0 - probability)
                return total
            return branch
        if isinstance(statement, ast.CflowCallStmt):
            target = statement.target
            nested = obj.cflows.get(target)
            if nested is None:
                def missing(env, total):
                    obj.cflow(target)       # raises PslNameError with context
                return missing
            nested_body = self._compile_cflow_body(nested.body, obj, depth + 1, free)
            return lambda env, total: total + nested_body(env)

        def unsupported(env, total):
            raise PslEvaluationError(f"unsupported cflow statement {statement!r}")
        return unsupported

    # -- procedure lowering -------------------------------------------------

    def _compile_statement(self, statement, cobj: CompiledObject) -> Instr:
        if isinstance(statement, ast.VarDeclStmt):
            names = [(name, self._compile_expression(init, cobj)
                      if init is not None else None)
                     for name, init in statement.names]

            def decl(ctx, env, state):
                for name, init in names:
                    env[name] = init(ctx, env) if init is not None else 0.0
            return decl
        if isinstance(statement, ast.AssignStmt):
            name = statement.name
            value = self._compile_expression(statement.value, cobj)

            def assign(ctx, env, state):
                env[name] = value(ctx, env)
            return assign
        if isinstance(statement, ast.ComputeStmt):
            seconds_expr = self._compile_expression(statement.seconds, cobj)
            obj_name = cobj.name

            def compute(ctx, env, state):
                seconds = float(seconds_expr(ctx, env))
                if seconds < 0:
                    raise EvaluationError(
                        "compute statement produced a negative time")
                state.charge(obj_name,
                             TemplateResult(time=seconds, compute_time=seconds))
            return compute
        if isinstance(statement, ast.CallStmt):
            return self._compile_call_statement(statement, cobj)
        if isinstance(statement, ast.ForStmt):
            return self._compile_for(statement, cobj)
        if isinstance(statement, ast.IfStmt):
            cond = self._compile_expression(statement.cond, cobj)
            then = [self._compile_statement(stmt, cobj) for stmt in statement.then]
            els = [self._compile_statement(stmt, cobj) for stmt in statement.els]

            def branch(ctx, env, state):
                plan = then if float(cond(ctx, env)) != 0.0 else els
                for instr in plan:
                    instr(ctx, env, state)
            return branch
        if isinstance(statement, ast.StepStmt):
            message = ("step statements are only meaningful inside parallel "
                       f"template stage procedures (object {cobj.name!r})")
        else:
            message = (f"unsupported statement {type(statement).__name__} in a "
                       f"procedure of {cobj.name!r}")

        def unsupported(ctx, env, state):
            raise EvaluationError(message)
        return unsupported

    def _compile_for(self, statement: ast.ForStmt, cobj: CompiledObject) -> Instr:
        var = statement.var
        start_expr = self._compile_expression(statement.start, cobj)
        stop_expr = self._compile_expression(statement.stop, cobj)
        step_expr = (self._compile_expression(statement.step, cobj)
                     if statement.step is not None else None)
        body = [self._compile_statement(stmt, cobj) for stmt in statement.body]
        obj_name = cobj.name

        def loop(ctx, env, state):
            start = float(start_expr(ctx, env))
            stop = float(stop_expr(ctx, env))
            step = float(step_expr(ctx, env)) if step_expr is not None else 1.0
            if step == 0:
                raise EvaluationError(f"for loop in {obj_name!r} has a zero step")
            iterations = 0
            value = start
            while (value <= stop + 1e-12) if step > 0 else (value >= stop - 1e-12):
                env[var] = value
                for instr in body:
                    instr(ctx, env, state)
                value += step
                iterations += 1
                if iterations > MAX_LOOP_ITERATIONS:
                    raise EvaluationError(
                        f"for loop in {obj_name!r} exceeded "
                        f"{MAX_LOOP_ITERATIONS} iterations")
        return loop

    def _compile_call_statement(self, statement: ast.CallStmt,
                                cobj: CompiledObject) -> Instr:
        target_name = statement.target
        target = self.objects.get(target_name)
        if target is None:
            model = self.model

            def missing(ctx, env, state):
                model.get(target_name)      # raises the canonical PslNameError
            return missing
        link = cobj.links.get(target_name, [])

        if target.kind is ObjectKind.SUBTASK:
            def call_subtask(ctx, env, state):
                overrides = {name: expr(ctx, env) for name, expr in link}
                child_env = ctx.object_environment(target, overrides)
                state.charge(target.name, ctx.evaluate_subtask(target, child_env))
            return call_subtask
        if target.kind is ObjectKind.PARTMP:
            def call_template(ctx, env, state):
                overrides = {name: expr(ctx, env) for name, expr in link}
                child_env = ctx.object_environment(target, overrides)
                state.charge(target.name, ctx.evaluate_template(target, child_env))
            return call_template

        message = (f"object {cobj.name!r} cannot call application object "
                   f"{target_name!r}")

        def bad_kind(ctx, env, state):
            raise EvaluationError(message)
        return bad_kind


# ---------------------------------------------------------------------------
# The executor (execute phase)
# ---------------------------------------------------------------------------


class CompiledExecutor:
    """Executes a :class:`CompiledModel` against one hardware model.

    Carries the evaluation-time caches:

    * the **subtask cache**, keyed on ``(subtask, environment, hardware
      fingerprint)`` — safe against hardware mutation or swapping;
    * the **flow cache**, memoising ``flow(name)`` seconds keyed on the
      cflow's referenced variables plus the hardware fingerprint (the
      underlying clc vectors are cached hardware-independently on the
      compiled cflows themselves, shared across executors).
    """

    def __init__(self, compiled: CompiledModel, hardware: HardwareModel):
        self.compiled = compiled
        self.hardware = hardware
        self.cache: dict = {}
        self.stats = CacheStats()
        self._flow_cache: dict = {}
        self._hw_token = hardware_fingerprint(hardware)

    # -- public entry points ------------------------------------------------

    def predict(self, variables: Mapping | None = None,
                entry_proc: str = "init") -> PredictionResult:
        self.refresh_hardware()
        self.stats.predictions += 1
        app = self.compiled.application
        env = self.object_environment(app, dict(variables or {}))
        state = _ExecState()
        self.run_plan(app.plan(entry_proc), env, state)
        return PredictionResult(
            total_time=state.time,
            breakdown=state.breakdown,
            variables={k: v for k, v in env.items()
                       if isinstance(v, (int, float, str))},
            hardware_name=self.hardware.name,
            application_name=app.name,
        )

    def predict_subtask(self, name: str,
                        variables: Mapping | None = None) -> TemplateResult:
        self.refresh_hardware()
        subtask = self._object(name)
        env = self.object_environment(subtask, dict(variables or {}))
        return self.evaluate_subtask(subtask, env)

    def cflow_vector(self, object_name: str, cflow_name: str,
                     variables: Mapping | None = None) -> ClcVector:
        cobj = self._object(object_name)
        env = self.object_environment(cobj, dict(variables or {}))
        cflow = cobj.cflows.get(cflow_name)
        if cflow is None:
            cobj.obj.cflow(cflow_name)      # raises PslNameError with context
        return cflow.vector(env)

    def clear_cache(self) -> None:
        self.cache.clear()
        self._flow_cache.clear()

    def refresh_hardware(self) -> None:
        """Recompute the hardware fingerprint (cheap; called per prediction).

        In-place mutation of the bound hardware model changes the
        fingerprint and therefore the cache keys, so stale entries are
        simply never hit again.
        """
        self._hw_token = hardware_fingerprint(self.hardware)

    # -- execution ----------------------------------------------------------

    def run_plan(self, plan: list, env: Env, state: _ExecState) -> None:
        for instr in plan:
            instr(self, env, state)

    def object_environment(self, cobj: CompiledObject, overrides: Mapping) -> Env:
        env: Env = {}
        for name, default in cobj.defaults:
            env[name] = default(self, env)
        for name, value in overrides.items():
            env[name] = value
        return env

    def flow_value(self, cflow: CompiledCflow, env: Env) -> float:
        key = (id(cflow), cflow.key(env), self._hw_token)
        try:
            cached = self._flow_cache.get(key)
        except TypeError:
            return self.hardware.compute_time(cflow.vector(env))
        if cached is None:
            self.stats.flow_misses += 1
            cached = self.hardware.compute_time(cflow.vector(env))
            self._flow_cache[key] = cached
        else:
            self.stats.flow_hits += 1
        return cached

    def evaluate_subtask(self, cobj: CompiledObject, env: Env) -> TemplateResult:
        cache_key = self._cache_key(cobj.name, env)
        if cache_key is not None:
            cached = self.cache.get(cache_key)
            if cached is not None:
                self.stats.subtask_hits += 1
                return cached
            self.stats.subtask_misses += 1

        if cobj.template is None:
            if "init" in cobj.plans:
                state = _ExecState()
                self.run_plan(cobj.plans["init"], env, state)
                result = TemplateResult(time=state.time, compute_time=state.time)
            else:
                raise EvaluationError(
                    f"subtask {cobj.name!r} has neither a parallel template nor "
                    "an init procedure")
        else:
            template = cobj.template
            overrides = {name: expr(self, env)
                         for name, expr in cobj.links.get(template.name, [])}
            template_env = self.object_environment(template, overrides)
            result = self.evaluate_template(template, template_env)

        if cache_key is not None:
            self.cache[cache_key] = result
        return result

    def evaluate_template(self, cobj: CompiledObject, env: Env) -> TemplateResult:
        if cobj.kind is not ObjectKind.PARTMP:
            raise EvaluationError(f"object {cobj.name!r} is not a parallel template")
        if cobj.stage_error is not None:
            raise EvaluationError(cobj.stage_error)
        spec = StageSpec()
        for device, params in cobj.stage_steps:
            spec.steps.append(StageStep(
                device=device,
                params={key: expr(self, env) for key, expr in params}))
        strategy = cobj.strategy()
        # Strategies may provide a compiled-pipeline fast path (the pipeline
        # template's steady-state extrapolation); it must agree with the
        # exact evaluation to <= 1e-12 relative.
        evaluate = getattr(strategy, "evaluate_fast", None) or strategy.evaluate
        return evaluate(env, spec, self.hardware)

    # -- helpers ------------------------------------------------------------

    def _object(self, name: str) -> CompiledObject:
        cobj = self.compiled.objects.get(name)
        if cobj is None:
            self.compiled.model.get(name)   # raises the canonical PslNameError
        return cobj

    def _cache_key(self, name: str, env: Mapping) -> tuple | None:
        try:
            return (name, tuple(sorted(env.items())), self._hw_token)
        except TypeError:
            return None
