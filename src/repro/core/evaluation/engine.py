"""Object- and procedure-level evaluation of PACE models.

:class:`EvaluationEngine` is the public entry point.  Since the
compile/execute refactor it is a thin facade over the two-phase pipeline in
:mod:`repro.core.evaluation.compiler`:

* **compile** — the model set is lowered once into a
  :class:`~repro.core.evaluation.compiler.CompiledModel` (resolved linkage,
  pre-bound flow closures, constant-folded/memoised cflows, flat procedure
  plans);
* **execute** — a :class:`~repro.core.evaluation.compiler.CompiledExecutor`
  binds the compiled model to one HMCL hardware object and carries the
  hardware-aware caches.

``predict()`` semantics are unchanged from the interpreted engine, and the
original AST-walking implementation is retained as
:class:`InterpretedEngine` — the reference implementation the compiled
pipeline is tested against bit-for-bit (construct the facade with
``compiled=False`` to use it).
"""

from __future__ import annotations

from typing import Mapping

from repro.core.hmcl.model import HardwareModel
from repro.core.ir import ModelObject, ModelSet, ObjectKind
from repro.core.psl import ast
from repro.core.psl.interpreter import evaluate_cflow, evaluate_expression
from repro.core.templates import get_strategy
from repro.core.templates.base import StageSpec, StageStep, TemplateResult
from repro.core.evaluation.compiler import (
    MAX_LOOP_ITERATIONS,
    CacheStats,
    CompiledModel,
    _ExecState,
)
from repro.core.evaluation.result import PredictionResult
from repro.errors import EvaluationError


class EvaluationEngine:
    """Combines an application model with a hardware model to produce predictions.

    Parameters
    ----------
    model:
        The parsed model set (application + subtasks + parallel templates).
    hardware:
        The HMCL hardware object to evaluate against.
    compiled:
        ``True`` (default) evaluates through the compiled pipeline; a
        pre-built :class:`CompiledModel` may be passed to share the compile
        step (and the hardware-independent cflow caches) across engines, as
        the sweep runner does; ``False`` selects the interpreted reference
        implementation.
    """

    def __init__(self, model: ModelSet, hardware: HardwareModel,
                 compiled: CompiledModel | bool = True):
        if isinstance(compiled, CompiledModel):
            if compiled.model is not model:
                raise EvaluationError(
                    "the precompiled model was built from a different ModelSet")
            self.compiled_model: CompiledModel | None = compiled
        elif compiled:
            self.compiled_model = CompiledModel(model)
        else:
            model.validate()
            self.compiled_model = None
        self.model = model
        if self.compiled_model is not None:
            self._executor = self.compiled_model.executor(hardware)
        else:
            self._executor = InterpretedEngine(model, hardware)

    # ------------------------------------------------------------------

    @property
    def hardware(self) -> HardwareModel:
        return self._executor.hardware

    @hardware.setter
    def hardware(self, hardware: HardwareModel) -> None:
        # The compiled executor keys its caches on the hardware fingerprint,
        # so swapping is always safe; the interpreted reference cache is not
        # hardware-aware and must be dropped.
        if self.compiled_model is None:
            self._executor.clear_cache()
        self._executor.hardware = hardware

    @property
    def _subtask_cache(self) -> dict:
        """The memoised subtask evaluations (exposed for tests/diagnostics)."""
        return (self._executor.cache if self.compiled_model is not None
                else self._executor._subtask_cache)

    @property
    def cache_stats(self) -> CacheStats:
        """Cache-hit accounting (compiled pipeline only)."""
        if self.compiled_model is None:
            return CacheStats()
        return self._executor.stats

    # ------------------------------------------------------------------

    def predict(self, variables: Mapping[str, float | str] | None = None,
                entry_proc: str = "init") -> PredictionResult:
        """Evaluate the application object and return the prediction.

        ``variables`` override the application object's ``var`` defaults —
        this is how the problem size, blocking factors and processor array
        dimensions are supplied at evaluation time (the paper's externally
        modifiable variables).
        """
        return self._executor.predict(variables, entry_proc)

    def predict_subtask(self, name: str,
                        variables: Mapping[str, float | str] | None = None) -> TemplateResult:
        """Evaluate a single subtask object in isolation (useful for tests)."""
        return self._executor.predict_subtask(name, variables)

    def cflow_vector(self, object_name: str, cflow_name: str,
                     variables: Mapping[str, float | str] | None = None):
        """Evaluate a cflow of a model object into a clc vector (introspection)."""
        return self._executor.cflow_vector(object_name, cflow_name, variables)

    def clear_cache(self) -> None:
        """Drop memoised evaluations.

        Never required for correctness on the compiled path (its caches are
        keyed on the hardware fingerprint).  On the ``compiled=False``
        reference path the cache ignores the hardware, so call this after
        mutating the hardware model in place (swapping through the
        :attr:`hardware` setter clears it automatically).
        """
        self._executor.clear_cache()


class InterpretedEngine:
    """The original AST-walking evaluator, kept as the reference implementation.

    The compiled pipeline must agree with this class bit-for-bit; the test
    suite and the engine-speed benchmark compare the two.  Unlike the
    compiled executor its subtask cache is **not** hardware-aware — swap the
    hardware only through the :class:`EvaluationEngine` facade (which clears
    it) or call :meth:`clear_cache` manually.
    """

    def __init__(self, model: ModelSet, hardware: HardwareModel):
        model.validate()
        self.model = model
        self.hardware = hardware
        self._subtask_cache: dict[tuple, tuple[float, TemplateResult]] = {}

    # ------------------------------------------------------------------

    def predict(self, variables: Mapping[str, float | str] | None = None,
                entry_proc: str = "init") -> PredictionResult:
        app = self.model.application
        env = self._object_environment(app, dict(variables or {}))
        state = _ExecState()
        self._execute_proc(app, app.proc(entry_proc).body, env, state)
        return PredictionResult(
            total_time=state.time,
            breakdown=state.breakdown,
            variables={k: v for k, v in env.items() if isinstance(v, (int, float, str))},
            hardware_name=self.hardware.name,
            application_name=app.name,
        )

    def predict_subtask(self, name: str,
                        variables: Mapping[str, float | str] | None = None) -> TemplateResult:
        subtask = self.model.get(name)
        env = self._object_environment(subtask, dict(variables or {}))
        return self._evaluate_subtask(subtask, env)

    # ------------------------------------------------------------------
    # Environments
    # ------------------------------------------------------------------

    def _object_environment(self, obj: ModelObject,
                            overrides: Mapping[str, float | str]) -> dict[str, float | str]:
        """Evaluate an object's variable defaults, then apply overrides."""
        env: dict[str, float | str] = {}
        for name, default in obj.variables.items():
            env[name] = evaluate_expression(default, env,
                                            self._flow_evaluator(obj, env))
        for name, value in overrides.items():
            env[name] = value
        return env

    def _flow_evaluator(self, obj: ModelObject, env: Mapping[str, float | str]):
        """Build the ``flow(name)`` callback for expressions evaluated in ``obj``."""
        def evaluate_flow(name: str) -> float:
            cflow = obj.cflow(name)
            clc = evaluate_cflow(cflow, env, resolve_cflow=obj.cflow)
            return self.hardware.compute_time(clc)
        return evaluate_flow

    def cflow_vector(self, object_name: str, cflow_name: str,
                     variables: Mapping[str, float | str] | None = None):
        obj = self.model.get(object_name)
        env = self._object_environment(obj, dict(variables or {}))
        return evaluate_cflow(obj.cflow(cflow_name), env, resolve_cflow=obj.cflow)

    # ------------------------------------------------------------------
    # Procedure execution (application-level control flow)
    # ------------------------------------------------------------------

    def _execute_proc(self, obj: ModelObject, body: list[ast.PslNode],
                      env: dict[str, float | str], state: _ExecState) -> None:
        flow = self._flow_evaluator(obj, env)
        for statement in body:
            if isinstance(statement, ast.VarDeclStmt):
                for name, init in statement.names:
                    env[name] = (evaluate_expression(init, env, flow)
                                 if init is not None else 0.0)
            elif isinstance(statement, ast.AssignStmt):
                env[statement.name] = evaluate_expression(statement.value, env, flow)
            elif isinstance(statement, ast.ComputeStmt):
                seconds = float(evaluate_expression(statement.seconds, env, flow))
                if seconds < 0:
                    raise EvaluationError("compute statement produced a negative time")
                state.charge(obj.name, TemplateResult(time=seconds, compute_time=seconds))
            elif isinstance(statement, ast.CallStmt):
                self._execute_call(obj, statement.target, env, state)
            elif isinstance(statement, ast.ForStmt):
                self._execute_for(obj, statement, env, state)
            elif isinstance(statement, ast.IfStmt):
                condition = evaluate_expression(statement.cond, env, flow)
                branch = statement.then if float(condition) != 0.0 else statement.els
                self._execute_proc(obj, branch, env, state)
            elif isinstance(statement, ast.StepStmt):
                raise EvaluationError(
                    "step statements are only meaningful inside parallel template "
                    f"stage procedures (object {obj.name!r})")
            else:
                raise EvaluationError(
                    f"unsupported statement {type(statement).__name__} in a procedure "
                    f"of {obj.name!r}")

    def _execute_for(self, obj: ModelObject, statement: ast.ForStmt,
                     env: dict[str, float | str], state: _ExecState) -> None:
        flow = self._flow_evaluator(obj, env)
        start = float(evaluate_expression(statement.start, env, flow))
        stop = float(evaluate_expression(statement.stop, env, flow))
        step = (float(evaluate_expression(statement.step, env, flow))
                if statement.step is not None else 1.0)
        if step == 0:
            raise EvaluationError(f"for loop in {obj.name!r} has a zero step")
        iterations = 0
        value = start
        while (value <= stop + 1e-12) if step > 0 else (value >= stop - 1e-12):
            env[statement.var] = value
            self._execute_proc(obj, statement.body, env, state)
            value += step
            iterations += 1
            if iterations > MAX_LOOP_ITERATIONS:
                raise EvaluationError(
                    f"for loop in {obj.name!r} exceeded {MAX_LOOP_ITERATIONS} iterations")

    def _execute_call(self, caller: ModelObject, target_name: str,
                      env: dict[str, float | str], state: _ExecState) -> None:
        target = self.model.get(target_name)
        caller_flow = self._flow_evaluator(caller, env)
        overrides: dict[str, float | str] = {}
        for name, expr in caller.link_for(target_name).items():
            overrides[name] = evaluate_expression(expr, env, caller_flow)
        child_env = self._object_environment(target, overrides)

        if target.kind is ObjectKind.SUBTASK:
            result = self._evaluate_subtask(target, child_env)
            state.charge(target.name, result)
        elif target.kind is ObjectKind.PARTMP:
            result = self._evaluate_template(target, child_env)
            state.charge(target.name, result)
        else:
            raise EvaluationError(
                f"object {caller.name!r} cannot call application object {target_name!r}")

    # ------------------------------------------------------------------
    # Subtask / template evaluation
    # ------------------------------------------------------------------

    def _evaluate_subtask(self, subtask: ModelObject,
                          env: dict[str, float | str]) -> TemplateResult:
        cache_key = self._cache_key(subtask.name, env)
        if cache_key is not None and cache_key in self._subtask_cache:
            _, cached = self._subtask_cache[cache_key]
            return cached

        if subtask.partmp is None:
            # A subtask without a template behaves as purely serial work from
            # its optional init procedure.
            if "init" in subtask.procs:
                state = _ExecState()
                self._execute_proc(subtask, subtask.proc("init").body, env, state)
                result = TemplateResult(time=state.time, compute_time=state.time)
            else:
                raise EvaluationError(
                    f"subtask {subtask.name!r} has neither a parallel template nor "
                    "an init procedure")
        else:
            template = self.model.get(subtask.partmp)
            flow = self._flow_evaluator(subtask, env)
            overrides: dict[str, float | str] = {}
            for name, expr in subtask.link_for(subtask.partmp).items():
                overrides[name] = evaluate_expression(expr, env, flow)
            template_env = self._object_environment(template, overrides)
            result = self._evaluate_template(template, template_env)

        if cache_key is not None:
            self._subtask_cache[cache_key] = (result.time, result)
        return result

    def _evaluate_template(self, template: ModelObject,
                           env: dict[str, float | str]) -> TemplateResult:
        if template.kind is not ObjectKind.PARTMP:
            raise EvaluationError(f"object {template.name!r} is not a parallel template")
        stage = self._stage_spec(template, env)
        try:
            strategy = get_strategy(template.strategy)
        except KeyError as exc:
            raise EvaluationError(str(exc)) from exc
        return strategy.evaluate(env, stage, self.hardware)

    def _stage_spec(self, template: ModelObject, env: dict[str, float | str]) -> StageSpec:
        """Evaluate the template's ``stage`` procedure into a stage specification."""
        spec = StageSpec()
        if "stage" not in template.procs:
            return spec
        flow = self._flow_evaluator(template, env)
        for statement in template.proc("stage").body:
            if not isinstance(statement, ast.StepStmt):
                raise EvaluationError(
                    f"the stage procedure of template {template.name!r} may only "
                    "contain step statements")
            params = {key: evaluate_expression(expr, env, flow)
                      for key, expr in statement.params.items()}
            spec.steps.append(StageStep(device=statement.device, params=params))
        return spec

    # ------------------------------------------------------------------

    @staticmethod
    def _cache_key(name: str, env: Mapping[str, float | str]) -> tuple | None:
        try:
            return (name, tuple(sorted(env.items())))
        except TypeError:
            return None

    def clear_cache(self) -> None:
        """Drop memoised subtask evaluations (e.g. after mutating the hardware model)."""
        self._subtask_cache.clear()
