"""Prediction results produced by the evaluation engine."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import units


@dataclass
class SubtaskBreakdown:
    """Accumulated contribution of one subtask to a prediction."""

    name: str
    time: float = 0.0
    calls: int = 0
    compute_time: float = 0.0
    communication_time: float = 0.0

    @property
    def fraction_communication(self) -> float:
        if self.time <= 0:
            return 0.0
        return self.communication_time / self.time


@dataclass
class PredictionResult:
    """A complete prediction for one application/hardware/parameter combination."""

    #: Predicted elapsed (wall-clock) time of the application, in seconds.
    total_time: float
    #: Per-subtask contributions, keyed by subtask name.
    breakdown: dict[str, SubtaskBreakdown] = field(default_factory=dict)
    #: The externally supplied variables the prediction was evaluated with.
    variables: dict[str, float | str] = field(default_factory=dict)
    #: Name of the HMCL hardware object used.
    hardware_name: str = ""
    #: Name of the application object evaluated.
    application_name: str = ""

    @property
    def compute_time(self) -> float:
        """Total predicted single-processor compute time across all subtasks."""
        return sum(item.compute_time for item in self.breakdown.values())

    @property
    def communication_time(self) -> float:
        """Total predicted communication / pipeline-wait time."""
        return sum(item.communication_time for item in self.breakdown.values())

    def subtask(self, name: str) -> SubtaskBreakdown:
        return self.breakdown[name]

    def dominant_subtask(self) -> str:
        """Name of the subtask contributing the most predicted time."""
        if not self.breakdown:
            return ""
        return max(self.breakdown.values(), key=lambda item: item.time).name

    def describe(self) -> str:
        """Multi-line human readable summary of the prediction."""
        lines = [
            f"prediction for {self.application_name or 'application'} "
            f"on {self.hardware_name or 'hardware'}: "
            f"{units.format_seconds(self.total_time)}"
        ]
        for name in sorted(self.breakdown, key=lambda n: -self.breakdown[n].time):
            item = self.breakdown[name]
            share = item.time / self.total_time * 100 if self.total_time > 0 else 0.0
            lines.append(
                f"  {name:<16} {units.format_seconds(item.time):>12}  "
                f"({share:5.1f}%, {item.calls} call(s), "
                f"{item.fraction_communication * 100:4.1f}% comm)")
        return "\n".join(lines)
