"""Hardware Modelling and Configuration Language (HMCL).

An HMCL hardware object (Figure 7 of the paper) records, for one machine,

* the ``cpu`` section: the time cost of each clc operation.  With the
  paper's *coarse* approach the floating point mnemonics all carry the
  achieved seconds-per-flop measured by profiling and the bookkeeping
  mnemonics are zero; with the *legacy* approach every mnemonic carries its
  micro-benchmarked latency.
* the ``mpi`` section: three sets of the piece-wise-linear A-E parameters
  (send, receive, ping-pong) fitted from MPI micro-benchmarks.
* a ``meta`` section with descriptive fields (name, processors per node).

:mod:`repro.core.hmcl.model` holds the in-memory model;
:mod:`repro.core.hmcl.parser` reads and writes the textual HMCL format used
by the resource scripts.
"""

from repro.core.hmcl.model import CpuCostModel, HardwareModel, MpiCostModel
from repro.core.hmcl.parser import parse_hmcl, format_hmcl, load_hmcl_resource

__all__ = [
    "CpuCostModel",
    "HardwareModel",
    "MpiCostModel",
    "parse_hmcl",
    "format_hmcl",
    "load_hmcl_resource",
]
