"""In-memory hardware resource model (the HMCL object)."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro import units
from repro.core.clc import ALL_MNEMONICS, FLOAT_MNEMONICS, ClcVector
from repro.errors import HmclLookupError
from repro.profiling.curvefit import PiecewiseLinearModel


@dataclass(frozen=True)
class CpuCostModel:
    """Per-clc-operation time costs (seconds) of one processor.

    Two construction styles correspond to the paper's two benchmarking
    approaches:

    * :meth:`from_achieved_rate` — the *coarse* approach: every floating
      point mnemonic costs ``1 / rate`` seconds and every bookkeeping
      mnemonic costs zero (their cost is absorbed into the achieved rate).
    * :meth:`from_opcode_benchmark` — the *legacy* approach: every mnemonic
      carries its micro-benchmarked time.
    """

    #: Seconds per operation, keyed by clc mnemonic.  Missing mnemonics cost 0.
    op_costs: dict[str, float] = field(default_factory=dict)
    #: Label describing how the costs were obtained ("achieved-rate",
    #: "opcode-benchmark", "manual").
    source: str = "manual"

    def __post_init__(self) -> None:
        for mnemonic, cost in self.op_costs.items():
            if mnemonic.upper() not in ALL_MNEMONICS:
                raise HmclLookupError(f"unknown clc mnemonic in cpu section: {mnemonic}")
            if cost < 0:
                raise HmclLookupError(f"negative cost for {mnemonic}: {cost}")

    def cost(self, mnemonic: str) -> float:
        """Seconds per operation of ``mnemonic``."""
        return self.op_costs.get(mnemonic.upper(), 0.0)

    def evaluate(self, clc: ClcVector) -> float:
        """Seconds to execute a clc tally on this processor."""
        return sum(count * self.cost(mnemonic) for mnemonic, count in clc.counts.items())

    @property
    def seconds_per_flop(self) -> float:
        """Representative floating point cost (the ``MFDG`` entry)."""
        return self.cost("MFDG")

    @property
    def achieved_mflops(self) -> float:
        """Achieved rate implied by the floating point cost."""
        cost = self.seconds_per_flop
        if cost <= 0:
            raise HmclLookupError("cpu section has no floating point cost")
        return 1.0 / cost / units.MFLOPS

    # -- constructors -----------------------------------------------------

    @classmethod
    def from_achieved_rate(cls, flop_rate: float) -> "CpuCostModel":
        """Coarse model: a single achieved floating point rate (flop/s)."""
        if flop_rate <= 0:
            raise HmclLookupError("achieved flop rate must be positive")
        per_flop = 1.0 / flop_rate
        costs = {mnemonic: per_flop for mnemonic in FLOAT_MNEMONICS}
        # Branch and loop opcodes are taken to be negligible (Section 4.3).
        costs.update({"LDDG": 0.0, "STDG": 0.0, "INTG": 0.0, "IFBR": 0.0, "LFOR": 0.0})
        return cls(op_costs=costs, source="achieved-rate")

    @classmethod
    def from_opcode_benchmark(cls, benchmark: dict[str, float]) -> "CpuCostModel":
        """Legacy model: per-opcode times from dependent-chain micro-benchmarks."""
        return cls(op_costs={m.upper(): float(t) for m, t in benchmark.items()},
                   source="opcode-benchmark")


@dataclass(frozen=True)
class MpiCostModel:
    """The three fitted A-E parameter sets of the ``mpi`` HMCL section."""

    send: PiecewiseLinearModel
    recv: PiecewiseLinearModel
    pingpong: PiecewiseLinearModel

    def send_cost(self, nbytes: float) -> float:
        """CPU time a blocking send occupies on the sender."""
        return max(0.0, self.send.evaluate(nbytes))

    def recv_cost(self, nbytes: float) -> float:
        """CPU time a receive occupies once its message has arrived."""
        return max(0.0, self.recv.evaluate(nbytes))

    def delivery_cost(self, nbytes: float) -> float:
        """End-to-end one-way delivery time (half the ping-pong time)."""
        return max(0.0, self.pingpong.evaluate(nbytes) / 2.0)

    def collective_cost(self, nranks: int, nbytes: float, phases: int = 2) -> float:
        """Cost of a binomial-tree collective over ``nranks`` ranks.

        ``phases`` is 2 for reduce-then-broadcast style collectives
        (allreduce, the ``globalsum``/``globalmax`` templates) and 1 for a
        one-way broadcast.
        """
        if nranks <= 1:
            return 0.0
        rounds = 0
        remaining = nranks - 1
        while remaining > 0:
            rounds += 1
            remaining //= 2
        return phases * rounds * self.delivery_cost(nbytes)

    def as_dict(self) -> dict[str, dict[str, float]]:
        return {"send": self.send.as_dict(), "recv": self.recv.as_dict(),
                "pingpong": self.pingpong.as_dict()}


@dataclass(frozen=True)
class HardwareModel:
    """A complete HMCL hardware object: cpu + mpi sections plus metadata."""

    name: str
    cpu: CpuCostModel
    mpi: MpiCostModel
    processors_per_node: int = 2
    description: str = ""

    def compute_time(self, clc: ClcVector) -> float:
        """Seconds to execute a clc tally on one processor of this machine."""
        return self.cpu.evaluate(clc)

    def with_cpu(self, cpu: CpuCostModel) -> "HardwareModel":
        """Return a copy with a different cpu section (used by the ablation)."""
        return replace(self, cpu=cpu)

    def with_flop_rate(self, flop_rate: float) -> "HardwareModel":
        """Return a copy whose cpu section uses a fixed achieved rate.

        Used by the speculative study: the paper evaluates the hypothetical
        machine at 340 MFLOPS and again with that rate increased by 25 % and
        50 %.
        """
        return replace(self, cpu=CpuCostModel.from_achieved_rate(flop_rate))

    def scaled_flop_rate(self, factor: float) -> "HardwareModel":
        """Return a copy with the achieved floating point rate scaled by ``factor``."""
        rate = self.cpu.achieved_mflops * units.MFLOPS * factor
        return self.with_flop_rate(rate)

    def describe(self) -> str:
        return (f"{self.name}: {self.cpu.achieved_mflops:.0f} MFLOPS achieved "
                f"({self.cpu.source}); mpi send {self.mpi.send.describe()}")
