"""Parser and serialiser for the textual HMCL hardware description format.

The format mirrors Figure 7 of the paper: a ``hardware`` object with a
``cpu`` section listing clc operation times, an ``mpi`` section with three
A-E parameter groups, and a ``meta`` section.  As in the original HMCL
scripts, cpu times and the mpi ``B``/``D`` intercepts are written in
**microseconds**, the ``C``/``E`` slopes in microseconds per byte and the
break point ``A`` in bytes; the in-memory model uses SI seconds throughout.

Example::

    hardware PentiumIII_Myrinet {
        meta {
            description = "64 x dual Pentium III, Myrinet 2000";
            processors_per_node = 2;
        }
        cpu achieved-rate {
            AFDG = 0.00909;   # usec per floating point operation
            MFDG = 0.00909;
            DFDG = 0.00909;
            IFBR = 0.0;
            LFOR = 0.0;
        }
        mpi {
            send     { A = 16384; B = 2.70; C = 0.00045; D = 18.0; E = 0.0042; }
            recv     { A = 16384; B = 3.10; C = 0.00080; D = 20.0; E = 0.0046; }
            pingpong { A = 16384; B = 21.4; C = 0.00860; D = 56.0; E = 0.0084; }
        }
    }
"""

from __future__ import annotations

import re
from importlib import resources as importlib_resources

from repro import units
from repro.core.clc import ALL_MNEMONICS
from repro.core.hmcl.model import CpuCostModel, HardwareModel, MpiCostModel
from repro.errors import HmclSyntaxError
from repro.profiling.curvefit import PiecewiseLinearModel

_TOKEN_RE = re.compile(r"""
    (?P<ws>\s+)
  | (?P<comment>\#[^\n]*|//[^\n]*)
  | (?P<number>[-+]?(\d+\.\d*|\.\d+|\d+)([eE][-+]?\d+)?)
  | (?P<name>[A-Za-z_][A-Za-z0-9_\-]*)
  | (?P<string>"[^"]*")
  | (?P<punct>[{}=;])
""", re.VERBOSE)


def _tokenise(text: str) -> list[str]:
    tokens: list[str] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise HmclSyntaxError(f"unexpected character {text[pos]!r} at offset {pos}")
        pos = match.end()
        if match.lastgroup in ("ws", "comment"):
            continue
        tokens.append(match.group())
    return tokens


class _TokenStream:
    def __init__(self, tokens: list[str]):
        self.tokens = tokens
        self.index = 0

    def peek(self) -> str | None:
        return self.tokens[self.index] if self.index < len(self.tokens) else None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise HmclSyntaxError("unexpected end of HMCL input")
        self.index += 1
        return token

    def expect(self, expected: str) -> str:
        token = self.next()
        if token != expected:
            raise HmclSyntaxError(f"expected {expected!r}, found {token!r}")
        return token

    def at_end(self) -> bool:
        return self.index >= len(self.tokens)


def _parse_value(token: str) -> float | str:
    if token.startswith('"'):
        return token.strip('"')
    try:
        return float(token)
    except ValueError as exc:
        raise HmclSyntaxError(f"expected a number or string, found {token!r}") from exc


def _parse_assignments(stream: _TokenStream) -> dict[str, float | str]:
    """Parse ``{ key = value; ... }``."""
    stream.expect("{")
    values: dict[str, float | str] = {}
    while stream.peek() != "}":
        key = stream.next()
        stream.expect("=")
        values[key] = _parse_value(stream.next())
        if stream.peek() == ";":
            stream.next()
    stream.expect("}")
    return values


def _parse_mpi_section(stream: _TokenStream) -> MpiCostModel:
    stream.expect("{")
    groups: dict[str, PiecewiseLinearModel] = {}
    while stream.peek() != "}":
        name = stream.next().lower()
        raw = _parse_assignments(stream)
        try:
            groups[name] = PiecewiseLinearModel(
                A=float(raw["A"]),
                B=float(raw["B"]) * units.USEC,
                C=float(raw["C"]) * units.USEC,
                D=float(raw["D"]) * units.USEC,
                E=float(raw["E"]) * units.USEC,
            )
        except KeyError as exc:
            raise HmclSyntaxError(f"mpi group {name!r} missing parameter {exc}") from exc
    stream.expect("}")
    for required in ("send", "recv", "pingpong"):
        if required not in groups:
            raise HmclSyntaxError(f"mpi section missing the {required!r} group")
    return MpiCostModel(send=groups["send"], recv=groups["recv"],
                        pingpong=groups["pingpong"])


def parse_hmcl(text: str) -> HardwareModel:
    """Parse an HMCL hardware object from text."""
    stream = _TokenStream(_tokenise(text))
    stream.expect("hardware")
    name = stream.next()
    stream.expect("{")

    cpu: CpuCostModel | None = None
    mpi: MpiCostModel | None = None
    meta: dict[str, float | str] = {}

    while stream.peek() != "}":
        section = stream.next().lower()
        if section == "meta":
            meta = _parse_assignments(stream)
        elif section == "cpu":
            source = "manual"
            if stream.peek() not in ("{",):
                source = stream.next()
            raw = _parse_assignments(stream)
            costs = {}
            for mnemonic, value in raw.items():
                if mnemonic.upper() not in ALL_MNEMONICS:
                    raise HmclSyntaxError(f"unknown clc mnemonic in cpu section: {mnemonic}")
                costs[mnemonic.upper()] = float(value) * units.USEC
            cpu = CpuCostModel(op_costs=costs, source=source)
        elif section == "mpi":
            mpi = _parse_mpi_section(stream)
        else:
            raise HmclSyntaxError(f"unknown HMCL section {section!r}")
    stream.expect("}")
    if not stream.at_end():
        raise HmclSyntaxError(f"trailing tokens after hardware object: {stream.peek()!r}")

    if cpu is None:
        raise HmclSyntaxError(f"hardware object {name!r} has no cpu section")
    if mpi is None:
        raise HmclSyntaxError(f"hardware object {name!r} has no mpi section")
    return HardwareModel(
        name=name,
        cpu=cpu,
        mpi=mpi,
        processors_per_node=int(meta.get("processors_per_node", 2)),
        description=str(meta.get("description", "")),
    )


def format_hmcl(model: HardwareModel) -> str:
    """Serialise a :class:`HardwareModel` back into HMCL text (round-trips)."""
    lines = [f"hardware {model.name} {{"]
    lines.append("    meta {")
    if model.description:
        lines.append(f'        description = "{model.description}";')
    lines.append(f"        processors_per_node = {model.processors_per_node};")
    lines.append("    }")
    lines.append(f"    cpu {model.cpu.source} {{")
    for mnemonic in ALL_MNEMONICS:
        if mnemonic in model.cpu.op_costs:
            value = model.cpu.op_costs[mnemonic] / units.USEC
            lines.append(f"        {mnemonic} = {value:.6g};")
    lines.append("    }")
    lines.append("    mpi {")
    for group_name in ("send", "recv", "pingpong"):
        params = getattr(model.mpi, group_name)
        lines.append(
            f"        {group_name} {{ A = {params.A:.6g}; "
            f"B = {params.B / units.USEC:.6g}; C = {params.C / units.USEC:.6g}; "
            f"D = {params.D / units.USEC:.6g}; E = {params.E / units.USEC:.6g}; }}")
    lines.append("    }")
    lines.append("}")
    return "\n".join(lines) + "\n"


def load_hmcl_resource(filename: str) -> HardwareModel:
    """Load one of the HMCL hardware objects shipped under ``core/resources/hardware``."""
    package = "repro.core"
    resource = importlib_resources.files(package) / "resources" / "hardware" / filename
    return parse_hmcl(resource.read_text())
