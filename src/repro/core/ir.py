"""Model object intermediate representation.

The PSL parser turns each ``application`` / ``subtask`` / ``partmp`` source
object into a :class:`ModelObject`; a :class:`ModelSet` collects the objects
of one performance model (the object hierarchy of Figure 3) and validates
the references between them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING

from repro.errors import PslNameError

if TYPE_CHECKING:  # imported for type annotations only (avoids a parser<->IR cycle)
    from repro.core.psl import ast


class ObjectKind(str, Enum):
    """The PSL object kinds (the layers of the PACE methodology)."""

    APPLICATION = "application"
    SUBTASK = "subtask"
    PARTMP = "partmp"


@dataclass
class ModelObject:
    """One PSL object: variables, links, options, procedures and cflows."""

    name: str
    kind: ObjectKind
    includes: list[str] = field(default_factory=list)
    #: For subtasks: the parallel template evaluated with this object.
    partmp: str | None = None
    #: Variable defaults (expression ASTs, evaluated when the object is instantiated).
    variables: dict[str, ast.PslNode] = field(default_factory=dict)
    #: ``link <target> { name = expr; ... }`` blocks, keyed by target object.
    links: dict[str, dict[str, ast.PslNode]] = field(default_factory=dict)
    #: ``option { key = value; ... }`` entries (strings or numbers).
    options: dict[str, float | str] = field(default_factory=dict)
    #: Control-flow procedures (``proc``), keyed by name.
    procs: dict[str, ast.ProcDef] = field(default_factory=dict)
    #: Characterised serial flows (``cflow``), keyed by name.
    cflows: dict[str, ast.CflowDef] = field(default_factory=dict)

    def proc(self, name: str) -> ast.ProcDef:
        try:
            return self.procs[name]
        except KeyError:
            raise PslNameError(
                f"object {self.name!r} has no procedure {name!r} "
                f"(has: {sorted(self.procs)})") from None

    def cflow(self, name: str) -> ast.CflowDef:
        try:
            return self.cflows[name]
        except KeyError:
            raise PslNameError(
                f"object {self.name!r} has no cflow {name!r} "
                f"(has: {sorted(self.cflows)})") from None

    def link_for(self, target: str) -> dict[str, ast.PslNode]:
        """The link assignments this object applies to ``target`` (may be empty)."""
        return self.links.get(target, {})

    @property
    def strategy(self) -> str:
        """For parallel templates: the evaluation strategy name (defaults to the object name)."""
        return str(self.options.get("strategy", self.name))


@dataclass
class ModelSet:
    """A complete performance model: one application object plus its children."""

    objects: dict[str, ModelObject] = field(default_factory=dict)

    def add(self, obj: ModelObject) -> None:
        if obj.name in self.objects:
            raise PslNameError(f"duplicate model object name {obj.name!r}")
        self.objects[obj.name] = obj

    def get(self, name: str) -> ModelObject:
        try:
            return self.objects[name]
        except KeyError:
            raise PslNameError(
                f"model object {name!r} not found (have: {sorted(self.objects)})") from None

    def __contains__(self, name: str) -> bool:
        return name in self.objects

    def __len__(self) -> int:
        return len(self.objects)

    @property
    def application(self) -> ModelObject:
        """The single application object of the set."""
        apps = [obj for obj in self.objects.values() if obj.kind is ObjectKind.APPLICATION]
        if not apps:
            raise PslNameError("model set contains no application object")
        if len(apps) > 1:
            raise PslNameError(
                f"model set contains multiple application objects: {[a.name for a in apps]}")
        return apps[0]

    def subtasks(self) -> list[ModelObject]:
        return [obj for obj in self.objects.values() if obj.kind is ObjectKind.SUBTASK]

    def templates(self) -> list[ModelObject]:
        return [obj for obj in self.objects.values() if obj.kind is ObjectKind.PARTMP]

    def merge(self, other: "ModelSet") -> "ModelSet":
        """Combine two sets (e.g. the application scripts plus a template library)."""
        merged = ModelSet(dict(self.objects))
        for obj in other.objects.values():
            merged.add(obj)
        return merged

    def validate(self) -> None:
        """Check that every include/partmp/link reference resolves.

        Raises :class:`~repro.errors.PslNameError` on the first dangling
        reference; called by the evaluation engine before prediction.
        """
        for obj in self.objects.values():
            for included in obj.includes:
                if included not in self.objects:
                    raise PslNameError(
                        f"object {obj.name!r} includes unknown object {included!r}")
            if obj.partmp is not None and obj.partmp not in self.objects:
                raise PslNameError(
                    f"subtask {obj.name!r} references unknown parallel template "
                    f"{obj.partmp!r}")
            for target in obj.links:
                if target not in self.objects:
                    raise PslNameError(
                        f"object {obj.name!r} links to unknown object {target!r}")
        # The application object must exist and be unique.
        _ = self.application

    def hierarchy(self) -> dict[str, list[str]]:
        """The object hierarchy (Figure 3): each object's resolved children."""
        return {obj.name: list(obj.includes) for obj in self.objects.values()}
