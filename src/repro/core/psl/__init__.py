"""The Performance Specification Language (PSL).

A dialect of PACE's CHIP3S language with three object kinds:

``application``
    The entry point of a performance model.  Its ``init`` procedure encodes
    the control flow of the program (Figure 4 of the paper): loops over
    iterations calling subtask objects.

``subtask``
    A serial phase of the application together with the parallel template
    that evaluates it (Figure 5).  Its ``cflow`` procedures characterise the
    serial computation as clc operation tallies (obtained from ``capp`` and
    run-time profiling).

``partmp``
    A parallel template (Figure 6): the computation/communication structure
    used to evaluate a subtask on the processor array.  Its ``stage``
    procedure lists the per-stage steps (receives, compute, sends); the
    named *strategy* (``pipeline``, ``globalsum``, ``globalmax``, ``async``)
    supplies the dependency structure across processors.

The module provides the lexer, parser, AST and expression/flow interpreter;
object-level evaluation lives in :mod:`repro.core.evaluation`.
"""

from repro.core.psl.parser import parse_psl, load_psl_resource
from repro.core.psl import ast

__all__ = ["parse_psl", "load_psl_resource", "ast"]
