"""AST node types of the Performance Specification Language."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


class PslNode:
    """Marker base class for PSL AST nodes."""

    __slots__ = ()


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Num(PslNode):
    value: float


@dataclass
class Str(PslNode):
    value: str


@dataclass
class VarRef(PslNode):
    name: str


@dataclass
class UnaryOp(PslNode):
    op: str
    operand: PslNode


@dataclass
class BinOp(PslNode):
    op: str
    left: PslNode
    right: PslNode


@dataclass
class FuncCall(PslNode):
    """Built-in function call: ``ceil``, ``floor``, ``max``, ``min``, ``log2``,
    or ``flow(<cflow name>)`` which evaluates a cflow procedure of the
    enclosing object on the hardware model and yields seconds."""

    name: str
    args: list[PslNode] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Procedure (exec) statements
# ---------------------------------------------------------------------------


@dataclass
class VarDeclStmt(PslNode):
    """``var name [= expr], ...;`` inside a procedure (local variables)."""

    names: list[tuple[str, Optional[PslNode]]] = field(default_factory=list)


@dataclass
class AssignStmt(PslNode):
    name: str
    value: PslNode


@dataclass
class ForStmt(PslNode):
    """``for var = start to stop [step s] { body }`` (inclusive bounds)."""

    var: str
    start: PslNode
    stop: PslNode
    step: Optional[PslNode]
    body: list[PslNode] = field(default_factory=list)


@dataclass
class IfStmt(PslNode):
    cond: PslNode
    then: list[PslNode] = field(default_factory=list)
    els: list[PslNode] = field(default_factory=list)


@dataclass
class CallStmt(PslNode):
    """``call <object>;`` — evaluate an included object and add its time."""

    target: str


@dataclass
class ComputeStmt(PslNode):
    """``compute <expr>;`` — add ``expr`` seconds of serial time directly."""

    seconds: PslNode


@dataclass
class StepStmt(PslNode):
    """``step <device> { key = expr; ... }`` — one step of a parallel template stage."""

    device: str
    params: dict[str, PslNode] = field(default_factory=dict)


# ---------------------------------------------------------------------------
# Cflow statements
# ---------------------------------------------------------------------------


@dataclass
class ClcStmt(PslNode):
    """``clc { AFDG = expr; MFDG = expr; ... }`` — accumulate operation counts."""

    counts: dict[str, PslNode] = field(default_factory=dict)


@dataclass
class LoopStmt(PslNode):
    """``loop (count) { body }`` — multiply the enclosed counts by ``count``."""

    count: PslNode
    body: list[PslNode] = field(default_factory=list)


@dataclass
class BranchStmt(PslNode):
    """``branch (prob) { body } [else { body }]`` — probability-weighted counts."""

    probability: PslNode
    then: list[PslNode] = field(default_factory=list)
    els: list[PslNode] = field(default_factory=list)


@dataclass
class CflowCallStmt(PslNode):
    """``call <cflow>;`` inside a cflow — inline another cflow of the same object."""

    target: str


# ---------------------------------------------------------------------------
# Definitions
# ---------------------------------------------------------------------------


@dataclass
class ProcDef(PslNode):
    name: str
    body: list[PslNode] = field(default_factory=list)


@dataclass
class CflowDef(PslNode):
    name: str
    body: list[PslNode] = field(default_factory=list)
