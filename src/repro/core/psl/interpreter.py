"""Expression and cflow evaluation for PSL objects.

Object- and procedure-level evaluation (the control flow of the application
object, subtask/template instantiation) lives in
:mod:`repro.core.evaluation.engine`; this module provides the two
lower-level pieces it builds on:

* :func:`evaluate_expression` — arithmetic over an object's variable
  environment, with the built-in functions ``ceil``, ``floor``, ``max``,
  ``min``, ``log2``, ``abs`` and the special form ``flow(<cflow>)`` that
  evaluates a cflow of the current object on the hardware model and yields
  seconds.
* :func:`evaluate_cflow` — turns a ``cflow`` procedure into a
  :class:`~repro.core.clc.ClcVector` by walking its ``clc``/``loop``/
  ``branch`` statements.
"""

from __future__ import annotations

import math
from typing import Callable, Mapping

from repro.core.clc import ClcVector
from repro.core.psl import ast
from repro.errors import PslEvaluationError, PslNameError

#: Signature of the callback used to resolve ``flow(name)`` calls.
FlowEvaluator = Callable[[str], float]


def _as_number(value: object, context: str) -> float:
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, (int, float)):
        return float(value)
    raise PslEvaluationError(f"{context}: expected a number, got {value!r}")


def evaluate_expression(node: ast.PslNode, variables: Mapping[str, float | str],
                        flow_evaluator: FlowEvaluator | None = None) -> float | str:
    """Evaluate a PSL expression AST against a variable environment."""
    if isinstance(node, ast.Num):
        return node.value
    if isinstance(node, ast.Str):
        return node.value
    if isinstance(node, ast.VarRef):
        if node.name not in variables:
            raise PslNameError(f"undefined variable {node.name!r} in expression")
        return variables[node.name]
    if isinstance(node, ast.UnaryOp):
        value = _as_number(
            evaluate_expression(node.operand, variables, flow_evaluator), "unary -")
        return -value if node.op == "-" else value
    if isinstance(node, ast.BinOp):
        left = evaluate_expression(node.left, variables, flow_evaluator)
        right = evaluate_expression(node.right, variables, flow_evaluator)
        return _apply_binop(node.op, left, right)
    if isinstance(node, ast.FuncCall):
        return _apply_function(node, variables, flow_evaluator)
    raise PslEvaluationError(f"cannot evaluate expression node {node!r}")


def _apply_binop(op: str, left: float | str, right: float | str) -> float:
    if op in ("&&", "||"):
        lnum, rnum = _as_number(left, op), _as_number(right, op)
        if op == "&&":
            return 1.0 if (lnum != 0 and rnum != 0) else 0.0
        return 1.0 if (lnum != 0 or rnum != 0) else 0.0
    if op in ("==", "!="):
        equal = left == right
        return 1.0 if (equal if op == "==" else not equal) else 0.0
    lnum, rnum = _as_number(left, op), _as_number(right, op)
    if op == "+":
        return lnum + rnum
    if op == "-":
        return lnum - rnum
    if op == "*":
        return lnum * rnum
    if op == "/":
        if rnum == 0:
            raise PslEvaluationError("division by zero in PSL expression")
        return lnum / rnum
    if op == "%":
        if rnum == 0:
            raise PslEvaluationError("modulo by zero in PSL expression")
        return math.fmod(lnum, rnum)
    if op == "<":
        return 1.0 if lnum < rnum else 0.0
    if op == "<=":
        return 1.0 if lnum <= rnum else 0.0
    if op == ">":
        return 1.0 if lnum > rnum else 0.0
    if op == ">=":
        return 1.0 if lnum >= rnum else 0.0
    raise PslEvaluationError(f"unknown operator {op!r}")


def _apply_function(node: ast.FuncCall, variables: Mapping[str, float | str],
                    flow_evaluator: FlowEvaluator | None) -> float:
    name = node.name.lower()
    if name == "flow":
        if flow_evaluator is None:
            raise PslEvaluationError(
                "flow() can only be used where a hardware model is in scope "
                "(link expressions and procedures of subtask objects)")
        if len(node.args) != 1:
            raise PslEvaluationError("flow() takes exactly one argument")
        arg = node.args[0]
        if isinstance(arg, ast.VarRef):
            target = arg.name
        elif isinstance(arg, ast.Str):
            target = arg.value
        else:
            raise PslEvaluationError("flow() expects a cflow name")
        return flow_evaluator(target)

    args = [
        _as_number(evaluate_expression(arg, variables, flow_evaluator), name)
        for arg in node.args
    ]
    if name == "ceil" and len(args) == 1:
        return float(math.ceil(args[0] - 1e-12))
    if name == "floor" and len(args) == 1:
        return float(math.floor(args[0] + 1e-12))
    if name == "abs" and len(args) == 1:
        return abs(args[0])
    if name == "log2" and len(args) == 1:
        if args[0] <= 0:
            raise PslEvaluationError("log2() of a non-positive value")
        return math.log2(args[0])
    if name == "max" and args:
        return max(args)
    if name == "min" and args:
        return min(args)
    raise PslEvaluationError(f"unknown PSL function {node.name!r} with {len(args)} argument(s)")


def evaluate_cflow(cflow: ast.CflowDef, variables: Mapping[str, float | str],
                   resolve_cflow: Callable[[str], ast.CflowDef] | None = None) -> ClcVector:
    """Evaluate a ``cflow`` definition into a clc operation vector.

    ``resolve_cflow`` resolves ``call <name>;`` statements to other cflow
    definitions of the same object (inlining).
    """
    return _evaluate_cflow_body(cflow.body, variables, resolve_cflow, depth=0)


def _evaluate_cflow_body(body: list[ast.PslNode], variables: Mapping[str, float | str],
                         resolve_cflow: Callable[[str], ast.CflowDef] | None,
                         depth: int) -> ClcVector:
    if depth > 32:
        raise PslEvaluationError("cflow call nesting exceeds 32 levels (cycle?)")
    total = ClcVector()
    for statement in body:
        if isinstance(statement, ast.ClcStmt):
            counts = {}
            for mnemonic, expr in statement.counts.items():
                counts[mnemonic] = _as_number(
                    evaluate_expression(expr, variables), f"clc {mnemonic}")
            total = total + ClcVector(counts)
        elif isinstance(statement, ast.LoopStmt):
            count = _as_number(evaluate_expression(statement.count, variables), "loop count")
            if count < 0:
                raise PslEvaluationError(f"negative loop count {count} in cflow")
            inner = _evaluate_cflow_body(statement.body, variables, resolve_cflow, depth + 1)
            total = total + inner * count
        elif isinstance(statement, ast.BranchStmt):
            probability = _as_number(
                evaluate_expression(statement.probability, variables), "branch probability")
            if not 0.0 <= probability <= 1.0:
                raise PslEvaluationError(
                    f"branch probability {probability} outside [0, 1] in cflow")
            then = _evaluate_cflow_body(statement.then, variables, resolve_cflow, depth + 1)
            total = total + then * probability
            if statement.els:
                els = _evaluate_cflow_body(statement.els, variables, resolve_cflow, depth + 1)
                total = total + els * (1.0 - probability)
        elif isinstance(statement, ast.CflowCallStmt):
            if resolve_cflow is None:
                raise PslEvaluationError(
                    f"cflow call to {statement.target!r} cannot be resolved here")
            nested = resolve_cflow(statement.target)
            total = total + _evaluate_cflow_body(nested.body, variables, resolve_cflow,
                                                 depth + 1)
        else:
            raise PslEvaluationError(f"unsupported cflow statement {statement!r}")
    return total
