"""Tokenizer for the Performance Specification Language."""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import PslSyntaxError

#: Reserved words of the language.
KEYWORDS = {
    "application", "subtask", "partmp", "include", "partmp", "var", "link",
    "option", "proc", "cflow", "for", "to", "step", "if", "else", "call",
    "compute", "clc", "loop", "branch", "step",
}

_TOKEN_RE = re.compile(r"""
    (?P<ws>\s+)
  | (?P<comment>//[^\n]*|/\*.*?\*/|\#[^\n]*)
  | (?P<number>(\d+\.\d*|\.\d+|\d+)([eE][-+]?\d+)?)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<string>"[^"]*")
  | (?P<op><=|>=|==|!=|&&|\|\||[-+*/%<>=])
  | (?P<punct>[(){};,])
""", re.VERBOSE | re.DOTALL)


@dataclass(frozen=True)
class Token:
    kind: str          # "number", "ident", "keyword", "string", "op", "punct"
    text: str
    line: int

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Token({self.kind}, {self.text!r}, line {self.line})"


def tokenize(source: str, filename: str | None = None) -> list[Token]:
    """Tokenise PSL source text.

    Line comments (``//`` and ``#``) and block comments are discarded.
    Unexpected characters raise :class:`~repro.errors.PslSyntaxError` with
    the offending line number.
    """
    tokens: list[Token] = []
    pos = 0
    line = 1
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            raise PslSyntaxError(f"unexpected character {source[pos]!r}",
                                 line=line, filename=filename)
        text = match.group()
        kind = match.lastgroup or ""
        start_line = line
        line += text.count("\n")
        pos = match.end()
        if kind in ("ws", "comment"):
            continue
        if kind == "ident" and text in KEYWORDS:
            kind = "keyword"
        tokens.append(Token(kind=kind, text=text, line=start_line))
    return tokens
