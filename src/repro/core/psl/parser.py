"""Recursive-descent parser for the Performance Specification Language."""

from __future__ import annotations

from importlib import resources as importlib_resources
from typing import Optional

from repro.core.ir import ModelObject, ModelSet, ObjectKind
from repro.core.psl import ast
from repro.core.psl.lexer import Token, tokenize
from repro.errors import PslSyntaxError

_OBJECT_KINDS = {
    "application": ObjectKind.APPLICATION,
    "subtask": ObjectKind.SUBTASK,
    "partmp": ObjectKind.PARTMP,
}


class PslParser:
    """Parses one PSL source file into a :class:`~repro.core.ir.ModelSet`."""

    def __init__(self, source: str, filename: str | None = None):
        self.filename = filename
        self.tokens = tokenize(source, filename)
        self.index = 0

    # -- token helpers -----------------------------------------------------

    def _peek(self, offset: int = 0) -> Optional[Token]:
        index = self.index + offset
        return self.tokens[index] if index < len(self.tokens) else None

    def _next(self) -> Token:
        token = self._peek()
        if token is None:
            raise PslSyntaxError("unexpected end of input", filename=self.filename)
        self.index += 1
        return token

    def _accept(self, text: str) -> bool:
        token = self._peek()
        if token is not None and token.text == text:
            self.index += 1
            return True
        return False

    def _expect(self, text: str) -> Token:
        token = self._next()
        if token.text != text:
            raise PslSyntaxError(f"expected {text!r} but found {token.text!r}",
                                 line=token.line, filename=self.filename)
        return token

    def _identifier(self) -> str:
        token = self._next()
        if token.kind not in ("ident", "keyword"):
            raise PslSyntaxError(f"expected an identifier, found {token.text!r}",
                                 line=token.line, filename=self.filename)
        return token.text

    def _error(self, message: str, token: Token | None = None) -> PslSyntaxError:
        line = token.line if token is not None else None
        return PslSyntaxError(message, line=line, filename=self.filename)

    # -- top level ----------------------------------------------------------

    def parse(self) -> ModelSet:
        model = ModelSet()
        while self._peek() is not None:
            model.add(self._parse_object())
        return model

    def _parse_object(self) -> ModelObject:
        token = self._next()
        kind = _OBJECT_KINDS.get(token.text)
        if kind is None:
            raise self._error(
                f"expected an object kind (application/subtask/partmp), found {token.text!r}",
                token)
        name = self._identifier()
        obj = ModelObject(name=name, kind=kind)
        self._expect("{")
        while not self._accept("}"):
            self._parse_object_item(obj)
        return obj

    def _parse_object_item(self, obj: ModelObject) -> None:
        token = self._peek()
        if token is None:
            raise self._error("unexpected end of input inside an object")
        if token.text == "include":
            self._next()
            while True:
                obj.includes.append(self._identifier())
                if self._accept(";"):
                    break
                self._expect(",")
        elif token.text == "partmp":
            self._next()
            obj.partmp = self._identifier()
            self._expect(";")
            if obj.partmp not in obj.includes:
                obj.includes.append(obj.partmp)
        elif token.text == "var":
            self._next()
            while True:
                name = self._identifier()
                default: ast.PslNode = ast.Num(0.0)
                if self._accept("="):
                    default = self._parse_expression()
                obj.variables[name] = default
                if self._accept(";"):
                    break
                self._expect(",")
        elif token.text == "link":
            self._next()
            target = self._identifier()
            assignments: dict[str, ast.PslNode] = {}
            self._expect("{")
            while not self._accept("}"):
                name = self._identifier()
                self._expect("=")
                assignments[name] = self._parse_expression()
                self._expect(";")
            existing = obj.links.setdefault(target, {})
            existing.update(assignments)
        elif token.text == "option":
            self._next()
            self._expect("{")
            while not self._accept("}"):
                name = self._identifier()
                self._expect("=")
                value_token = self._next()
                if value_token.kind == "string":
                    obj.options[name] = value_token.text.strip('"')
                elif value_token.kind == "number":
                    obj.options[name] = float(value_token.text)
                else:
                    obj.options[name] = value_token.text
                self._expect(";")
        elif token.text == "proc":
            self._next()
            name = self._identifier()
            body = self._parse_proc_body()
            obj.procs[name] = ast.ProcDef(name=name, body=body)
        elif token.text == "cflow":
            self._next()
            name = self._identifier()
            body = self._parse_cflow_body()
            obj.cflows[name] = ast.CflowDef(name=name, body=body)
        else:
            raise self._error(f"unexpected token {token.text!r} inside object", token)

    # -- procedures -----------------------------------------------------------

    def _parse_proc_body(self) -> list[ast.PslNode]:
        self._expect("{")
        statements: list[ast.PslNode] = []
        while not self._accept("}"):
            statements.append(self._parse_statement())
        return statements

    def _parse_statement(self) -> ast.PslNode:
        token = self._peek()
        if token is None:
            raise self._error("unexpected end of input inside a procedure")
        if token.text == "var":
            self._next()
            names: list[tuple[str, Optional[ast.PslNode]]] = []
            while True:
                name = self._identifier()
                init: Optional[ast.PslNode] = None
                if self._accept("="):
                    init = self._parse_expression()
                names.append((name, init))
                if self._accept(";"):
                    break
                self._expect(",")
            return ast.VarDeclStmt(names=names)
        if token.text == "for":
            self._next()
            var = self._identifier()
            self._expect("=")
            start = self._parse_expression()
            self._expect("to")
            stop = self._parse_expression()
            step = None
            if self._accept("step"):
                step = self._parse_expression()
            body = self._parse_proc_body()
            return ast.ForStmt(var=var, start=start, stop=stop, step=step, body=body)
        if token.text == "if":
            self._next()
            self._expect("(")
            cond = self._parse_expression()
            self._expect(")")
            then = self._parse_proc_body()
            els: list[ast.PslNode] = []
            if self._accept("else"):
                els = self._parse_proc_body()
            return ast.IfStmt(cond=cond, then=then, els=els)
        if token.text == "call":
            self._next()
            target = self._identifier()
            self._expect(";")
            return ast.CallStmt(target=target)
        if token.text == "compute":
            self._next()
            seconds = self._parse_expression()
            self._expect(";")
            return ast.ComputeStmt(seconds=seconds)
        if token.text == "step":
            self._next()
            device = self._identifier()
            params: dict[str, ast.PslNode] = {}
            self._expect("{")
            while not self._accept("}"):
                name = self._identifier()
                self._expect("=")
                params[name] = self._parse_expression()
                self._expect(";")
            return ast.StepStmt(device=device, params=params)
        # Fallback: an assignment statement.
        name = self._identifier()
        self._expect("=")
        value = self._parse_expression()
        self._expect(";")
        return ast.AssignStmt(name=name, value=value)

    # -- cflow ------------------------------------------------------------------

    def _parse_cflow_body(self) -> list[ast.PslNode]:
        self._expect("{")
        statements: list[ast.PslNode] = []
        while not self._accept("}"):
            statements.append(self._parse_cflow_statement())
        return statements

    def _parse_cflow_statement(self) -> ast.PslNode:
        token = self._peek()
        if token is None:
            raise self._error("unexpected end of input inside a cflow")
        if token.text == "clc":
            self._next()
            counts: dict[str, ast.PslNode] = {}
            self._expect("{")
            while not self._accept("}"):
                mnemonic = self._identifier()
                self._expect("=")
                counts[mnemonic.upper()] = self._parse_expression()
                self._expect(";")
            return ast.ClcStmt(counts=counts)
        if token.text == "loop":
            self._next()
            self._expect("(")
            count = self._parse_expression()
            self._expect(")")
            body = self._parse_cflow_body()
            return ast.LoopStmt(count=count, body=body)
        if token.text == "branch":
            self._next()
            self._expect("(")
            probability = self._parse_expression()
            self._expect(")")
            then = self._parse_cflow_body()
            els: list[ast.PslNode] = []
            if self._accept("else"):
                els = self._parse_cflow_body()
            return ast.BranchStmt(probability=probability, then=then, els=els)
        if token.text == "call":
            self._next()
            target = self._identifier()
            self._expect(";")
            return ast.CflowCallStmt(target=target)
        raise self._error(f"unexpected token {token.text!r} inside a cflow", token)

    # -- expressions (precedence climbing) ----------------------------------------

    def _parse_expression(self) -> ast.PslNode:
        return self._parse_or()

    def _parse_or(self) -> ast.PslNode:
        left = self._parse_and()
        while True:
            token = self._peek()
            if token is not None and token.text == "||":
                self._next()
                left = ast.BinOp("||", left, self._parse_and())
            else:
                return left

    def _parse_and(self) -> ast.PslNode:
        left = self._parse_comparison()
        while True:
            token = self._peek()
            if token is not None and token.text == "&&":
                self._next()
                left = ast.BinOp("&&", left, self._parse_comparison())
            else:
                return left

    def _parse_comparison(self) -> ast.PslNode:
        left = self._parse_additive()
        token = self._peek()
        if token is not None and token.text in ("<", "<=", ">", ">=", "==", "!="):
            op = self._next().text
            return ast.BinOp(op, left, self._parse_additive())
        return left

    def _parse_additive(self) -> ast.PslNode:
        left = self._parse_multiplicative()
        while True:
            token = self._peek()
            if token is not None and token.text in ("+", "-"):
                op = self._next().text
                left = ast.BinOp(op, left, self._parse_multiplicative())
            else:
                return left

    def _parse_multiplicative(self) -> ast.PslNode:
        left = self._parse_unary()
        while True:
            token = self._peek()
            if token is not None and token.text in ("*", "/", "%"):
                op = self._next().text
                left = ast.BinOp(op, left, self._parse_unary())
            else:
                return left

    def _parse_unary(self) -> ast.PslNode:
        token = self._peek()
        if token is not None and token.text == "-":
            self._next()
            return ast.UnaryOp("-", self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> ast.PslNode:
        token = self._next()
        if token.kind == "number":
            return ast.Num(float(token.text))
        if token.kind == "string":
            return ast.Str(token.text.strip('"'))
        if token.text == "(":
            expr = self._parse_expression()
            self._expect(")")
            return expr
        if token.kind in ("ident", "keyword"):
            if self._peek() is not None and self._peek().text == "(":
                self._next()
                args: list[ast.PslNode] = []
                if not self._accept(")"):
                    while True:
                        args.append(self._parse_expression())
                        if self._accept(")"):
                            break
                        self._expect(",")
                return ast.FuncCall(name=token.text, args=args)
            return ast.VarRef(token.text)
        raise self._error(f"unexpected token {token.text!r} in expression", token)


def parse_psl(source: str, filename: str | None = None) -> ModelSet:
    """Parse PSL source text into a :class:`~repro.core.ir.ModelSet`."""
    return PslParser(source, filename).parse()


def load_psl_resource(filename: str) -> ModelSet:
    """Load one of the PSL scripts shipped under ``repro/core/resources``."""
    resource = importlib_resources.files("repro.core") / "resources" / filename
    return parse_psl(resource.read_text(), filename=filename)
