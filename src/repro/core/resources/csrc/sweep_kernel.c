/*
 * SWEEP3D inner kernels, in the C subset analysed by capp.
 *
 * The three functions correspond to the three characterised serial flows of
 * the performance model:
 *
 *   sweep_block   - one (k-block, angle-block) diamond-difference sweep of
 *                   an nx x ny i-j sub-domain: the cflow `work_block` of the
 *                   `sweep` subtask object.  Includes the P1 flux-moment
 *                   accumulation and the DSA face currents of the production
 *                   LANL code, which is why its static counts exceed what
 *                   the simplified numeric Python kernel executes.
 *   source_update - the per-iteration scattering-source update over the
 *                   local cells (the `source` subtask object).
 *   flux_error    - the per-iteration pointwise convergence test (the
 *                   `flux_err` subtask object).
 *
 * Loop bounds are left symbolic (nx, ny, mk, mmi, ncells) and bound when
 * the flow description is evaluated; branch probabilities for the
 * negative-flux fixup come from `capp:` pragmas, as the paper does for
 * data-dependent control flow.
 *
 * Static per-cell-angle counts of sweep_block: 16 AFDG, 19 MFDG, 1 DFDG
 * (36 flops), matching repro.sweep3d.kernel.CELL_ANGLE_OPERATIONS.
 */

void sweep_block(int nx, int ny, int mk, int mmi,
                 double sigt,
                 double *hi, double *hj, double *hk, double *w,
                 double *wmu, double *weta, double *wxi,
                 double *q,
                 double *psi_i, double *psi_j, double *psi_k,
                 double *phi, double *phi_x, double *phi_y, double *phi_z,
                 double *cur_i, double *cur_j, double *cur_k)
{
    int i, j, k, m, c;
    double ei, ej, ek, wgt, den, numer, psi, out_i, out_j, out_k;

    for (i = 0; i < nx; i++) {
        for (j = 0; j < ny; j++) {
            for (k = 0; k < mk; k++) {
                c = (i * ny + j) * mk + k;
                for (m = 0; m < mmi; m++) {
                    ei = hi[m];
                    ej = hj[m];
                    ek = hk[m];
                    wgt = w[m];

                    /* Diamond-difference balance relation. */
                    den = sigt + ei + ej + ek;
                    numer = q[c] + ei * psi_i[m] + ej * psi_j[m] + ek * psi_k[m];
                    psi = numer / den;

                    /* Auxiliary (outgoing face) relations. */
                    out_i = 2.0 * psi - psi_i[m];
                    out_j = 2.0 * psi - psi_j[m];
                    out_k = 2.0 * psi - psi_k[m];

                    /* Negative-flux fixups (profiled probabilities). */
                    /* capp: prob=0.05 */
                    if (out_i < 0.0) {
                        out_i = 0.0;
                    }
                    /* capp: prob=0.05 */
                    if (out_j < 0.0) {
                        out_j = 0.0;
                    }
                    /* capp: prob=0.05 */
                    if (out_k < 0.0) {
                        out_k = 0.0;
                    }

                    /* Scalar flux and P1 moment accumulation. */
                    phi[c] = phi[c] + wgt * psi;
                    phi_x[c] = phi_x[c] + wgt * wmu[m] * psi;
                    phi_y[c] = phi_y[c] + wgt * weta[m] * psi;
                    phi_z[c] = phi_z[c] + wgt * wxi[m] * psi;

                    /* DSA face currents. */
                    cur_i[c] = cur_i[c] + wgt * wmu[m] * out_i;
                    cur_j[c] = cur_j[c] + wgt * weta[m] * out_j;
                    cur_k[c] = cur_k[c] + wgt * wxi[m] * out_k;

                    /* Carry the k face to the next plane of the block. */
                    psi_i[m] = out_i;
                    psi_j[m] = out_j;
                    psi_k[m] = out_k;
                }
            }
        }
    }
}

void source_update(int ncells, double c0, double *phi, double *qext, double *src)
{
    int i;

    for (i = 0; i < ncells; i++) {
        src[i] = qext[i] + c0 * phi[i];
        /* capp: prob=0.01 */
        if (src[i] < 0.0) {
            src[i] = 0.0;
        }
    }
}

double flux_error(int ncells, double *phi, double *phi_old)
{
    int i;
    double df, err;

    err = 0.0;
    for (i = 0; i < ncells; i++) {
        df = phi[i] - phi_old[i];
        df = fabs(df);
        df = df / phi[i];
        err = fmax(err, df);
    }
    return err;
}
