"""Parallel template strategies.

A *parallel template* describes how a subtask's serial work is spread over
the processor array and what communication glues it together.  The PSL
``partmp`` object carries the per-stage structure (its ``stage`` procedure)
and the parameters; the *strategy* registered under the template's name
supplies the cross-processor dependency mathematics:

* ``pipeline`` — the 2-D pipelined wavefront of the sweep (Figure 6),
* ``globalsum`` / ``globalmax`` — reduction collectives,
* ``async`` — purely local computation, no communication.

New strategies can be registered with :func:`register_strategy`, which is
how the framework is extended to applications with other communication
patterns (the "future work" of Section 7).
"""

from repro.core.templates.base import StageSpec, StageStep, TemplateResult, TemplateStrategy
from repro.core.templates.pipeline import PipelineStrategy
from repro.core.templates.collectives import GlobalMaxStrategy, GlobalSumStrategy
from repro.core.templates.async_ import AsyncStrategy

_REGISTRY: dict[str, TemplateStrategy] = {}


def register_strategy(strategy: TemplateStrategy) -> None:
    """Register a template strategy under its ``name``."""
    _REGISTRY[strategy.name] = strategy


def get_strategy(name: str) -> TemplateStrategy:
    """Look up a registered strategy by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"no parallel template strategy named {name!r}; "
            f"registered: {sorted(_REGISTRY)}") from None


def available_strategies() -> list[str]:
    """Names of all registered strategies."""
    return sorted(_REGISTRY)


# Register the built-in strategies.
for _strategy in (PipelineStrategy(), GlobalSumStrategy(), GlobalMaxStrategy(), AsyncStrategy()):
    register_strategy(_strategy)

__all__ = [
    "StageSpec",
    "StageStep",
    "TemplateResult",
    "TemplateStrategy",
    "PipelineStrategy",
    "GlobalSumStrategy",
    "GlobalMaxStrategy",
    "AsyncStrategy",
    "register_strategy",
    "get_strategy",
    "available_strategies",
]
