"""The ``async`` parallel template: purely local computation.

Subtasks evaluated with this template perform no communication — each
processor executes the characterised serial work independently, so the
subtask's elapsed time equals the serial time of one processor (the slowest
processor under an uneven decomposition, which the weak-scaled SWEEP3D
configurations never produce).
"""

from __future__ import annotations

from typing import Mapping

from repro.core.hmcl.model import HardwareModel
from repro.core.templates.base import StageSpec, TemplateResult, require_float


class AsyncStrategy:
    """Sequential (no-communication) template strategy."""

    name = "async"

    def evaluate(self, variables: Mapping[str, float | str], stage: StageSpec,
                 hardware: HardwareModel) -> TemplateResult:
        work = stage.cpu_seconds
        if work == 0.0:
            work = require_float(variables, "work", default=0.0, minimum=0.0)
        return TemplateResult(time=work, compute_time=work, communication_time=0.0)
