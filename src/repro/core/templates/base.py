"""Shared data structures and protocol for parallel template strategies."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Protocol, runtime_checkable

from repro.core.hmcl.model import HardwareModel
from repro.errors import EvaluationError


@dataclass(frozen=True)
class StageStep:
    """One evaluated step of a template stage.

    ``device`` is the step kind from the PSL ``step`` statement
    (``mpirecv``, ``mpisend``, ``cpu``, ``collective``); ``params`` are the
    step's evaluated parameters (numbers or strings).
    """

    device: str
    params: dict[str, float | str] = field(default_factory=dict)

    def number(self, key: str, default: float | None = None) -> float:
        value = self.params.get(key, default)
        if value is None:
            raise EvaluationError(f"step {self.device!r} is missing parameter {key!r}")
        if isinstance(value, str):
            raise EvaluationError(
                f"step {self.device!r} parameter {key!r} must be numeric, got {value!r}")
        return float(value)

    def text(self, key: str, default: str = "") -> str:
        value = self.params.get(key, default)
        return str(value)


@dataclass
class StageSpec:
    """The evaluated per-stage structure of a parallel template."""

    steps: list[StageStep] = field(default_factory=list)

    def by_device(self, device: str) -> list[StageStep]:
        return [step for step in self.steps if step.device == device]

    @property
    def cpu_seconds(self) -> float:
        """Total per-stage serial compute time."""
        return sum(step.number("time", 0.0) for step in self.by_device("cpu"))

    def recv_steps(self) -> list[StageStep]:
        return self.by_device("mpirecv")

    def send_steps(self) -> list[StageStep]:
        return self.by_device("mpisend")

    def collective_steps(self) -> list[StageStep]:
        return self.by_device("collective")


@dataclass
class TemplateResult:
    """Outcome of evaluating a parallel template."""

    #: Predicted elapsed time of the subtask across the processor array.
    time: float
    #: Time a single processor spends computing (no communication).
    compute_time: float = 0.0
    #: Predicted communication + pipeline-wait time.
    communication_time: float = 0.0
    #: Free-form diagnostic details (per-strategy).
    details: dict[str, float] = field(default_factory=dict)


@runtime_checkable
class TemplateStrategy(Protocol):
    """Protocol implemented by every parallel template strategy."""

    #: Registry name, matched against the ``strategy`` option of ``partmp`` objects.
    name: str

    def evaluate(self, variables: Mapping[str, float | str], stage: StageSpec,
                 hardware: HardwareModel) -> TemplateResult:
        """Predict the elapsed time of one subtask evaluation."""
        ...


def require_int(variables: Mapping[str, float | str], name: str,
                default: float | None = None, minimum: int = 0) -> int:
    """Fetch an integer template variable with validation."""
    value = variables.get(name, default)
    if value is None:
        raise EvaluationError(f"parallel template variable {name!r} is required")
    if isinstance(value, str):
        raise EvaluationError(f"parallel template variable {name!r} must be numeric")
    integer = int(round(float(value)))
    if integer < minimum:
        raise EvaluationError(
            f"parallel template variable {name!r} must be >= {minimum} (got {value})")
    return integer


def require_float(variables: Mapping[str, float | str], name: str,
                  default: float | None = None, minimum: float | None = None) -> float:
    """Fetch a floating point template variable with validation."""
    value = variables.get(name, default)
    if value is None:
        raise EvaluationError(f"parallel template variable {name!r} is required")
    if isinstance(value, str):
        raise EvaluationError(f"parallel template variable {name!r} must be numeric")
    number = float(value)
    if minimum is not None and number < minimum:
        raise EvaluationError(
            f"parallel template variable {name!r} must be >= {minimum} (got {number})")
    return number
