"""Reduction parallel templates: ``globalsum`` and ``globalmax``.

SWEEP3D performs two small collectives per source iteration: the global
maximum of the local flux-change error (convergence test) and a global sum
used for the particle-balance edit.  Their templates evaluate as the local
serial work plus a binomial-tree reduction whose per-hop cost comes from the
fitted ping-pong model.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.hmcl.model import HardwareModel
from repro.core.templates.base import StageSpec, TemplateResult, require_float, require_int


class _ReductionStrategy:
    """Shared implementation of the reduction templates."""

    name = "reduction"
    #: Number of tree traversals: reduce + broadcast.
    phases = 2

    def evaluate(self, variables: Mapping[str, float | str], stage: StageSpec,
                 hardware: HardwareModel) -> TemplateResult:
        npe = require_int(variables, "npe", default=1, minimum=1)
        work = stage.cpu_seconds
        if work == 0.0:
            work = require_float(variables, "work", default=0.0, minimum=0.0)
        nbytes = require_float(variables, "bytes", default=8.0, minimum=0.0)
        for step in stage.collective_steps():
            nbytes = step.number("bytes", nbytes)
        comm = hardware.mpi.collective_cost(npe, nbytes, phases=self.phases)
        return TemplateResult(
            time=work + comm,
            compute_time=work,
            communication_time=comm,
            details={"npe": float(npe), "bytes": nbytes},
        )


class GlobalSumStrategy(_ReductionStrategy):
    """Global sum reduction (the model's ``globalsum`` parallel template)."""

    name = "globalsum"


class GlobalMaxStrategy(_ReductionStrategy):
    """Global maximum reduction (the model's ``globalmax`` parallel template)."""

    name = "globalmax"
