"""The ``pipeline`` parallel template strategy — the 2-D pipelined wavefront.

This is the heart of the SWEEP3D model (the paper's ``pipeline`` parallel
template object, Figure 6).  Work is organised as blocks — one per
(octant, angle-block, k-block) — flowing through the ``Px x Py`` processor
array from the octant's origin corner.  For every block a processor

1. waits for (and receives) the incoming east-west and north-south face
   messages from its upstream neighbours,
2. computes the block's serial work, and
3. sends its outgoing faces to its downstream neighbours,

exactly the structure expressed by the template's ``stage`` procedure.

The strategy evaluates the resulting dependency DAG *exactly*: per-rank
finish times obey the recurrence

    start(r, b)  = max(finish(r, b-1), arrival_ew(r, b), arrival_ns(r, b))
    finish(r, b) = start(r, b) + recv costs + work + send costs

where ``arrival`` times are the upstream neighbours' post times plus the
one-way delivery cost fitted from the ping-pong benchmark.  The recurrence
is evaluated with numpy over anti-diagonals of the processor array, so the
8000-processor speculative study of Section 6 evaluates in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.core.hmcl.model import HardwareModel
from repro.core.templates.base import (
    StageSpec,
    TemplateResult,
    require_float,
    require_int,
)
from repro.errors import EvaluationError
from repro.sweep3d.geometry import octant_order


@dataclass(frozen=True)
class _StageCosts:
    """Per-stage cost constants derived from the stage spec and hardware model."""

    work: float
    recv_ew: float
    recv_ns: float
    send_ew: float
    send_ns: float
    delivery_ew: float
    delivery_ns: float


class PipelineStrategy:
    """Exact DAG evaluation of the pipelined synchronous wavefront."""

    name = "pipeline"

    # ------------------------------------------------------------------

    def evaluate(self, variables: Mapping[str, float | str], stage: StageSpec,
                 hardware: HardwareModel) -> TemplateResult:
        npe_i = require_int(variables, "npe_i", minimum=1)
        npe_j = require_int(variables, "npe_j", minimum=1)
        n_k_blocks = require_int(variables, "n_k_blocks", minimum=1)
        n_angle_blocks = require_int(variables, "n_angle_blocks", minimum=1)

        costs = self._stage_costs(variables, stage, hardware)
        blocks_per_octant = n_k_blocks * n_angle_blocks
        octants = octant_order()

        finish = np.zeros((npe_i, npe_j))
        for octant in octants:
            si = 1 if octant.idir > 0 else -1
            sj = 1 if octant.jdir > 0 else -1
            # Views in "sweep space": index [0, 0] is the octant's origin corner.
            finish_view = finish[::si, ::sj]
            for _ in range(blocks_per_octant):
                self._advance_block(finish_view, costs, npe_i, npe_j)

        total = float(finish.max())
        return self._result(total, costs, npe_i, npe_j, 8 * blocks_per_octant)

    #: Below this rank count the scalar recurrence beats the vectorised one
    #: (numpy's per-operation overhead dominates on short anti-diagonals).
    SCALAR_RANK_LIMIT = 4096

    def evaluate_fast(self, variables: Mapping[str, float | str], stage: StageSpec,
                      hardware: HardwareModel) -> TemplateResult:
        """Scalar evaluation of the wavefront (the compiled pipeline's path).

        Performs **exactly** the same floating point operations as
        :meth:`evaluate`, in the same order, so the result is bit-identical —
        but the anti-diagonal recurrence runs as straight-line Python over
        the small per-rank state instead of numpy calls over tiny arrays,
        which is ~10x faster below a few thousand ranks.  Above
        :data:`SCALAR_RANK_LIMIT` the vectorised evaluation wins and is used
        unchanged.
        """
        npe_i = require_int(variables, "npe_i", minimum=1)
        npe_j = require_int(variables, "npe_j", minimum=1)
        if npe_i * npe_j > self.SCALAR_RANK_LIMIT:
            return self.evaluate(variables, stage, hardware)
        n_k_blocks = require_int(variables, "n_k_blocks", minimum=1)
        n_angle_blocks = require_int(variables, "n_angle_blocks", minimum=1)

        costs = self._stage_costs(variables, stage, hardware)
        blocks_per_octant = n_k_blocks * n_angle_blocks

        finish = [[0.0] * npe_j for _ in range(npe_i)]
        for octant in octant_order():
            for _ in range(blocks_per_octant):
                self._advance_block_scalar(finish, costs, npe_i, npe_j,
                                           octant.idir, octant.jdir)

        total = max(max(row) for row in finish)
        return self._result(total, costs, npe_i, npe_j, 8 * blocks_per_octant)

    @staticmethod
    def _advance_block_scalar(finish: list, costs: _StageCosts,
                              npe_i: int, npe_j: int,
                              idir: int, jdir: int) -> None:
        """Scalar twin of :meth:`_advance_block` (same ops, same order).

        ``finish`` is a list of per-rank rows in machine orientation; the
        octant direction is applied through index mapping instead of a
        flipped view.
        """
        work = costs.work
        recv_ew, recv_ns = costs.recv_ew, costs.recv_ns
        send_ew, send_ns = costs.send_ew, costs.send_ns
        delivery_ew, delivery_ns = costs.delivery_ew, costs.delivery_ns
        last_a, last_b = npe_i - 1, npe_j - 1

        arrival_ew = [[0.0] * npe_j for _ in range(npe_i)]
        arrival_ns = [[0.0] * npe_j for _ in range(npe_i)]

        for diag in range(npe_i + npe_j - 1):
            a_lo = diag - last_b if diag > last_b else 0
            a_hi = last_a if last_a < diag else diag
            for a in range(a_lo, a_hi + 1):
                b = diag - a
                i = a if idir > 0 else last_a - a
                j = b if jdir > 0 else last_b - b
                row = finish[i]
                t = row[j]
                if a > 0:
                    arrival = arrival_ew[a][b]
                    t = (t if t > arrival else arrival) + recv_ew
                if b > 0:
                    arrival = arrival_ns[a][b]
                    t = (t if t > arrival else arrival) + recv_ns
                t = t + work
                if a < last_a:
                    arrival_ew[a + 1][b] = t + delivery_ew
                    t = t + send_ew
                if b < last_b:
                    arrival_ns[a][b + 1] = t + delivery_ns
                    t = t + send_ns
                row[j] = t

    def _result(self, total: float, costs: _StageCosts,
                npe_i: int, npe_j: int, total_blocks: int) -> TemplateResult:
        compute = costs.work * total_blocks
        per_rank_comm = self._interior_stage_overhead(costs, npe_i, npe_j) * total_blocks
        return TemplateResult(
            time=total,
            compute_time=compute,
            communication_time=max(0.0, total - compute),
            details={
                "blocks_per_iteration": float(total_blocks),
                "work_per_block": costs.work,
                "stage_overhead": per_rank_comm,
                "pipeline_fill": max(0.0, total - total_blocks
                                     * (costs.work + self._interior_stage_overhead(
                                         costs, npe_i, npe_j))),
                "npe_i": float(npe_i),
                "npe_j": float(npe_j),
            },
        )

    # ------------------------------------------------------------------

    def _stage_costs(self, variables: Mapping[str, float | str], stage: StageSpec,
                     hardware: HardwareModel) -> _StageCosts:
        work = stage.cpu_seconds
        if work == 0.0:
            work = require_float(variables, "work", default=0.0, minimum=0.0)

        recv_ew = recv_ns = send_ew = send_ns = 0.0
        delivery_ew = delivery_ns = 0.0
        ew_bytes = require_float(variables, "ew_bytes", default=0.0, minimum=0.0)
        ns_bytes = require_float(variables, "ns_bytes", default=0.0, minimum=0.0)

        recv_steps = stage.recv_steps()
        send_steps = stage.send_steps()
        if not recv_steps and not send_steps:
            raise EvaluationError(
                "pipeline template stage defines no mpirecv/mpisend steps; "
                "the wavefront needs its east-west and north-south messages")

        for step in recv_steps:
            direction = step.text("direction", "ew")
            nbytes = step.number("bytes", ew_bytes if direction == "ew" else ns_bytes)
            cost = hardware.mpi.recv_cost(nbytes)
            if direction == "ew":
                recv_ew += cost
                delivery_ew = hardware.mpi.delivery_cost(nbytes)
            else:
                recv_ns += cost
                delivery_ns = hardware.mpi.delivery_cost(nbytes)
        for step in send_steps:
            direction = step.text("direction", "ew")
            nbytes = step.number("bytes", ew_bytes if direction == "ew" else ns_bytes)
            cost = hardware.mpi.send_cost(nbytes)
            if direction == "ew":
                send_ew += cost
                if delivery_ew == 0.0:
                    delivery_ew = hardware.mpi.delivery_cost(nbytes)
            else:
                send_ns += cost
                if delivery_ns == 0.0:
                    delivery_ns = hardware.mpi.delivery_cost(nbytes)

        return _StageCosts(work=work, recv_ew=recv_ew, recv_ns=recv_ns,
                           send_ew=send_ew, send_ns=send_ns,
                           delivery_ew=delivery_ew, delivery_ns=delivery_ns)

    @staticmethod
    def _interior_stage_overhead(costs: _StageCosts, npe_i: int, npe_j: int) -> float:
        """Communication overhead an interior rank pays per block."""
        overhead = 0.0
        if npe_i > 1:
            overhead += costs.recv_ew + costs.send_ew
        if npe_j > 1:
            overhead += costs.recv_ns + costs.send_ns
        return overhead

    # ------------------------------------------------------------------

    @staticmethod
    def _advance_block(finish_view: np.ndarray, costs: _StageCosts,
                       npe_i: int, npe_j: int) -> None:
        """Advance every rank's finish time by one block of this octant.

        ``finish_view`` is oriented so index ``[0, 0]`` is the sweep origin;
        it is updated in place.  Arrival arrays hold the virtual time at
        which the upstream neighbour's message for *this* block reaches each
        rank.
        """
        arrival_ew = np.zeros((npe_i, npe_j))
        arrival_ns = np.zeros((npe_i, npe_j))

        for diag in range(npe_i + npe_j - 1):
            a_lo = max(0, diag - (npe_j - 1))
            a_hi = min(npe_i - 1, diag)
            a_idx = np.arange(a_lo, a_hi + 1)
            b_idx = diag - a_idx

            t = finish_view[a_idx, b_idx]
            has_up_ew = a_idx > 0
            has_up_ns = b_idx > 0
            if has_up_ew.any():
                t = np.where(has_up_ew,
                             np.maximum(t, arrival_ew[a_idx, b_idx]) + costs.recv_ew, t)
            if has_up_ns.any():
                t = np.where(has_up_ns,
                             np.maximum(t, arrival_ns[a_idx, b_idx]) + costs.recv_ns, t)
            t = t + costs.work

            has_dn_ew = a_idx < npe_i - 1
            if has_dn_ew.any():
                arrival_ew[a_idx[has_dn_ew] + 1, b_idx[has_dn_ew]] = (
                    t[has_dn_ew] + costs.delivery_ew)
                t = np.where(has_dn_ew, t + costs.send_ew, t)
            has_dn_ns = b_idx < npe_j - 1
            if has_dn_ns.any():
                arrival_ns[a_idx[has_dn_ns], b_idx[has_dn_ns] + 1] = (
                    t[has_dn_ns] + costs.delivery_ns)
                t = np.where(has_dn_ns, t + costs.send_ns, t)

            finish_view[a_idx, b_idx] = t

    # ------------------------------------------------------------------

    def reference_evaluate(self, variables: Mapping[str, float | str], stage: StageSpec,
                           hardware: HardwareModel) -> TemplateResult:
        """Straightforward (slow) per-rank evaluation used to cross-check the
        vectorised recurrence in the test suite."""
        npe_i = require_int(variables, "npe_i", minimum=1)
        npe_j = require_int(variables, "npe_j", minimum=1)
        n_k_blocks = require_int(variables, "n_k_blocks", minimum=1)
        n_angle_blocks = require_int(variables, "n_angle_blocks", minimum=1)
        costs = self._stage_costs(variables, stage, hardware)

        finish = {(i, j): 0.0 for i in range(npe_i) for j in range(npe_j)}
        for octant in octant_order():
            for _ in range(n_k_blocks * n_angle_blocks):
                arrival_ew: dict[tuple[int, int], float] = {}
                arrival_ns: dict[tuple[int, int], float] = {}
                order = sorted(
                    finish,
                    key=lambda rc: ((rc[0] if octant.idir > 0 else npe_i - 1 - rc[0])
                                    + (rc[1] if octant.jdir > 0 else npe_j - 1 - rc[1])))
                for (i, j) in order:
                    t = finish[(i, j)]
                    up_i = (i - octant.idir, j)
                    up_j = (i, j - octant.jdir)
                    if 0 <= up_i[0] < npe_i:
                        t = max(t, arrival_ew[(i, j)]) + costs.recv_ew
                    if 0 <= up_j[1] < npe_j:
                        t = max(t, arrival_ns[(i, j)]) + costs.recv_ns
                    t += costs.work
                    dn_i = (i + octant.idir, j)
                    dn_j = (i, j + octant.jdir)
                    if 0 <= dn_i[0] < npe_i:
                        arrival_ew[dn_i] = t + costs.delivery_ew
                        t += costs.send_ew
                    if 0 <= dn_j[1] < npe_j:
                        arrival_ns[dn_j] = t + costs.delivery_ns
                        t += costs.send_ns
                    finish[(i, j)] = t
        total = max(finish.values())
        total_blocks = 8 * n_k_blocks * n_angle_blocks
        compute = costs.work * total_blocks
        return TemplateResult(time=total, compute_time=compute,
                              communication_time=max(0.0, total - compute))
