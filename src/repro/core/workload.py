"""Binding of SWEEP3D problem definitions to the shipped PACE model.

The PSL application object exposes externally modifiable variables (problem
size, blocking factors, processor array shape).  :class:`SweepWorkload`
derives those variables from a :class:`~repro.sweep3d.input.Sweep3DInput`
deck plus a processor array, so that the experiment harness, the examples
and the tests all bind the model in exactly one way.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.ir import ModelSet
from repro.core.psl.parser import load_psl_resource
from repro.errors import ExperimentError
from repro.sweep3d.input import Sweep3DInput

#: Filename of the shipped SWEEP3D PSL model.
SWEEP3D_MODEL_RESOURCE = "sweep3d.psl"


def load_sweep3d_model() -> ModelSet:
    """Parse and return the shipped SWEEP3D PACE model (Figures 3-6)."""
    model = load_psl_resource(SWEEP3D_MODEL_RESOURCE)
    model.validate()
    return model


@dataclass(frozen=True)
class SweepWorkload:
    """A SWEEP3D problem bound to a processor array.

    Parameters
    ----------
    deck:
        The SWEEP3D input deck (grid size, blocking factors, iterations).
    px, py:
        Logical processor array dimensions.
    """

    deck: Sweep3DInput
    px: int
    py: int

    def __post_init__(self) -> None:
        if self.px < 1 or self.py < 1:
            raise ExperimentError("processor array dimensions must be >= 1")
        if self.deck.it % self.px or self.deck.jt % self.py:
            # The paper's weak-scaling configurations always divide evenly;
            # uneven splits would make the per-processor work heterogeneous,
            # which the homogeneous PSL model does not represent.
            raise ExperimentError(
                f"grid {self.deck.it}x{self.deck.jt} does not divide evenly over "
                f"a {self.px}x{self.py} processor array")

    # ------------------------------------------------------------------

    @property
    def nranks(self) -> int:
        return self.px * self.py

    @property
    def cells_per_processor(self) -> tuple[int, int, int]:
        """The (nx, ny, nz) sub-grid owned by each processor."""
        return (self.deck.it // self.px, self.deck.jt // self.py, self.deck.kt)

    def model_variables(self) -> dict[str, float]:
        """The externally modifiable variables of the sweep3d application object."""
        return {
            "it": float(self.deck.it),
            "jt": float(self.deck.jt),
            "kt": float(self.deck.kt),
            "mk": float(self.deck.mk),
            "mmi": float(self.deck.mmi),
            "npe_i": float(self.px),
            "npe_j": float(self.py),
            "n_iterations": float(self.deck.max_iterations),
            "angles_per_octant": float(self.deck.angles_per_octant),
        }

    def describe(self) -> str:
        nx, ny, nz = self.cells_per_processor
        return (f"{self.deck.it}x{self.deck.jt}x{self.deck.kt} cells on "
                f"{self.px}x{self.py} processors ({nx}x{ny}x{nz} per processor), "
                f"mk={self.deck.mk}, mmi={self.deck.mmi}, "
                f"{self.deck.max_iterations} iterations")
