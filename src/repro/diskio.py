"""Generic fingerprint-keyed directory stores (shared cache machinery).

Two persistent caches share one concurrency and accounting discipline:
the scenario-result sweep cache
(:class:`repro.experiments.diskcache.SweepDiskCache`, pickle payloads)
and the compiled-trace cache
(:class:`repro.simmpi.tracecache.TraceDiskCache`, npz payloads).  This
module holds the codec-independent machinery both build on, so the
contract is defined — and tested — exactly once:

* **one file per entry**, named by the SHA-256 digest of the entry's
  fingerprint key (:func:`fingerprint_digest`), so any change to the
  inputs changes the file name and misses instead of serving stale data;
* **atomic writes** (temp file + ``os.replace`` in the store directory):
  concurrent writers — including two processes storing the *same* key —
  never interleave partial files, readers see whole entries or none;
* **verified reads**: the decoded entry must carry the exact key that
  was asked for (guarding against format drift and digest collisions);
  corrupt, foreign or unreadable entries are misses, never errors;
* **lock-guarded accounting** (:class:`DiskCacheStats`) safe for many
  threads sharing one store object, with :meth:`DirectoryStore.prune`
  bounding long-lived stores (oldest-stored first).

The module sits below both :mod:`repro.simmpi` and
:mod:`repro.experiments` in the layering (it imports only the stdlib and
:mod:`repro.errors`), which is what lets the simulator-level trace cache
reuse the experiment-level sweep cache's discipline without an import
cycle.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.errors import ExperimentError


@dataclass
class DiskCacheStats:
    """Hit/miss/store accounting for one :class:`DirectoryStore`."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    def merge(self, other: "DiskCacheStats") -> "DiskCacheStats":
        return DiskCacheStats(hits=self.hits + other.hits,
                              misses=self.misses + other.misses,
                              stores=self.stores + other.stores)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def describe(self) -> str:
        return (f"disk cache {self.hits} hit(s) / {self.misses} miss(es), "
                f"{self.stores} store(s)")


@dataclass(frozen=True)
class PruneResult:
    """Outcome of one :meth:`DirectoryStore.prune` pass."""

    removed: int
    kept: int
    reclaimed_bytes: int

    def describe(self) -> str:
        return (f"pruned {self.removed} entr{'y' if self.removed == 1 else 'ies'}, "
                f"kept {self.kept}, reclaimed {self.reclaimed_bytes} bytes")


def fingerprint_digest(key: tuple) -> str:
    """Stable hex digest of a fingerprint tuple.

    The tuple is rendered with ``repr`` — every component the callers put
    in a fingerprint (strings, numbers, bools, nested tuples) has a stable,
    process-independent representation — and hashed with SHA-256.
    """
    return hashlib.sha256(repr(key).encode("utf-8")).hexdigest()


class DirectoryStore:
    """A directory of encoded entries keyed by fingerprint digest.

    Subclasses choose the payload codec by setting :attr:`suffix` and
    implementing :meth:`_encode` / :meth:`_decode`; everything else —
    atomic writes, miss-on-corruption reads, accounting, pruning,
    pickling across worker processes — is shared.

    Parameters
    ----------
    path:
        Store directory; created on first use.  Multiple processes (the
        sweep runner's workers, or independent CLI invocations) may share
        one directory concurrently.
    """

    #: File suffix of every entry (used to enumerate the store).
    suffix = ".pkl"

    #: Codec-specific exceptions :meth:`_decode` may raise on a corrupt or
    #: truncated payload, beyond the ``OSError``/``ValueError``/``KeyError``
    #: the base read path already treats as misses.
    _decode_errors: tuple[type[BaseException], ...] = ()

    def __init__(self, path: str | os.PathLike):
        self.path = Path(path)
        self.stats = DiskCacheStats()
        #: Guards the accounting: one store object may serve many threads
        #: (the prediction service's worker pool), and ``stats.hits += 1``
        #: is a read-modify-write that would drop counts unguarded.
        self._stats_lock = threading.Lock()
        try:
            self.path.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise ExperimentError(
                f"cannot create cache directory {self.path}: {exc}") from exc

    # -- codec hooks (subclass responsibility) --------------------------

    def _encode(self, key: tuple, value: Any) -> bytes:
        """Serialise ``(key, value)`` into one entry payload."""
        raise NotImplementedError

    def _decode(self, data: bytes, key: tuple) -> Any:
        """Recover the value from ``data``, verifying it was stored under
        ``key`` (raise ``ValueError`` for a stale or foreign entry)."""
        raise NotImplementedError

    # ------------------------------------------------------------------

    def _entry_path(self, key: tuple) -> Path:
        return self.path / f"{fingerprint_digest(key)}{self.suffix}"

    def get(self, key: tuple) -> Any | None:
        """The stored value for ``key``, or ``None`` (counted as a miss)."""
        entry = self._entry_path(key)
        try:
            with open(entry, "rb") as handle:
                data = handle.read()
            value = self._decode(data, key)
        except (OSError, ValueError, KeyError, *self._decode_errors):
            with self._stats_lock:
                self.stats.misses += 1
            return None
        with self._stats_lock:
            self.stats.hits += 1
        return value

    def put(self, key: tuple, value: Any) -> None:
        """Store ``value`` under ``key`` atomically.

        The entry is written to a temporary file in the store directory and
        moved into place with ``os.replace``, which is atomic on POSIX and
        Windows — concurrent writers of the same key simply race to an
        identical complete file, and readers never observe a partial one.
        """
        entry = self._entry_path(key)
        payload = self._encode(key, value)
        fd, tmp_name = tempfile.mkstemp(dir=self.path, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            os.replace(tmp_name, entry)
        except OSError:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        with self._stats_lock:
            self.stats.stores += 1

    # ------------------------------------------------------------------

    def entries(self) -> list[Path]:
        """Every entry file currently in the store."""
        return sorted(self.path.glob(f"*{self.suffix}"))

    def __len__(self) -> int:
        return sum(1 for _ in self.path.glob(f"*{self.suffix}"))

    def total_bytes(self) -> int:
        """Total on-disk size of every entry (bytes)."""
        total = 0
        for entry in self.path.glob(f"*{self.suffix}"):
            try:
                total += entry.stat().st_size
            except OSError:
                pass
        return total

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for entry in self.path.glob(f"*{self.suffix}"):
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def prune(self, max_entries: int | None = None,
              max_age_s: float | None = None,
              now: float | None = None) -> "PruneResult":
        """Evict stale and excess entries from a long-lived store.

        Parameters
        ----------
        max_entries:
            Keep at most this many entries, evicting the least recently
            *stored* first (entries are immutable, so the file mtime is
            the store time).
        max_age_s:
            Evict every entry stored more than this many seconds ago.
        now:
            Reference timestamp for ``max_age_s`` (defaults to the wall
            clock; injectable for tests).

        Entries that vanish mid-prune (a concurrent pruner or ``clear``)
        are skipped, not errors — the store stays safe under the same
        concurrent access the reads and atomic writes support.
        """
        if max_entries is not None and max_entries < 0:
            raise ExperimentError("prune: max_entries must be >= 0")
        if max_age_s is not None and max_age_s < 0:
            raise ExperimentError("prune: max_age_s must be >= 0")
        now = time.time() if now is None else now

        stamped: list[tuple[float, int, Path]] = []
        for entry in self.path.glob(f"*{self.suffix}"):
            try:
                info = entry.stat()
            except OSError:
                continue
            stamped.append((info.st_mtime, info.st_size, entry))
        stamped.sort()  # oldest first

        doomed: dict[Path, int] = {}
        if max_age_s is not None:
            cutoff = now - max_age_s
            for mtime, size, entry in stamped:
                if mtime < cutoff:
                    doomed[entry] = size
        if max_entries is not None:
            survivors = [item for item in stamped if item[2] not in doomed]
            excess = len(survivors) - max_entries
            for mtime, size, entry in survivors[:max(0, excess)]:
                doomed[entry] = size

        removed = reclaimed = 0
        for entry, size in doomed.items():
            try:
                entry.unlink()
            except OSError:
                continue
            removed += 1
            reclaimed += size
        return PruneResult(removed=removed, kept=len(stamped) - removed,
                           reclaimed_bytes=reclaimed)

    def stats_snapshot(self) -> DiskCacheStats:
        """A consistent copy of the accounting (safe under concurrent use)."""
        with self._stats_lock:
            return DiskCacheStats(hits=self.stats.hits,
                                  misses=self.stats.misses,
                                  stores=self.stats.stores)

    def reset_stats(self) -> None:
        with self._stats_lock:
            self.stats = DiskCacheStats()

    def __getstate__(self):
        # Worker processes rebuild the store from its path; the lock is
        # process-local and not picklable.
        state = dict(self.__dict__)
        del state["_stats_lock"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._stats_lock = threading.Lock()
