"""Exception hierarchy shared across the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so user
code can catch a single base class.  Sub-hierarchies exist for the PACE
modelling languages (PSL / HMCL / capp), the discrete-event cluster
simulator, and the SWEEP3D application layer.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the :mod:`repro` package."""


# ---------------------------------------------------------------------------
# Modelling-language errors (PSL / HMCL / capp)
# ---------------------------------------------------------------------------


class ModelError(ReproError):
    """Base class for errors in PACE model definition or evaluation."""


class PslError(ModelError):
    """Base class for Performance Specification Language errors."""


class PslSyntaxError(PslError):
    """Raised by the PSL lexer/parser on malformed input.

    Parameters
    ----------
    message:
        Human readable description of the problem.
    line, column:
        1-based source position of the offending token, when known.
    filename:
        Name of the script being parsed, when known.
    """

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None, filename: str | None = None):
        self.line = line
        self.column = column
        self.filename = filename
        location = ""
        if filename is not None:
            location += f"{filename}:"
        if line is not None:
            location += f"{line}"
            if column is not None:
                location += f":{column}"
        if location:
            message = f"{location}: {message}"
        super().__init__(message)


class PslNameError(PslError):
    """Raised when a PSL identifier cannot be resolved during evaluation."""


class PslEvaluationError(PslError):
    """Raised when a PSL procedure fails to evaluate."""


class HmclError(ModelError):
    """Base class for Hardware Modelling and Configuration Language errors."""


class HmclSyntaxError(HmclError):
    """Raised on malformed HMCL hardware description scripts."""


class HmclLookupError(HmclError):
    """Raised when a hardware resource value (clc cost, mpi parameter) is missing."""


class CappError(ModelError):
    """Base class for errors from the ``capp`` static C source analyser."""


class CappSyntaxError(CappError):
    """Raised when the C-subset parser cannot understand the source."""


class EvaluationError(ModelError):
    """Raised when the PACE evaluation engine cannot produce a prediction."""


# ---------------------------------------------------------------------------
# Cluster simulator errors
# ---------------------------------------------------------------------------


class SimulationError(ReproError):
    """Base class for discrete-event cluster simulator errors."""


class DeadlockError(SimulationError):
    """Raised when every live simulated rank is blocked and no event is pending."""

    def __init__(self, message: str, blocked_ranks: list[int] | None = None):
        self.blocked_ranks = list(blocked_ranks or [])
        super().__init__(message)


class RankFailureError(SimulationError):
    """Raised when a simulated rank's program raises an exception."""

    def __init__(self, rank: int, original: BaseException):
        self.rank = rank
        self.original = original
        super().__init__(f"rank {rank} failed: {original!r}")


class CommunicatorError(SimulationError):
    """Raised on invalid use of the simulated MPI communicator API."""


class TraceError(SimulationError):
    """Raised when a rank program cannot be trace-compiled for replay.

    Trace replay (:mod:`repro.simmpi.trace`) requires the event pattern to
    be independent of virtual time: numeric payload runs, wildcard
    receives, non-blocking requests and clock reads all make the pattern
    (or its results) timing-dependent and are rejected with this error.
    """


class NetworkConfigError(SimulationError):
    """Raised when a network model is configured with invalid parameters."""


class ProcessorConfigError(SimulationError):
    """Raised when a processor model is configured with invalid parameters."""


# ---------------------------------------------------------------------------
# Application (SWEEP3D) errors
# ---------------------------------------------------------------------------


class Sweep3DError(ReproError):
    """Base class for SWEEP3D application errors."""


class InputDeckError(Sweep3DError):
    """Raised for malformed or inconsistent SWEEP3D input decks."""


class DecompositionError(Sweep3DError):
    """Raised when a problem cannot be decomposed onto the processor array."""


class ConvergenceError(Sweep3DError):
    """Raised when source iteration fails to converge within the allowed iterations."""


# ---------------------------------------------------------------------------
# Experiment harness errors
# ---------------------------------------------------------------------------


class ExperimentError(ReproError):
    """Raised when an experiment definition or run is invalid."""


class StoreError(ExperimentError):
    """Raised by artifact/cache stores (:mod:`repro.experiments.remotestore`)
    on bad keys, missing objects, or backend I/O failures."""


class FleetError(ExperimentError):
    """Raised by the elastic shard fleet (:mod:`repro.experiments.fleet`)
    on coordinator/worker protocol violations or an unrecoverable run."""


# ---------------------------------------------------------------------------
# Prediction-service errors
# ---------------------------------------------------------------------------


class ServiceError(ReproError):
    """Raised for prediction-service failures (server- or client-side).

    ``status`` carries the HTTP status code the condition maps to — the
    server uses it to pick the response status, the client re-raises the
    server's reported code.
    """

    def __init__(self, message: str, status: int = 400):
        self.status = status
        super().__init__(message)


class ProtocolError(ServiceError):
    """Raised when a service message cannot be encoded or decoded.

    Covers version mismatches, unknown message types and malformed or
    unexpected fields on the wire (:mod:`repro.service.protocol`).
    """


class MachineNotFoundError(ExperimentError):
    """Raised when a machine name is not present in the registry."""
