"""Experiment harness: scenario grids evaluated by one batch sweep runner.

Every experiment **declares** its parameter grid as
:class:`~repro.experiments.sweep.Scenario` points and routes them through
the :class:`~repro.experiments.sweep.SweepRunner`
(:mod:`repro.experiments.sweep`), which evaluates them via the compiled
prediction pipeline — the PSL model is compiled once, one executor is kept
per hardware fingerprint, the cflow/subtask caches are shared across every
point, and ``workers > 1`` fans the grid out over ``multiprocessing``.

The experiments themselves:

* Tables 1-3 — validation of the PACE model against (simulated) measured
  run times on the three clusters (:mod:`repro.experiments.tables`); the
  prediction column is a row grid, the measurement column is attached from
  the discrete-event simulator afterwards.
* Figures 8-9 — the speculative scaling study: a (rate factor x processor
  count) grid on the hypothetical 8000-processor machine
  (:mod:`repro.experiments.figures`).
* Blocking study — an (mk, mmi) grid (:mod:`repro.experiments.blocking`).
* Scaling analysis — weak-scaling metrics over a processor-count grid
  (:mod:`repro.experiments.scaling`).
* The Section-4 ablation — a two-point hardware grid: legacy per-opcode
  benchmarking vs the coarse achieved-rate approach
  (:mod:`repro.experiments.ablation`).
* The Section-6 model-agreement check — PACE vs LogGP vs the Los Alamos
  model (:mod:`repro.experiments.agreement`).

The published numbers of the paper are transcribed in
:mod:`repro.experiments.paper_data` so every report can show paper-vs-
reproduced values side by side.  The CLI exposes ad-hoc grids as
``repro-sweep3d sweep``.
"""

from repro.experiments.paper_data import (
    PAPER_TABLES,
    PaperValidationRow,
    SpeculativeStudy,
    FIGURE8_STUDY,
    FIGURE9_STUDY,
)
from repro.experiments.runner import (
    ValidationRowResult,
    ValidationTableResult,
    measure_rows,
    run_validation_row,
)
from repro.experiments.backends import (
    Backend,
    PredictionBackend,
    SimMeasurement,
    SimulationBackend,
    available_backends,
    create_backend,
    register_backend,
    simulation_grid,
)
from repro.experiments.diskcache import DiskCacheStats, SweepDiskCache
from repro.experiments.tables import run_table, table1, table2, table3
from repro.experiments.figures import FigureResult, figure8, figure9, run_speculative_figure
from repro.experiments.ablation import AblationResult, run_opcode_ablation
from repro.experiments.agreement import AgreementResult, run_model_agreement
from repro.experiments.blocking import BlockingStudyResult, run_blocking_study
from repro.experiments.scaling import (
    ScalingAnalysis,
    analyze_figure,
    analyze_series,
    run_scaling_study,
)
from repro.experiments.sweep import Scenario, ScenarioSweep, SweepOutcome, SweepRunner

__all__ = [
    "PAPER_TABLES",
    "PaperValidationRow",
    "SpeculativeStudy",
    "FIGURE8_STUDY",
    "FIGURE9_STUDY",
    "ValidationRowResult",
    "ValidationTableResult",
    "measure_rows",
    "run_validation_row",
    "Backend",
    "PredictionBackend",
    "SimMeasurement",
    "SimulationBackend",
    "available_backends",
    "create_backend",
    "register_backend",
    "simulation_grid",
    "DiskCacheStats",
    "SweepDiskCache",
    "run_table",
    "table1",
    "table2",
    "table3",
    "FigureResult",
    "figure8",
    "figure9",
    "run_speculative_figure",
    "AblationResult",
    "run_opcode_ablation",
    "AgreementResult",
    "run_model_agreement",
    "BlockingStudyResult",
    "run_blocking_study",
    "ScalingAnalysis",
    "analyze_figure",
    "analyze_series",
    "run_scaling_study",
    "Scenario",
    "ScenarioSweep",
    "SweepOutcome",
    "SweepRunner",
]
