"""Experiment harness: regeneration of every table and figure of the paper.

* Tables 1-3 — validation of the PACE model against (simulated) measured
  run times on the three clusters (:mod:`repro.experiments.tables`).
* Figures 8-9 — the speculative scaling study on the hypothetical
  8000-processor machine (:mod:`repro.experiments.figures`).
* The Section-4 ablation — legacy per-opcode benchmarking vs the coarse
  achieved-rate approach (:mod:`repro.experiments.ablation`).
* The Section-6 model-agreement check — PACE vs LogGP vs the Los Alamos
  model (:mod:`repro.experiments.agreement`).

The published numbers of the paper are transcribed in
:mod:`repro.experiments.paper_data` so every report can show paper-vs-
reproduced values side by side.
"""

from repro.experiments.paper_data import (
    PAPER_TABLES,
    PaperValidationRow,
    SpeculativeStudy,
    FIGURE8_STUDY,
    FIGURE9_STUDY,
)
from repro.experiments.runner import ValidationRowResult, ValidationTableResult, run_validation_row
from repro.experiments.tables import run_table, table1, table2, table3
from repro.experiments.figures import FigureResult, figure8, figure9, run_speculative_figure
from repro.experiments.ablation import AblationResult, run_opcode_ablation
from repro.experiments.agreement import AgreementResult, run_model_agreement
from repro.experiments.blocking import BlockingStudyResult, run_blocking_study
from repro.experiments.scaling import ScalingAnalysis, analyze_figure, analyze_series

__all__ = [
    "PAPER_TABLES",
    "PaperValidationRow",
    "SpeculativeStudy",
    "FIGURE8_STUDY",
    "FIGURE9_STUDY",
    "ValidationRowResult",
    "ValidationTableResult",
    "run_validation_row",
    "run_table",
    "table1",
    "table2",
    "table3",
    "FigureResult",
    "figure8",
    "figure9",
    "run_speculative_figure",
    "AblationResult",
    "run_opcode_ablation",
    "AgreementResult",
    "run_model_agreement",
    "BlockingStudyResult",
    "run_blocking_study",
    "ScalingAnalysis",
    "analyze_figure",
    "analyze_series",
]
