"""Experiment harness: declarative studies over one batch sweep runner.

Every experiment is a **registered study**: a named entry in the
:mod:`repro.experiments.study` registry whose workload is described by a
frozen, JSON/TOML-serializable :class:`~repro.experiments.study.StudySpec`
(machine preset, backend, grid parameters, workers, cache directory,
analysis hooks).  One :class:`~repro.experiments.study.StudyRunner`
executes any number of specs in a single invocation — the PSL model is
parsed and compiled once, one disk-backed
:class:`~repro.experiments.diskcache.SweepDiskCache` and one
multiprocessing pool are shared across studies — and emits typed
:class:`~repro.experiments.study.StudyResult` artifacts with uniform
JSON/CSV export and a run manifest
(:mod:`repro.experiments.artifacts`).  A spec file plus a shared cache
directory is the unit of work a fleet of machines can split.

Underneath, every study still reduces to scenario grids evaluated by the
:class:`~repro.experiments.sweep.SweepRunner` through a named backend
(:mod:`repro.experiments.backends`): ``"predict"`` is the compiled
analytic PACE pipeline, ``"simulate"`` the discrete-event SWEEP3D
simulator.

A run time comes in one of **four result shapes** — the middle two
bit-identical to each other, so the shape never changes a number:

1. **analytic** — the compiled PACE pipeline plus the LogGP/Hoisie
   comparison closed forms (:mod:`repro.analytic`) — chosen for
   predictions and speculative studies, approximate by design (the gap
   is the paper's validation error);
2. **modelled** — the reference engine
   (:class:`~repro.simmpi.engine.ClusterEngine`), the per-event
   discrete-event ground truth and the only simulated shape for
   ``numeric`` runs or timing-dependent patterns (chosen for those, or
   on request via ``sim_execution="engine"``);
3. **replayed** (:mod:`repro.simmpi.trace`): a modelled run's event
   pattern is recorded once per
   :class:`~repro.sweep3d.driver.SimulationPlan` and each run resolves
   as a vectorised max-plus recurrence — bit-identical to the engine at
   matched noise seeds, ~10-25x faster, chosen automatically for
   modelled scenarios (``sim_execution="auto"``, the default);
4. **sampled** — the batched multi-seed replay
   (:meth:`~repro.simmpi.trace.CompiledTrace.replay_batch`): ``S``
   independently seeded noise streams advance through one max-plus pass
   and a run becomes a distribution (per-sample elapsed times plus
   mean/std/CI95); sample 0 runs at the scenario's own seed, so the
   headline number stays bit-identical to shapes 2-3 and the
   uncertainty block is strictly additive (the ``samples`` parameter of
   the table studies, ``repro.api.simulate``, the CLI and the
   ``noise-sensitivity`` study; see
   :mod:`repro.experiments.uncertainty`).

The registered studies:

* ``table1``/``table2``/``table3`` — validation of the PACE model against
  (simulated) measured run times on the three clusters
  (:mod:`repro.experiments.tables`); the prediction column is a row grid,
  the measurement column is attached from the discrete-event simulator.
* ``figure8``/``figure9`` — the speculative scaling study: a (rate factor
  x processor count) grid on the hypothetical 8000-processor machine
  (:mod:`repro.experiments.figures`).
* ``blocking`` — an (mk, mmi) grid (:mod:`repro.experiments.blocking`).
* ``scaling`` — weak-scaling metrics over a processor-count grid
  (:mod:`repro.experiments.scaling`).
* ``ablation`` — legacy per-opcode benchmarking vs the coarse
  achieved-rate approach (:mod:`repro.experiments.ablation`).
* ``agreement`` — PACE vs LogGP vs the Los Alamos model
  (:mod:`repro.experiments.agreement`).
* ``noise-sensitivity`` — multi-seed uncertainty quantification: the
  scenario grid of any (or every) registered study re-run at ``samples``
  noise seeds through the batched trace replay
  (:mod:`repro.experiments.uncertainty`).
* ``steady-scaling`` — modelled grids far beyond the paper's tables
  (256M cells, hundred-iteration runs) through the steady-state
  periodic-trace execution tier (:mod:`repro.experiments.steadyscale`).

Every study's grid is also **shardable**
(:mod:`repro.experiments.sharding`): a deterministic, cost-balanced
:class:`~repro.experiments.sharding.ShardPlanner` splits a spec into
disjoint shard specs any machine can run independently against the
shared cache directory, and the merge layer
(:func:`~repro.experiments.sharding.merge_study_results`,
:func:`~repro.experiments.artifacts.merge_manifests`) recombines shard
results bit-identically to an unsharded run.  On top of the static
plan sits the **elastic fleet** (:mod:`repro.experiments.fleet`): a
:class:`~repro.experiments.fleet.FleetCoordinator` leases one-unit
shards to workers with heartbeat-renewed fault-tolerant leases
(crashed workers' units are reassigned, stragglers' surplus stolen),
shard results and warm cache entries flowing between machines through
an :class:`~repro.experiments.remotestore.ArtifactStore` — and the
merged rows stay bit-identical to the static plan and the unsharded
run, whatever the kill schedule.

The legacy per-experiment entrypoints (``run_table``, ``figure8``,
``run_blocking_study``, ...) survive as thin shims that build specs
internally and run them through the same pipeline, bit-identically.  The
published numbers of the paper are transcribed in
:mod:`repro.experiments.paper_data` so every report can show paper-vs-
reproduced values side by side.  The CLI front end is
``repro-sweep3d run <study|spec-file> [--all] [--smoke] [--shard I/N]
[--out DIR]`` (plus ``studies``, ``shard plan``, ``merge``,
``cache {stats,prune}`` and the ad-hoc ``sweep`` grids); the stable
import surface is :mod:`repro.api`.
"""

from repro.experiments.paper_data import (
    PAPER_TABLES,
    PaperValidationRow,
    SpeculativeStudy,
    FIGURE8_STUDY,
    FIGURE9_STUDY,
)
from repro.experiments.runner import (
    ValidationRowResult,
    ValidationTableResult,
    measure_rows,
    run_validation_row,
)
from repro.experiments.backends import (
    Backend,
    PredictionBackend,
    SimMeasurement,
    SimulationBackend,
    available_backends,
    create_backend,
    register_backend,
    simulation_grid,
)
from repro.experiments.diskcache import DiskCacheStats, PruneResult, SweepDiskCache
from repro.experiments.tables import run_table, table1, table2, table3
from repro.experiments.figures import FigureResult, figure8, figure9, run_speculative_figure
from repro.experiments.ablation import AblationResult, run_opcode_ablation
from repro.experiments.agreement import AgreementResult, run_model_agreement
from repro.experiments.blocking import BlockingStudyResult, run_blocking_study
from repro.experiments.scaling import (
    ScalingAnalysis,
    analyze_figure,
    analyze_series,
    run_scaling_study,
)
from repro.experiments.sweep import Scenario, ScenarioSweep, SweepOutcome, SweepRunner
from repro.experiments.study import (
    StudyContext,
    StudyResult,
    StudyRunner,
    StudySpec,
    build_spec,
    load_spec,
    register_analysis,
    register_study,
    run_studies,
    run_study,
    study_names,
)
from repro.experiments.sharding import (
    ShardPlan,
    ShardPlanner,
    make_shard_spec,
    merge_study_results,
    plan_shards,
    plan_unit_shards,
)
from repro.experiments.fleet import (
    FleetCoordinator,
    FleetOutcome,
    FleetWorker,
    fleet_status,
    run_local_fleet,
)
from repro.experiments.remotestore import (
    ArtifactStore,
    LocalDirStore,
    MemoryStore,
    pull_cache_entries,
    push_cache_entries,
    store_from_url,
)
from repro.experiments.artifacts import (
    compare_artifact_dirs,
    load_study_results,
    merge_manifests,
    read_manifest,
    write_study_artifacts,
)
from repro.experiments.uncertainty import (
    NoiseCalibration,
    NoiseSensitivityResult,
    ScenarioUncertainty,
    StudyUncertainty,
    calibrate_noise,
)
from repro.experiments.steadyscale import (
    SteadyScaleRow,
    SteadyScalingResult,
)

__all__ = [
    "PAPER_TABLES",
    "PaperValidationRow",
    "SpeculativeStudy",
    "FIGURE8_STUDY",
    "FIGURE9_STUDY",
    "ValidationRowResult",
    "ValidationTableResult",
    "measure_rows",
    "run_validation_row",
    "Backend",
    "PredictionBackend",
    "SimMeasurement",
    "SimulationBackend",
    "available_backends",
    "create_backend",
    "register_backend",
    "simulation_grid",
    "DiskCacheStats",
    "PruneResult",
    "SweepDiskCache",
    "run_table",
    "table1",
    "table2",
    "table3",
    "FigureResult",
    "figure8",
    "figure9",
    "run_speculative_figure",
    "AblationResult",
    "run_opcode_ablation",
    "AgreementResult",
    "run_model_agreement",
    "BlockingStudyResult",
    "run_blocking_study",
    "ScalingAnalysis",
    "analyze_figure",
    "analyze_series",
    "run_scaling_study",
    "Scenario",
    "ScenarioSweep",
    "SweepOutcome",
    "SweepRunner",
    "StudyContext",
    "StudyResult",
    "StudyRunner",
    "StudySpec",
    "build_spec",
    "load_spec",
    "register_analysis",
    "register_study",
    "run_studies",
    "run_study",
    "study_names",
    "read_manifest",
    "write_study_artifacts",
    "ShardPlan",
    "ShardPlanner",
    "plan_shards",
    "plan_unit_shards",
    "make_shard_spec",
    "merge_study_results",
    "merge_manifests",
    "load_study_results",
    "compare_artifact_dirs",
    "FleetCoordinator",
    "FleetOutcome",
    "FleetWorker",
    "fleet_status",
    "run_local_fleet",
    "ArtifactStore",
    "LocalDirStore",
    "MemoryStore",
    "store_from_url",
    "push_cache_entries",
    "pull_cache_entries",
    "NoiseCalibration",
    "NoiseSensitivityResult",
    "ScenarioUncertainty",
    "StudyUncertainty",
    "calibrate_noise",
    "SteadyScaleRow",
    "SteadyScalingResult",
]
