"""Ablation: legacy per-opcode benchmarking vs coarse achieved-rate benchmarking.

Section 4 of the paper motivates the coarse approach by noting that the
original opcode-level benchmarks "in some cases (such as on the AMD Opteron
2-way SMP cluster) gave a prediction error as large as 50%".  This
experiment reproduces that comparison: the same PSL application model is
evaluated against two HMCL hardware objects for the same machine — one
built from the legacy per-opcode micro-benchmark times, one from the
profiled achieved floating point rate — and both predictions are compared
against the simulated measurement.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import units
from repro.core.workload import SweepWorkload
from repro.experiments.paper_data import PAPER_TABLES
from repro.experiments.runner import deck_for_row
from repro.experiments.sweep import Scenario
from repro.machines.machine import Machine
from repro.machines.presets import get_machine


@dataclass
class AblationResult:
    """Errors of the two benchmarking approaches for one configuration."""

    machine_name: str
    data_size: str
    pes: int
    measured: float
    coarse_prediction: float
    legacy_prediction: float

    @property
    def coarse_error_pct(self) -> float:
        return units.relative_error(self.measured, self.coarse_prediction)

    @property
    def legacy_error_pct(self) -> float:
        return units.relative_error(self.measured, self.legacy_prediction)

    @property
    def improvement_factor(self) -> float:
        """How many times smaller the coarse approach's error magnitude is."""
        coarse = abs(self.coarse_error_pct)
        legacy = abs(self.legacy_error_pct)
        if coarse == 0:
            return float("inf")
        return legacy / coarse

    def describe(self) -> str:
        return (f"{self.machine_name} {self.data_size} ({self.pes} PEs): "
                f"measured {self.measured:.2f}s; "
                f"coarse {self.coarse_prediction:.2f}s ({self.coarse_error_pct:+.1f}%), "
                f"legacy {self.legacy_prediction:.2f}s ({self.legacy_error_pct:+.1f}%)")


def _run_opcode_ablation_impl(machine: Machine | None = None,
                              table_name: str = "table2",
                              row_index: int = 0,
                              max_iterations: int = 12,
                              simulate_measurement: bool = True,
                              context=None) -> AblationResult:
    """The direct implementation behind the ``ablation`` study."""
    spec = PAPER_TABLES[table_name]
    machine = machine or get_machine(spec["machine"])
    row = spec["rows"][row_index]
    deck = deck_for_row(row, max_iterations=max_iterations)
    workload = SweepWorkload(deck, row.px, row.py)

    # The ablation is a two-point hardware sweep: the same scenario
    # variables evaluated against the coarse and the legacy cpu sections.
    variables = workload.model_variables()
    from repro.experiments.study import ensure_context
    with ensure_context(context) as ctx:
        runner = ctx.prediction_runner()
        coarse_outcome, legacy_outcome = runner.run([
            Scenario(label="coarse", variables=variables,
                     hardware=machine.hardware_model(deck, row.px, row.py,
                                                     legacy_cpu=False)),
            Scenario(label="legacy", variables=variables,
                     hardware=machine.hardware_model(deck, row.px, row.py,
                                                     legacy_cpu=True)),
        ])
    coarse = coarse_outcome.total_time
    legacy = legacy_outcome.total_time

    if simulate_measurement:
        measured = machine.simulate(deck, row.px, row.py, numeric=False,
                                    seed_offset=row.pes).elapsed_time
    else:
        # Scale the paper's measurement to the requested iteration count.
        measured = row.measured * max_iterations / 12.0

    return AblationResult(
        machine_name=machine.name,
        data_size=row.data_size,
        pes=row.pes,
        measured=measured,
        coarse_prediction=coarse,
        legacy_prediction=legacy,
    )


def run_opcode_ablation(machine: Machine | str | None = None,
                        table_name: str = "table2",
                        row_index: int = 0,
                        max_iterations: int = 12,
                        simulate_measurement: bool = True) -> AblationResult:
    """Run the legacy-vs-coarse ablation for one validation-table row.

    Defaults to the first row of Table 2 — the Opteron cluster singled out
    by the paper's 50 %-error remark.

    Deprecated shim over the Study API (the ``"ablation"`` study): a
    machine given by preset name (or defaulted) routes through a spec; an
    explicit :class:`Machine` instance runs directly, bit-identically.
    """
    if machine is None or isinstance(machine, str):
        from repro.experiments.study import build_spec, run_study
        spec = build_spec("ablation", machine=machine,
                          table=table_name, row_index=row_index,
                          max_iterations=max_iterations,
                          simulate_measurement=simulate_measurement)
        return run_study(spec).payload
    return _run_opcode_ablation_impl(machine=machine, table_name=table_name,
                                     row_index=row_index,
                                     max_iterations=max_iterations,
                                     simulate_measurement=simulate_measurement)
