"""Model agreement: PACE vs LogGP vs the Los Alamos analytic model.

Section 6 states that the speculative results "were seen to be in good
agreement with other related analytical models".  This experiment evaluates
the three predictors on the speculative configurations and reports their
relative spread.

The PACE predictions run as one scenario grid through the batch
:class:`~repro.experiments.sweep.SweepRunner` with the backend selected by
name (``"predict"``), each processor count carrying its own hardware model
as a per-scenario override; the two closed-form analytic models are then
evaluated per point from the same hardware objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import units
from repro.analytic.comparison import ModelComparison, compare_models
from repro.core.workload import SweepWorkload
from repro.experiments.paper_data import FIGURE8_STUDY, SpeculativeStudy
from repro.experiments.sweep import Scenario, ScenarioSweep
from repro.machines.machine import Machine
from repro.machines.presets import get_machine
from repro.simmpi.cart import Cart2D
from repro.sweep3d.input import Sweep3DInput


@dataclass
class AgreementResult:
    """Agreement of the three models across a set of processor counts."""

    study_name: str
    machine_name: str
    comparisons: list[ModelComparison] = field(default_factory=list)

    @property
    def worst_spread(self) -> float:
        return max((c.spread for c in self.comparisons), default=0.0)

    @property
    def worst_deviation_from_pace(self) -> float:
        return max((c.max_relative_difference("pace") for c in self.comparisons),
                   default=0.0)

    def describe(self) -> str:
        lines = [f"model agreement for {self.study_name} on {self.machine_name}:"]
        for comparison in self.comparisons:
            lines.append("  " + comparison.describe().replace("\n", "\n  "))
        lines.append(f"worst spread: {self.worst_spread * 100:.1f}%")
        return "\n".join(lines)


def _run_model_agreement_impl(study: SpeculativeStudy = FIGURE8_STUDY,
                              machine: Machine | None = None,
                              processor_counts: list[int] | None = None,
                              workers: int = 1,
                              context=None) -> AgreementResult:
    """The direct implementation behind the ``agreement`` study."""
    machine = machine or get_machine("hypothetical-opteron-myrinet")
    counts = processor_counts if processor_counts is not None else [16, 256, 1024, 8000]

    nx, ny, nz = study.cells_per_processor
    rate = study.flop_rate_mflops * units.MFLOPS
    result = AgreementResult(study_name=study.name, machine_name=machine.name)

    sweep = ScenarioSweep()
    workloads = []
    for nranks in counts:
        cart = Cart2D.for_size(nranks)
        deck = Sweep3DInput(it=nx * cart.px, jt=ny * cart.py, kt=nz,
                            mk=study.mk, mmi=study.mmi, sn=6, max_iterations=12,
                            label=study.name)
        workload = SweepWorkload(deck, cart.px, cart.py)
        hardware = machine.hardware_model(deck, cart.px, cart.py,
                                          flop_rate_override=rate)
        workloads.append((workload, hardware))
        sweep.add(Scenario(label=f"{nranks} processors",
                           variables=workload.model_variables(),
                           hardware=hardware,
                           tags={"nranks": nranks}))

    from repro.experiments.study import ensure_context
    with ensure_context(context) as ctx:
        runner = ctx.prediction_runner(workers=workers)
        outcomes = runner.run(sweep)
    for (workload, hardware), outcome in zip(workloads, outcomes):
        result.comparisons.append(
            compare_models(workload, hardware,
                           pace=outcome.result.total_time))
    return result


def run_model_agreement(study: SpeculativeStudy = FIGURE8_STUDY,
                        machine: Machine | str | None = None,
                        processor_counts: list[int] | None = None,
                        workers: int = 1) -> AgreementResult:
    """Compare the three predictors on a speculative study's configurations.

    Deprecated shim over the Study API (the ``"agreement"`` study): named
    speculative studies with a machine given by preset name (or
    defaulted) route through a spec; explicit :class:`Machine` instances
    or unregistered studies run directly, bit-identically.
    """
    from repro.experiments.study import SPECULATIVE_STUDIES, build_spec, run_study
    if SPECULATIVE_STUDIES.get(study.name) == study and \
            (machine is None or isinstance(machine, str)):
        params = {"figure": study.name}
        if processor_counts is not None:
            params["processor_counts"] = tuple(processor_counts)
        spec = build_spec("agreement", machine=machine, workers=workers,
                          **params)
        return run_study(spec).payload
    if isinstance(machine, str):
        machine = get_machine(machine)
    return _run_model_agreement_impl(study=study, machine=machine,
                                     processor_counts=processor_counts,
                                     workers=workers)
