"""Artifact export for study results: JSON + CSV per study, one manifest.

:func:`write_study_artifacts` lays a run out as::

    <out_dir>/
        manifest.json            # run-level index: specs, hashes, stats
        <study>.json             # StudyResult.to_dict() (strict JSON)
        <study>.csv              # the uniform tabular rows

The manifest records, per study, the spec (and its content hash), the
resolved machine fingerprint, elapsed wall-clock time and cache
accounting — enough for a fleet of machines sharing one sweep-cache
directory to tell which shards of a grid are already done, and for a
reviewer to re-run any study from its spec alone.

Sharded runs (:mod:`repro.experiments.sharding`) write the same layout —
each shard's manifest entry additionally records its parent spec/hash and
assigned grid units — and this module provides the reassembly side:
:func:`load_study_results` rebuilds row-level results from a manifest
directory, :func:`merge_manifests` recombines any number of shard
artifact directories into one directory whose manifest and per-study
artifacts match an unsharded run (rows and CSVs byte-identical; only
wall-clock and cache accounting differ), and :func:`compare_artifact_dirs`
asserts exactly that, normalising the volatile timing fields — the check
the CI merge job runs against a reference unsharded run.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable, Sequence

from repro._version import __version__
from repro.core.evaluation.compiler import CacheStats
from repro.errors import ExperimentError
from repro.experiments.diskcache import DiskCacheStats
from repro.experiments.sharding import (
    group_by_parent,
    merge_study_results,
    study_order_key,
)
from repro.experiments.study import StudyResult, StudySpec


def _slug(name: str) -> str:
    """A filesystem-safe file stem for a study name."""
    return "".join(ch if ch.isalnum() or ch in "-_" else "-" for ch in name)


def _artifact_stems(results: list[StudyResult]) -> list[str]:
    """One unique file stem per result.

    A study name is used verbatim when it appears once; several results
    of the same study (sharded runs of one grid with different specs)
    are disambiguated by spec hash, then by position, so no shard ever
    overwrites another.
    """
    stems: list[str] = []
    taken: set[str] = set()
    for result in results:
        stem = _slug(result.spec.study)
        if stem in taken:
            stem = f"{stem}-{result.spec_hash[:8]}"
        index = 2
        while stem in taken:
            stem = f"{_slug(result.spec.study)}-{result.spec_hash[:8]}-{index}"
            index += 1
        taken.add(stem)
        stems.append(stem)
    return stems


def write_result_json(result: StudyResult, path: Path) -> None:
    path.write_text(json.dumps(result.to_dict(), indent=2, sort_keys=True,
                               allow_nan=False) + "\n")


def write_result_csv(result: StudyResult, path: Path) -> None:
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=result.columns)
        writer.writeheader()
        for row in result.rows:
            writer.writerow(row)


def manifest_entry(result: StudyResult, stem: str | None = None) -> dict:
    stem = stem if stem is not None else _slug(result.spec.study)
    entry = {
        "study": result.spec.study,
        "spec": result.spec.to_dict(),
        "spec_hash": result.spec_hash,
        "machine": result.machine_name,
        "machine_fingerprint": result.machine_fingerprint,
        "elapsed_s": result.elapsed_s,
        "rows": len(result.rows),
        "cache": {
            "predictions": result.cache_stats.predictions,
            "subtask_hits": result.cache_stats.subtask_hits,
            "subtask_misses": result.cache_stats.subtask_misses,
            "disk_hits": result.disk_stats.hits,
            "disk_misses": result.disk_stats.misses,
            "disk_stores": result.disk_stats.stores,
        },
        "execution": result.execution,
        "phases": result.phases,
        "artifacts": {
            "json": f"{stem}.json",
            "csv": f"{stem}.csv",
        },
    }
    if result.sharding is not None:
        entry["sharding"] = result.sharding
    return entry


def write_study_artifacts(results: Iterable[StudyResult] | StudyResult,
                          out_dir: str | Path,
                          allow_empty: bool = False) -> Path:
    """Write every result's JSON/CSV pair plus the run manifest.

    ``allow_empty`` permits a manifest with no studies (a shard of a fleet
    run that received no work still publishes an artifact directory).
    Returns the path of the written ``manifest.json``.
    """
    if isinstance(results, StudyResult):
        results = [results]
    results = list(results)
    if not results and not allow_empty:
        raise ExperimentError("no study results to write")
    out = Path(out_dir)
    try:
        out.mkdir(parents=True, exist_ok=True)
    except OSError as exc:
        raise ExperimentError(
            f"cannot create artifact directory {out}: {exc}") from exc

    entries = []
    for result, stem in zip(results, _artifact_stems(results)):
        write_result_json(result, out / f"{stem}.json")
        write_result_csv(result, out / f"{stem}.csv")
        entries.append(manifest_entry(result, stem))

    manifest = {
        "version": __version__,
        "studies": entries,
    }
    manifest_path = out / "manifest.json"
    manifest_path.write_text(json.dumps(manifest, indent=2, sort_keys=True,
                                        allow_nan=False) + "\n")
    return manifest_path


def read_manifest(out_dir: str | Path) -> dict:
    """Load a run manifest written by :func:`write_study_artifacts`."""
    path = Path(out_dir) / "manifest.json"
    try:
        manifest = json.loads(path.read_text())
    except OSError as exc:
        raise ExperimentError(f"cannot read manifest {path}: {exc}") from exc
    except ValueError as exc:
        raise ExperimentError(
            f"manifest {path} is not valid JSON: {exc}") from exc
    if not isinstance(manifest, dict):
        raise ExperimentError(
            f"manifest {path} holds {type(manifest).__name__}, not an object")
    return manifest


# ---------------------------------------------------------------------------
# Reassembly: load artifact directories, merge shard runs, compare runs
# ---------------------------------------------------------------------------


def load_study_results(out_dir: str | Path) -> list[StudyResult]:
    """Rebuild row-level :class:`StudyResult` objects from an artifact dir.

    The legacy payload objects are not persisted, so the results carry
    ``payload=None`` — everything the merge layer needs (spec, rows,
    machine fingerprint, accounting, shard bookkeeping) is recovered.
    Each entry's spec is re-canonicalised and its hash verified against
    the manifest, so a hand-edited manifest fails loudly.
    """
    out = Path(out_dir)
    manifest = read_manifest(out)
    results = []
    for position, entry in enumerate(manifest.get("studies", [])):
        if not isinstance(entry, dict):
            raise ExperimentError(
                f"manifest {out} study entry {position} is not an object")
        try:
            spec_data = entry["spec"]
            recorded_hash = entry["spec_hash"]
            json_name = entry["artifacts"]["json"]
        except (KeyError, TypeError) as exc:
            raise ExperimentError(
                f"manifest {out} study entry {position} is missing required "
                f"field {exc}; the manifest was edited or truncated") from exc
        spec = StudySpec.from_dict(spec_data)
        if spec.spec_hash() != recorded_hash:
            raise ExperimentError(
                f"manifest entry for {entry.get('study')!r} in {out} records "
                f"hash {recorded_hash[:12]} but its spec hashes to "
                f"{spec.spec_hash()[:12]}; the artifacts were edited")
        json_path = out / json_name
        try:
            data = json.loads(json_path.read_text())
        except OSError as exc:
            raise ExperimentError(
                f"cannot read study artifact {json_path}: {exc}") from exc
        except ValueError as exc:
            raise ExperimentError(
                f"study artifact {json_path} is not valid JSON: {exc}") from exc
        cache = entry.get("cache", {})
        results.append(StudyResult(
            spec=spec,
            payload=None,
            columns=list(data.get("columns", [])),
            rows=list(data.get("rows", [])),
            machine_name=entry.get("machine"),
            machine_fingerprint=entry.get("machine_fingerprint"),
            elapsed_s=entry.get("elapsed_s", 0.0),
            cache_stats=CacheStats(predictions=cache.get("predictions", 0),
                                   subtask_hits=cache.get("subtask_hits", 0),
                                   subtask_misses=cache.get("subtask_misses", 0)),
            disk_stats=DiskCacheStats(hits=cache.get("disk_hits", 0),
                                      misses=cache.get("disk_misses", 0),
                                      stores=cache.get("disk_stores", 0)),
            execution=dict(entry.get("execution", {})),
            phases=dict(entry.get("phases", {})),
            analysis=dict(data.get("analysis", {})),
            sharding=entry.get("sharding"),
        ))
    return results


def merge_manifests(shard_dirs: Sequence[str | Path],
                    out_dir: str | Path) -> Path:
    """Recombine shard artifact directories into one unsharded-shape run.

    Every shard family (entries sharing a parent hash) found across the
    directories is merged through
    :func:`~repro.experiments.sharding.merge_study_results`; unsharded
    entries pass through unchanged (appearing twice is an error).  The
    merged directory's manifest and per-study artifacts match an
    unsharded run of the same specs — rows and CSVs byte-identical, only
    the wall-clock/cache accounting (summed over shards) differs.

    Returns the merged ``manifest.json`` path.
    """
    if not shard_dirs:
        raise ExperimentError("no artifact directories to merge")
    collected: list[StudyResult] = []
    for shard_dir in shard_dirs:
        collected.extend(load_study_results(shard_dir))
    families, plain = group_by_parent(collected)

    seen_plain: dict[str, str | Path] = {}
    for result in plain:
        if result.spec_hash in seen_plain:
            raise ExperimentError(
                f"study {result.spec.study!r} [{result.spec_hash[:12]}] "
                "appears unsharded in more than one input directory")
        seen_plain[result.spec_hash] = result.spec.study
    merged = [merge_study_results(family) for family in families.values()]

    combined = sorted(plain + merged, key=study_order_key)
    if not combined:
        raise ExperimentError(
            f"nothing to merge: no study entries found under "
            f"{[str(d) for d in shard_dirs]}")
    return write_study_artifacts(combined, out_dir)


def _normalize_volatile(entry: dict) -> dict:
    """Zero the fields that legitimately differ between any two runs."""
    normalized = dict(entry)
    if "elapsed_s" in normalized:
        normalized["elapsed_s"] = 0.0
    if isinstance(normalized.get("cache"), dict):
        normalized["cache"] = {key: 0 for key in sorted(normalized["cache"])}
    if isinstance(normalized.get("execution"), dict):
        # Tier counts are accounting, not results: a warm disk cache
        # serves rows with the tier recorded when they were first
        # computed, so two bit-identical runs may disagree here.
        normalized["execution"] = {}
    if isinstance(normalized.get("phases"), dict):
        # Per-phase host seconds are wall-clock accounting, never results.
        normalized["phases"] = {}
    return normalized


def _canonical(data) -> str:
    return json.dumps(data, sort_keys=True, indent=2, allow_nan=False)


def compare_artifact_dirs(candidate: str | Path,
                          reference: str | Path) -> list[str]:
    """Differences between two artifact directories, timing normalised.

    Manifests are compared after zeroing wall-clock and cache accounting
    (everything else — specs, hashes, machine fingerprints, row counts,
    artifact names — must be byte-identical); per-study CSVs are compared
    byte-for-byte and per-study JSONs field-by-field with the same
    normalisation.  Returns a list of human-readable differences (empty:
    the runs match).
    """
    candidate, reference = Path(candidate), Path(reference)
    diffs: list[str] = []
    manifest_c = read_manifest(candidate)
    manifest_r = read_manifest(reference)

    entries_c = {entry["spec_hash"]: entry
                 for entry in manifest_c.get("studies", [])}
    entries_r = {entry["spec_hash"]: entry
                 for entry in manifest_r.get("studies", [])}
    for spec_hash, entry in entries_r.items():
        if spec_hash not in entries_c:
            diffs.append(f"missing study {entry['study']!r} "
                         f"[{spec_hash[:12]}]")
    for spec_hash, entry in entries_c.items():
        if spec_hash not in entries_r:
            diffs.append(f"unexpected study {entry['study']!r} "
                         f"[{spec_hash[:12]}]")

    normalized_c = {**manifest_c,
                    "studies": [_normalize_volatile(entry)
                                for entry in manifest_c.get("studies", [])]}
    normalized_r = {**manifest_r,
                    "studies": [_normalize_volatile(entry)
                                for entry in manifest_r.get("studies", [])]}
    if _canonical(normalized_c) != _canonical(normalized_r):
        diffs.append("manifest.json differs (after timing normalisation)")

    for spec_hash, entry in entries_r.items():
        other = entries_c.get(spec_hash)
        if other is None:
            continue
        study = entry["study"]
        csv_c = candidate / other["artifacts"]["csv"]
        csv_r = reference / entry["artifacts"]["csv"]
        try:
            if csv_c.read_bytes() != csv_r.read_bytes():
                diffs.append(f"{study}: CSV rows differ "
                             f"({csv_c.name} vs {csv_r.name})")
        except OSError as exc:
            diffs.append(f"{study}: cannot compare CSVs: {exc}")
        try:
            json_c = json.loads((candidate / other["artifacts"]["json"]).read_text())
            json_r = json.loads((reference / entry["artifacts"]["json"]).read_text())
        except OSError as exc:
            diffs.append(f"{study}: cannot compare JSON artifacts: {exc}")
            continue
        if _canonical(_normalize_volatile(json_c)) \
                != _canonical(_normalize_volatile(json_r)):
            diffs.append(f"{study}: JSON artifact differs "
                         "(after timing normalisation)")
    return diffs
