"""Artifact export for study results: JSON + CSV per study, one manifest.

:func:`write_study_artifacts` lays a run out as::

    <out_dir>/
        manifest.json            # run-level index: specs, hashes, stats
        <study>.json             # StudyResult.to_dict() (strict JSON)
        <study>.csv              # the uniform tabular rows

The manifest records, per study, the spec (and its content hash), the
resolved machine fingerprint, elapsed wall-clock time and cache
accounting — enough for a fleet of machines sharing one sweep-cache
directory to tell which shards of a grid are already done, and for a
reviewer to re-run any study from its spec alone.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable

from repro._version import __version__
from repro.errors import ExperimentError
from repro.experiments.study import StudyResult


def _slug(name: str) -> str:
    """A filesystem-safe file stem for a study name."""
    return "".join(ch if ch.isalnum() or ch in "-_" else "-" for ch in name)


def _artifact_stems(results: list[StudyResult]) -> list[str]:
    """One unique file stem per result.

    A study name is used verbatim when it appears once; several results
    of the same study (sharded runs of one grid with different specs)
    are disambiguated by spec hash, then by position, so no shard ever
    overwrites another.
    """
    stems: list[str] = []
    taken: set[str] = set()
    for result in results:
        stem = _slug(result.spec.study)
        if stem in taken:
            stem = f"{stem}-{result.spec_hash[:8]}"
        index = 2
        while stem in taken:
            stem = f"{_slug(result.spec.study)}-{result.spec_hash[:8]}-{index}"
            index += 1
        taken.add(stem)
        stems.append(stem)
    return stems


def write_result_json(result: StudyResult, path: Path) -> None:
    path.write_text(json.dumps(result.to_dict(), indent=2, sort_keys=True,
                               allow_nan=False) + "\n")


def write_result_csv(result: StudyResult, path: Path) -> None:
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=result.columns)
        writer.writeheader()
        for row in result.rows:
            writer.writerow(row)


def manifest_entry(result: StudyResult, stem: str | None = None) -> dict:
    stem = stem if stem is not None else _slug(result.spec.study)
    return {
        "study": result.spec.study,
        "spec": result.spec.to_dict(),
        "spec_hash": result.spec_hash,
        "machine": result.machine_name,
        "machine_fingerprint": result.machine_fingerprint,
        "elapsed_s": result.elapsed_s,
        "rows": len(result.rows),
        "cache": {
            "predictions": result.cache_stats.predictions,
            "disk_hits": result.disk_stats.hits,
            "disk_misses": result.disk_stats.misses,
            "disk_stores": result.disk_stats.stores,
        },
        "artifacts": {
            "json": f"{stem}.json",
            "csv": f"{stem}.csv",
        },
    }


def write_study_artifacts(results: Iterable[StudyResult] | StudyResult,
                          out_dir: str | Path) -> Path:
    """Write every result's JSON/CSV pair plus the run manifest.

    Returns the path of the written ``manifest.json``.
    """
    if isinstance(results, StudyResult):
        results = [results]
    results = list(results)
    if not results:
        raise ExperimentError("no study results to write")
    out = Path(out_dir)
    try:
        out.mkdir(parents=True, exist_ok=True)
    except OSError as exc:
        raise ExperimentError(
            f"cannot create artifact directory {out}: {exc}") from exc

    entries = []
    for result, stem in zip(results, _artifact_stems(results)):
        write_result_json(result, out / f"{stem}.json")
        write_result_csv(result, out / f"{stem}.csv")
        entries.append(manifest_entry(result, stem))

    manifest = {
        "version": __version__,
        "studies": entries,
    }
    manifest_path = out / "manifest.json"
    manifest_path.write_text(json.dumps(manifest, indent=2, sort_keys=True,
                                        allow_nan=False) + "\n")
    return manifest_path


def read_manifest(out_dir: str | Path) -> dict:
    """Load a run manifest written by :func:`write_study_artifacts`."""
    path = Path(out_dir) / "manifest.json"
    try:
        return json.loads(path.read_text())
    except OSError as exc:
        raise ExperimentError(f"cannot read manifest {path}: {exc}") from exc
