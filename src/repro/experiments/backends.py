"""Scenario-evaluation backends: one sweep layer, many ways to price a point.

A *backend* turns the declarative scenario grid of
:mod:`repro.experiments.sweep` into results.  The contract is two-phase,
mirroring the compiled prediction pipeline:

* ``backend.compile(scenario_space)`` performs every piece of work that is
  shared across the grid (model lowering, simulation-plan construction,
  cost tables) and returns an **executor**;
* ``executor.evaluate(scenario)`` prices one grid point.

Two backends are registered:

``"predict"``
    The compiled analytic PACE pipeline (PR 1): one
    :class:`~repro.core.evaluation.compiler.CompiledModel`, one
    :class:`~repro.core.evaluation.compiler.CompiledExecutor` per hardware
    fingerprint.

``"simulate"``
    The discrete-event SWEEP3D simulator.  Each (deck, px, py) point is
    lowered once into a :class:`~repro.sweep3d.driver.SimulationPlan`
    (topology validation, Cart2D decomposition, shared quadrature/blocking
    data, seeded noise) and re-executed across grid points; the
    block-pricing :class:`~repro.sweep3d.parallel.SweepCostTable` is shared
    across every plan of the sweep.  Modelled (timing-only) scenarios are
    executed by default as **trace replays**: the plan's event stream is
    recorded once (:mod:`repro.simmpi.trace`) and each run resolves as a
    vectorised max-plus recurrence instead of re-driving the rank
    generators (``execution="engine"`` forces the per-event reference
    path); noise-free periodic traces go one tier further through the
    steady-state extrapolation (:mod:`repro.simmpi.steady`), O(period)
    instead of O(events).  Results are bit-identical to hand-constructed per-point
    :class:`~repro.simmpi.engine.ClusterEngine` runs in every mode, and
    to themselves under any ``workers=N`` fan-out (each scenario derives
    its own noise seed from its identity, never from the worker that
    evaluates it).

Backends are selected by name through the registry
(:func:`register_backend` / :func:`create_backend`), so future workloads
plug in as "a backend + a scenario grid".
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Protocol, runtime_checkable

from repro.core.evaluation import PredictionResult
from repro.core.evaluation.compiler import (
    CacheStats,
    CompiledModel,
    hardware_fingerprint,
)
from repro.core.hmcl.model import HardwareModel
from repro.core.ir import ModelSet
from repro.errors import ExperimentError
from repro.simnet.noise import derive_seed
from repro.sweep3d.input import Sweep3DInput, standard_deck
from repro.sweep3d.parallel import SweepCostTable


# ---------------------------------------------------------------------------
# Protocols and registry
# ---------------------------------------------------------------------------


@runtime_checkable
class BackendExecutor(Protocol):
    """Executes individual scenarios after a backend compiled the space."""

    def evaluate(self, scenario) -> Any:
        """Price one scenario; the result must expose ``total_time``."""
        ...

    def collect_stats(self) -> CacheStats:
        """Cumulative cache accounting since the executor was created."""
        ...


@runtime_checkable
class Backend(Protocol):
    """A named way of evaluating scenario grids."""

    name: str

    def compile(self, scenario_space=None) -> BackendExecutor:
        """Lower the shared work of a scenario space into an executor."""
        ...

    def fingerprint(self, scenario) -> tuple:
        """A value-identity for (backend config, scenario): the disk-cache key."""
        ...


_BACKENDS: dict[str, type] = {}


def register_backend(name: str, factory: type) -> None:
    """Register a backend class under ``name`` (later wins, like entry points)."""
    _BACKENDS[name] = factory


def available_backends() -> list[str]:
    """Names of every registered backend."""
    return sorted(_BACKENDS)


def create_backend(name: str, **kwargs) -> Backend:
    """Instantiate a registered backend by name.

    ``kwargs`` are passed to the backend constructor; unknown names raise
    :class:`~repro.errors.ExperimentError` listing what is available.
    """
    factory = _BACKENDS.get(name)
    if factory is None:
        raise ExperimentError(
            f"unknown scenario backend {name!r}; available: {available_backends()}")
    return factory(**kwargs)


# ---------------------------------------------------------------------------
# The compiled-prediction backend
# ---------------------------------------------------------------------------


def model_fingerprint(model: ModelSet) -> str:
    """A content digest of a PSL model set, used in disk-cache keys.

    Hashes the full structure of every object (variables, links, procs,
    cflows — dataclass ASTs with deterministic reprs), so editing the PSL
    source changes the key and misses the persistent cache instead of
    serving predictions from the old model.  Names alone are not enough:
    an equation edit keeps every object and procedure name intact.
    """
    payload = repr(sorted((name, repr(obj.__dict__))
                          for name, obj in model.objects.items()))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class PredictionBackend:
    """Evaluates scenarios through the compiled analytic PACE pipeline."""

    name = "predict"

    def __init__(self, model: ModelSet | None = None,
                 hardware: HardwareModel | None = None,
                 entry_proc: str = "init",
                 compiled: CompiledModel | None = None):
        if compiled is not None:
            model = compiled.model
        elif model is None:
            from repro.core.workload import load_sweep3d_model
            model = load_sweep3d_model()
        self.model = model
        self.hardware = hardware
        self.entry_proc = entry_proc
        self._compiled: CompiledModel | None = compiled
        self._model_token: str | None = None

    def compile(self, scenario_space=None) -> "PredictionExecutor":
        if self._compiled is None:
            self._compiled = CompiledModel(self.model)
        return PredictionExecutor(self._compiled, self.hardware, self.entry_proc)

    def fingerprint(self, scenario) -> tuple:
        hardware = scenario.hardware or self.hardware
        if hardware is None:
            raise ExperimentError(
                f"scenario {scenario.label!r} has no hardware model and the "
                "prediction backend was constructed without a default")
        if self._model_token is None:
            self._model_token = model_fingerprint(self.model)
        return (
            self.name,
            self._model_token,
            self.entry_proc,
            hardware_fingerprint(hardware),
            tuple(sorted(scenario.variables.items())),
        )

    def __getstate__(self):
        # The compiled model is closure-heavy and cheap to rebuild; workers
        # recompile rather than ship it across the process boundary.
        state = dict(self.__dict__)
        state["_compiled"] = None
        return state


class PredictionExecutor:
    """One compiled model bound to per-hardware-fingerprint executors."""

    def __init__(self, compiled: CompiledModel,
                 default_hardware: HardwareModel | None,
                 entry_proc: str):
        self.compiled = compiled
        self.default_hardware = default_hardware
        self.entry_proc = entry_proc
        self._executors: dict[tuple, Any] = {}

    def evaluate(self, scenario) -> PredictionResult:
        hardware = scenario.hardware or self.default_hardware
        if hardware is None:
            raise ExperimentError(
                f"scenario {scenario.label!r} has no hardware model and the "
                "sweep runner was constructed without a default")
        token = hardware_fingerprint(hardware)
        executor = self._executors.get(token)
        if executor is None:
            executor = self._executors[token] = self.compiled.executor(hardware)
        return executor.predict(scenario.variables, self.entry_proc)

    def collect_stats(self) -> CacheStats:
        stats = CacheStats()
        for executor in self._executors.values():
            stats = stats.merge(executor.stats)
        return stats


# ---------------------------------------------------------------------------
# The discrete-event simulation backend
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SimMeasurement:
    """Compact, picklable outcome of one simulated scenario.

    This is what the sweep layer and the disk cache carry instead of the
    full :class:`~repro.sweep3d.driver.Sweep3DRunResult` (whose rank
    summaries hold numpy arrays in numeric mode).  ``total_time`` mirrors
    :class:`~repro.core.evaluation.result.PredictionResult` so
    ``SweepOutcome.total_time`` works for both backends.
    """

    label: str
    machine_name: str
    px: int
    py: int
    elapsed_time: float
    seed_offset: int
    iterations: int = 0
    total_messages: int = 0
    total_bytes: float = 0.0
    compute_fraction: float = 0.0
    rank_finish_times: tuple = ()
    error_history: tuple = ()
    #: Multi-sample uncertainty block, filled only when the backend runs
    #: with ``samples > 0`` (class-level defaults keep old cached pickles
    #: readable).  ``elapsed_time`` stays the sample-0 value, bit-identical
    #: to the single-run path at the same seed.
    elapsed_samples: tuple = ()
    elapsed_mean: float | None = None
    elapsed_std: float | None = None
    elapsed_ci95: float | None = None
    #: Execution tier that produced ``elapsed_time``: ``"engine"``,
    #: ``"replay"`` or ``"steady"`` (empty for pre-tier cached pickles).
    execution_tier: str = ""
    #: Host wall-clock this evaluation spent per phase (zero for phases
    #: that did not run, and for pre-phase cached pickles).  ``capture_s``
    #: includes trace-cache lookups and periodic capture.
    capture_s: float = 0.0
    replay_s: float = 0.0
    steady_s: float = 0.0
    engine_s: float = 0.0

    @property
    def phase_seconds(self) -> dict[str, float]:
        """Non-zero per-phase host seconds, keyed by phase name."""
        pairs = (("capture", self.capture_s), ("replay", self.replay_s),
                 ("steady", self.steady_s), ("engine", self.engine_s))
        return {name: value for name, value in pairs if value}

    @property
    def n_samples(self) -> int:
        return len(self.elapsed_samples)

    @property
    def total_time(self) -> float:
        """Simulated wall-clock seconds (the paper's "Measurement" column)."""
        return self.elapsed_time

    @property
    def nranks(self) -> int:
        return self.px * self.py

    def describe(self) -> str:
        return (f"{self.label}: {self.elapsed_time:.6f} s simulated on "
                f"{self.machine_name} ({self.px}x{self.py}, "
                f"{self.total_messages} messages, "
                f"{self.compute_fraction * 100:.1f}% compute)")


def machine_fingerprint(machine) -> tuple:
    """A value-based identity for a simulated machine, used in cache keys.

    Covers everything that determines a simulated run time: the processor
    model, the topology/link models and the noise configuration.  The
    component models are frozen dataclasses, so their ``repr`` is a stable
    value representation; any change to the machine misses the disk cache
    instead of returning stale measurements.
    """
    return (
        machine.name,
        repr(machine.processor),
        machine.topology.describe(),
        repr(machine.topology.inter_node),
        repr(machine.topology.intra_node),
        machine.noise_seed,
        machine.compute_jitter,
        machine.network_jitter,
        machine.daemon_interval,
        machine.daemon_duration,
    )


#: Deck parameters a simulation scenario may override (integers).
_DECK_INT_KEYS = ("it", "jt", "kt", "mk", "mmi", "sn", "max_iterations")


class SimulationBackend:
    """Evaluates scenarios on the discrete-event SWEEP3D simulator.

    Scenario variables must contain ``px`` and ``py`` (the processor
    array); they may override the deck's ``it/jt/kt/mk/mmi/sn/
    max_iterations`` and may pin an explicit noise ``seed`` (otherwise one
    is derived from the scenario's identity, so results are independent of
    evaluation order and worker count).

    Parameters
    ----------
    machine:
        The simulated cluster (:class:`~repro.machines.machine.Machine`).
    deck:
        Standard deck name (``"validation"``, ``"asci-20m"``, ...) the
        scenarios are instantiated from.
    max_iterations:
        Default source-iteration count (overridable per scenario).
    numeric:
        Whether to perform the real flux arithmetic (small grids only).
    with_noise:
        Whether runs see the machine's OS/network noise model (the paper's
        "measurement"); ``False`` gives deterministic noise-free runs.
    execution:
        How each plan is executed: ``"auto"`` (default) picks the fastest
        bit-identical tier — the steady-state tier
        (:mod:`repro.simmpi.steady`) for noise-free modelled scenarios
        whose trace it accepts, trace replay (:mod:`repro.simmpi.trace`)
        for other modelled scenarios, and the reference engine for
        numeric ones; ``"engine"`` forces the per-event
        :class:`~repro.simmpi.engine.ClusterEngine` (the bit-for-bit
        reference); ``"replay"`` forces trace replay (numeric scenarios
        then raise :class:`~repro.errors.TraceError`); ``"steady"``
        attempts the steady-state tier, falling back loudly to replay
        when it refuses.  All modes produce bit-identical results, so
        the disk-cache fingerprint does not depend on it; the tier that
        actually ran is recorded per measurement
        (:attr:`SimMeasurement.execution_tier`).
    samples:
        When ``> 0``, every scenario is resolved ``samples`` times in one
        batched replay (:meth:`~repro.sweep3d.driver.SimulationPlan.run`
        with ``samples=``) and the measurement carries per-sample elapsed
        times plus mean/std/CI95 summary statistics.  Sample 0 uses the
        scenario's own seed, so ``elapsed_time`` is bit-identical to the
        ``samples=0`` run and the fingerprint only gains a component when
        sampling is on (old cache keys stay valid).  Requires a
        replay-capable execution mode (not ``"engine"``) and modelled
        (non-numeric) scenarios.
    trace_cache:
        Optional persistent trace cache
        (:class:`~repro.simmpi.tracecache.TraceDiskCache`, or a directory
        path coerced into one) shared by every simulation plan the
        backend builds, so compiled traces survive across processes.
    """

    name = "simulate"

    _EXECUTION_MODES = ("auto", "engine", "replay", "steady")

    def __init__(self, machine, deck: str = "validation",
                 max_iterations: int = 12,
                 numeric: bool = False,
                 charge_compute: bool = True,
                 convergence_collectives: bool = True,
                 with_noise: bool = True,
                 execution: str = "auto",
                 samples: int = 0,
                 trace_cache=None):
        if execution not in self._EXECUTION_MODES:
            raise ExperimentError(
                f"unknown simulation execution mode {execution!r}; expected "
                f"one of {list(self._EXECUTION_MODES)}")
        samples = int(samples)
        if samples < 0:
            raise ExperimentError("samples must be >= 0")
        if samples and execution in ("engine", "steady"):
            raise ExperimentError(
                "multi-sample evaluation is resolved by batched trace "
                f"replay and cannot use execution={execution!r}")
        if samples and numeric:
            raise ExperimentError(
                "multi-sample evaluation needs modelled (non-numeric) "
                "scenarios: numeric runs cannot be trace-compiled")
        self.machine = machine
        self.deck_name = deck
        self.max_iterations = max_iterations
        self.numeric = numeric
        self.charge_compute = charge_compute
        self.convergence_collectives = convergence_collectives
        self.with_noise = with_noise
        self.execution = execution
        self.samples = samples
        if trace_cache is not None and not hasattr(trace_cache, "get"):
            from repro.simmpi.tracecache import trace_cache_for

            trace_cache = trace_cache_for(trace_cache)
        #: Optional persistent :class:`~repro.simmpi.tracecache.
        #: TraceDiskCache` (or a path coerced into one) shared by every
        #: plan this backend builds — bit-identical results either way,
        #: so it is not part of the scenario fingerprint.
        self.trace_cache = trace_cache

    # -- scenario lowering ---------------------------------------------------

    def deck_for(self, scenario) -> tuple[Sweep3DInput, int, int]:
        """Instantiate the input deck (and processor array) of a scenario.

        A scenario may name its own standard deck via a ``deck`` variable;
        otherwise the backend's default applies.
        """
        variables = scenario.variables
        try:
            px = int(variables["px"])
            py = int(variables["py"])
        except KeyError as exc:
            raise ExperimentError(
                f"simulation scenario {scenario.label!r} must define 'px' and "
                "'py' variables") from exc
        deck_name = str(variables.get("deck", self.deck_name))
        overrides = {key: int(variables[key]) for key in _DECK_INT_KEYS
                     if key in variables}
        overrides.setdefault("max_iterations", self.max_iterations)
        deck = standard_deck(deck_name, px=px, py=py, **overrides)
        return deck, px, py

    def seed_offset_for(self, scenario, deck: Sweep3DInput,
                        px: int, py: int) -> int:
        """The noise-seed offset of one scenario (stable across workers)."""
        explicit = scenario.variables.get("seed")
        if explicit is not None:
            return int(explicit)
        return derive_seed("sweep3d-simulate", self.machine.name,
                           deck.it, deck.jt, deck.kt, deck.mk, deck.mmi,
                           deck.sn, deck.max_iterations, px, py)

    # -- Backend protocol ----------------------------------------------------

    def compile(self, scenario_space=None) -> "SimulationExecutor":
        return SimulationExecutor(self)

    def fingerprint(self, scenario) -> tuple:
        deck, px, py = self.deck_for(scenario)
        key = (
            self.name,
            machine_fingerprint(self.machine),
            (deck.it, deck.jt, deck.kt, deck.mk, deck.mmi, deck.sn,
             deck.epsi, deck.max_iterations, deck.sigma_t, deck.sigma_s,
             deck.fixed_source, deck.flux_fixup),
            px, py,
            self.seed_offset_for(scenario, deck, px, py),
            self.numeric, self.charge_compute, self.convergence_collectives,
            self.with_noise,
        )
        if self.samples:
            # Only sampled runs extend the key: samples=0 keeps every
            # pre-existing disk-cache entry addressable.
            key = key + (("samples", self.samples),)
        return key


class SimulationExecutor:
    """Reusable simulation plans plus a sweep-wide compute cost table."""

    def __init__(self, backend: SimulationBackend):
        self.backend = backend
        machine = backend.machine
        self.cost_table = (SweepCostTable(machine.processor)
                           if backend.charge_compute else None)
        self._plans: dict[tuple, Any] = {}
        self._evaluations = 0
        self._plan_builds = 0
        self._plan_reuses = 0

    def evaluate(self, scenario) -> SimMeasurement:
        backend = self.backend
        deck, px, py = backend.deck_for(scenario)
        key = (deck, px, py)
        plan = self._plans.get(key)
        if plan is None:
            self._plan_builds += 1
            plan = self._plans[key] = backend.machine.simulation_plan(
                deck, px, py,
                numeric=backend.numeric,
                charge_compute=backend.charge_compute,
                convergence_collectives=backend.convergence_collectives,
                cost_table=self.cost_table,
                trace_cache=getattr(backend, "trace_cache", None))
        else:
            self._plan_reuses += 1

        offset = backend.seed_offset_for(scenario, deck, px, py)
        noise = backend.machine.noise_model(offset) if backend.with_noise else None
        phases_before = plan.phases.snapshot()
        stats: dict[str, Any] = {}
        if backend.samples:
            sample_set = plan.run(noise=noise, mode=backend.execution,
                                  samples=backend.samples)
            # Sample 0 runs at the scenario's own seed: the headline
            # measurement is bit-identical to the samples=0 path.
            run = sample_set.sample(0)
            stats = {
                "elapsed_samples": tuple(float(value) for value
                                         in sample_set.elapsed_times),
                "elapsed_mean": sample_set.elapsed_mean,
                "elapsed_std": sample_set.elapsed_std,
                "elapsed_ci95": sample_set.elapsed_ci95,
            }
        else:
            run = plan.run(noise=noise, mode=backend.execution)
        stats["execution_tier"] = getattr(plan, "last_execution", "") or ""
        for name, value in plan.phases.since(phases_before).items():
            stats[f"{name}_s"] = value
        self._evaluations += 1
        return SimMeasurement(
            label=scenario.label,
            machine_name=backend.machine.name,
            px=px, py=py,
            elapsed_time=run.elapsed_time,
            seed_offset=offset,
            iterations=run.iterations,
            total_messages=run.total_messages,
            total_bytes=run.simulation.traffic.bytes,
            compute_fraction=run.compute_fraction(),
            rank_finish_times=tuple(r.finish_time for r in run.simulation.ranks),
            error_history=tuple(run.error_history),
            **stats,
        )

    @property
    def trace_replays(self) -> int:
        """Evaluations served by trace replay instead of the engine."""
        return sum(plan.replays for plan in self._plans.values())

    @property
    def steady_runs(self) -> int:
        """Evaluations served by the steady-state tier."""
        return sum(plan.steadies for plan in self._plans.values())

    def collect_stats(self) -> CacheStats:
        """Cache accounting mapped onto :class:`CacheStats`.

        ``subtask`` hits/misses count the compute cost table (each hit is a
        block/source/convergence charge priced from the memo instead of a
        freshly built operation mix; under trace replay the table is only
        consulted during the one pattern-capture pass per plan); ``flow``
        hits/misses count simulation plan reuse vs construction.
        """
        stats = CacheStats(predictions=self._evaluations,
                           flow_hits=self._plan_reuses,
                           flow_misses=self._plan_builds)
        if self.cost_table is not None:
            stats.subtask_hits = self.cost_table.hits
            stats.subtask_misses = self.cost_table.misses
        return stats


register_backend(PredictionBackend.name, PredictionBackend)
register_backend(SimulationBackend.name, SimulationBackend)


def simulation_grid(arrays, deck: str | None = None,
                    max_iterations: int | None = None,
                    seed: int | None = None):
    """Declare a (px, py) processor-array grid as simulation scenarios.

    ``arrays`` is an iterable of ``(px, py)`` pairs.  ``deck``,
    ``max_iterations`` and ``seed``, when given, become scenario variables
    the simulation backend honours per point (``deck`` selects the
    standard deck, overriding the backend default; a fixed ``seed`` makes
    every point share one noise stream offset — useful for controlled
    comparisons; by default each point derives its own).
    """
    from repro.experiments.sweep import Scenario, ScenarioSweep

    sweep = ScenarioSweep()
    for px, py in arrays:
        variables: dict[str, float | str] = {"px": px, "py": py}
        if deck is not None:
            variables["deck"] = deck
        if max_iterations is not None:
            variables["max_iterations"] = max_iterations
        if seed is not None:
            variables["seed"] = seed
        tags = {"px": px, "py": py, "pes": px * py}
        if deck is not None:
            tags["deck"] = deck
        sweep.add(Scenario(label=f"{px}x{py}", variables=variables, tags=tags))
    return sweep
