"""Blocking-factor study: the sensitivity of the sweep to ``mk`` and ``mmi``.

The paper fixes the k-plane blocking factor at ``mk = 10`` and the angle
blocking factor at ``mmi = 3`` for every experiment.  Those values embody
the classic wavefront trade-off:

* *small* blocks mean more pipeline stages — the pipeline fills quickly and
  the far corner starts sooner, but every stage pays the per-message
  latency and overhead again;
* *large* blocks amortise the message cost but idle the downstream
  processors for longer while the pipeline fills and drains.

A performance model is exactly the tool for exploring that trade-off
without running the machine, so this experiment uses the PACE model to
sweep the blocking factors for a given machine/processor-array
configuration and reports the predicted run times and the best setting.
It doubles as an ablation on the paper's choice of ``mk = 10``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.workload import SweepWorkload
from repro.errors import ExperimentError
from repro.experiments.sweep import Scenario, ScenarioSweep
from repro.machines.machine import Machine
from repro.machines.presets import get_machine
from repro.sweep3d.input import Sweep3DInput, standard_deck

#: k-plane blocking factors explored by default (divisors of the speculative
#: study's kt = 100, spanning both extremes).
DEFAULT_MK_VALUES: tuple[int, ...] = (1, 2, 5, 10, 20, 50, 100)

#: Angle blocking factors explored by default (the S6 octant has 6 angles).
DEFAULT_MMI_VALUES: tuple[int, ...] = (1, 2, 3, 6)


@dataclass(frozen=True)
class BlockingPoint:
    """Predicted run time for one (mk, mmi) combination."""

    mk: int
    mmi: int
    predicted_time: float
    blocks_per_iteration: int
    messages_per_processor: int


@dataclass
class BlockingStudyResult:
    """Outcome of a blocking-factor sweep."""

    machine_name: str
    px: int
    py: int
    cells_per_processor: tuple[int, int, int]
    points: list[BlockingPoint] = field(default_factory=list)

    def best(self) -> BlockingPoint:
        """The (mk, mmi) combination with the smallest predicted time."""
        if not self.points:
            raise ExperimentError("blocking study produced no points")
        return min(self.points, key=lambda p: p.predicted_time)

    def point(self, mk: int, mmi: int) -> BlockingPoint:
        for candidate in self.points:
            if candidate.mk == mk and candidate.mmi == mmi:
                return candidate
        raise ExperimentError(f"no blocking point for mk={mk}, mmi={mmi}")

    def paper_choice_penalty(self) -> float:
        """Relative slowdown of the paper's mk=10/mmi=3 versus the optimum.

        Returns e.g. ``0.05`` when the paper's choice is 5 % slower than the
        best combination explored (0 when it *is* the best).
        """
        paper = self.point(10, 3)
        best = self.best()
        if best.predicted_time == 0:
            return 0.0
        return paper.predicted_time / best.predicted_time - 1.0

    def describe(self) -> str:
        lines = [f"blocking-factor study on {self.machine_name} "
                 f"({self.px}x{self.py} processors, "
                 f"{'x'.join(str(c) for c in self.cells_per_processor)} cells/proc)",
                 f"{'mk':>4} {'mmi':>4} {'blocks/iter':>12} {'msgs/proc':>10} "
                 f"{'predicted (s)':>14}"]
        for point in sorted(self.points, key=lambda p: (p.mk, p.mmi)):
            lines.append(f"{point.mk:>4} {point.mmi:>4} "
                         f"{point.blocks_per_iteration:>12} "
                         f"{point.messages_per_processor:>10} "
                         f"{point.predicted_time:>14.3f}")
        best = self.best()
        lines.append(f"best: mk={best.mk}, mmi={best.mmi} "
                     f"({best.predicted_time:.3f} s); "
                     f"paper's mk=10/mmi=3 is {self.paper_choice_penalty() * 100:.1f}% "
                     "slower than the best explored setting")
        return "\n".join(lines)


def blocking_sweep(px: int, py: int, cells_per_processor: tuple[int, int, int],
                   mk_values: Sequence[int], mmi_values: Sequence[int],
                   max_iterations: int) -> ScenarioSweep:
    """Declare the (mk, mmi) grid for one machine/array configuration."""
    nx, ny, nz = cells_per_processor
    sweep = ScenarioSweep()
    for mk in mk_values:
        if mk < 1 or mk > nz:
            continue
        for mmi in mmi_values:
            deck = Sweep3DInput(it=nx * px, jt=ny * py, kt=nz, mk=mk, mmi=mmi,
                                sn=6, max_iterations=max_iterations,
                                label="blocking-study")
            workload = SweepWorkload(deck, px, py)
            sweep.add(Scenario(
                label=f"mk={mk} mmi={mmi}",
                variables=workload.model_variables(),
                tags={"mk": mk, "mmi": mmi, "deck": deck},
            ))
    return sweep


def _run_blocking_impl(machine: Machine | None = None,
                       px: int = 20,
                       py: int = 20,
                       cells_per_processor: tuple[int, int, int] = (5, 5, 100),
                       mk_values: Sequence[int] = DEFAULT_MK_VALUES,
                       mmi_values: Sequence[int] = DEFAULT_MMI_VALUES,
                       max_iterations: int = 12,
                       workers: int = 1,
                       context=None) -> BlockingStudyResult:
    """The direct implementation behind the ``blocking`` study."""
    machine = machine or get_machine("hypothetical-opteron-myrinet")
    nx, ny, nz = cells_per_processor
    base_deck = Sweep3DInput(it=nx * px, jt=ny * py, kt=nz, mk=10, mmi=3,
                             sn=6, max_iterations=max_iterations,
                             label="blocking-study")
    hardware = machine.hardware_model(base_deck, px, py)
    sweep = blocking_sweep(px, py, cells_per_processor, mk_values, mmi_values,
                           max_iterations)
    if not len(sweep):
        raise ExperimentError("no valid (mk, mmi) combinations were explored")

    from repro.experiments.study import ensure_context
    with ensure_context(context) as ctx:
        runner = ctx.prediction_runner(hardware=hardware, workers=workers)
        outcomes = runner.run(sweep)

    result = BlockingStudyResult(machine_name=machine.name, px=px, py=py,
                                 cells_per_processor=cells_per_processor)
    for outcome in outcomes:
        deck = outcome.tags["deck"]
        blocks = deck.blocks_per_iteration
        # Two receives and two sends per block for an interior processor.
        messages = blocks * max_iterations * 4
        result.points.append(BlockingPoint(
            mk=outcome.tags["mk"], mmi=outcome.tags["mmi"],
            predicted_time=outcome.total_time,
            blocks_per_iteration=blocks,
            messages_per_processor=messages))
    return result


def run_blocking_study(machine: Machine | str | None = None,
                       px: int = 20,
                       py: int = 20,
                       cells_per_processor: tuple[int, int, int] = (5, 5, 100),
                       mk_values: Sequence[int] = DEFAULT_MK_VALUES,
                       mmi_values: Sequence[int] = DEFAULT_MMI_VALUES,
                       max_iterations: int = 12,
                       workers: int = 1) -> BlockingStudyResult:
    """Sweep the blocking factors for one machine/array configuration.

    The default configuration is the paper's 20-million-cell speculative
    problem (5x5x100 cells per processor) on a 400-processor slice of the
    hypothetical machine: with so little work per block, the latency-vs-
    pipelining trade-off has a genuine interior optimum.  The validation
    problem (50^3 cells per processor) is so compute-heavy that ever finer
    blocking keeps winning — which the study also demonstrates when run
    with ``cells_per_processor=(50, 50, 50)``.

    Deprecated shim over the Study API (the ``"blocking"`` study): when
    the machine is given by preset name (or defaulted) the call is folded
    into a :class:`~repro.experiments.study.StudySpec`; an explicit
    :class:`Machine` instance runs directly, bit-identically.
    """
    if machine is None or isinstance(machine, str):
        from repro.experiments.study import build_spec, run_study
        spec = build_spec("blocking", machine=machine, workers=workers,
                          px=px, py=py,
                          cells_per_processor=cells_per_processor,
                          mk_values=tuple(mk_values),
                          mmi_values=tuple(mmi_values),
                          max_iterations=max_iterations)
        return run_study(spec).payload
    return _run_blocking_impl(machine=machine, px=px, py=py,
                              cells_per_processor=cells_per_processor,
                              mk_values=mk_values, mmi_values=mmi_values,
                              max_iterations=max_iterations, workers=workers)


def paper_default_deck(px: int, py: int) -> Sweep3DInput:
    """The paper's validation deck (mk=10, mmi=3) for a given array."""
    return standard_deck("validation", px=px, py=py)
