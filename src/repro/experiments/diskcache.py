"""Disk-backed sweep cache: persistent, cross-process scenario results.

The multiprocessing fan-out of :class:`~repro.experiments.sweep.SweepRunner`
used to rebuild every cache per worker, and nothing survived the process.
This module stores one file per evaluated scenario under a cache directory
so that

* a **warm second run** of the same sweep (same model/machine fingerprint,
  same scenario) is served from disk,
* **worker processes share one store**: whatever any worker evaluated is a
  hit for every other worker and for later runs.

Keys are the backend's scenario fingerprint — backend name + model/machine
and hardware fingerprints + the scenario's variables/seed — hashed to a
file name, so any change to the hardware model changes the key and misses
the cache instead of returning stale results (the same property the
in-memory compiled-executor caches have).

The concurrency and accounting discipline (atomic temp-file +
``os.replace`` writes, verified reads, lock-guarded hit/miss/store stats,
``prune`` bounding) lives in the shared :class:`repro.diskio.DirectoryStore`
base — the compiled-trace cache (:mod:`repro.simmpi.tracecache`) builds on
the same machinery with an npz codec.  This module only binds the pickle
codec and the sweep-result entry format.

Long-lived stores are bounded with :meth:`SweepDiskCache.prune`
(``max_entries`` / ``max_age_s`` eviction, oldest stores first), exposed
on the CLI as ``repro-sweep3d cache {stats,prune}``.

One cache object may also be shared by concurrent **in-process** readers
(the prediction service hits a single store from many coroutines and
worker threads): the hit/miss/store accounting is guarded by a lock, and
:meth:`SweepDiskCache.stats_snapshot` returns a consistent copy for
delta-based accounting.
"""

from __future__ import annotations

import pickle
from typing import Any

from repro.diskio import (DirectoryStore, DiskCacheStats, PruneResult,
                          fingerprint_digest)

__all__ = ["SweepDiskCache", "DiskCacheStats", "PruneResult",
           "fingerprint_digest"]

#: Format marker stored with every entry; bump to invalidate old caches.
_CACHE_VERSION = 1


class SweepDiskCache(DirectoryStore):
    """A directory of pickled scenario results keyed by fingerprint digest.

    Parameters
    ----------
    path:
        Cache directory; created on first use.  Multiple processes (the
        sweep runner's workers, or independent CLI invocations) may share
        one directory concurrently.
    """

    suffix = ".pkl"
    _decode_errors = (pickle.PickleError, EOFError, AttributeError,
                      ImportError)

    def _encode(self, key: tuple, value: Any) -> bytes:
        return pickle.dumps((_CACHE_VERSION, key, value),
                            protocol=pickle.HIGHEST_PROTOCOL)

    def _decode(self, data: bytes, key: tuple) -> Any:
        version, stored_key, result = pickle.loads(data)
        if version != _CACHE_VERSION or stored_key != key:
            # Format change or (astronomically unlikely) digest collision.
            raise ValueError("stale or foreign sweep-cache entry")
        return result
