"""Disk-backed sweep cache: persistent, cross-process scenario results.

The multiprocessing fan-out of :class:`~repro.experiments.sweep.SweepRunner`
used to rebuild every cache per worker, and nothing survived the process.
This module stores one file per evaluated scenario under a cache directory
so that

* a **warm second run** of the same sweep (same model/machine fingerprint,
  same scenario) is served from disk,
* **worker processes share one store**: whatever any worker evaluated is a
  hit for every other worker and for later runs.

Keys are the backend's scenario fingerprint — backend name + model/machine
and hardware fingerprints + the scenario's variables/seed — hashed to a
file name, so any change to the hardware model changes the key and misses
the cache instead of returning stale results (the same property the
in-memory compiled-executor caches have).

Writes are atomic (temp file + ``os.replace`` in the same directory), so
concurrent writers — including two workers storing the *same* key — can
never interleave partial files; readers either see a complete entry or
none.  Corrupt or unreadable entries are treated as misses and overwritten.

Long-lived stores are bounded with :meth:`SweepDiskCache.prune`
(``max_entries`` / ``max_age_s`` eviction, oldest stores first), exposed
on the CLI as ``repro-sweep3d cache {stats,prune}``.

One cache object may also be shared by concurrent **in-process** readers
(the prediction service hits a single store from many coroutines and
worker threads): the hit/miss/store accounting is guarded by a lock, and
:meth:`SweepDiskCache.stats_snapshot` returns a consistent copy for
delta-based accounting.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.errors import ExperimentError

#: Format marker stored with every entry; bump to invalidate old caches.
_CACHE_VERSION = 1


@dataclass
class DiskCacheStats:
    """Hit/miss/store accounting for one :class:`SweepDiskCache`."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    def merge(self, other: "DiskCacheStats") -> "DiskCacheStats":
        return DiskCacheStats(hits=self.hits + other.hits,
                              misses=self.misses + other.misses,
                              stores=self.stores + other.stores)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def describe(self) -> str:
        return (f"disk cache {self.hits} hit(s) / {self.misses} miss(es), "
                f"{self.stores} store(s)")


@dataclass(frozen=True)
class PruneResult:
    """Outcome of one :meth:`SweepDiskCache.prune` pass."""

    removed: int
    kept: int
    reclaimed_bytes: int

    def describe(self) -> str:
        return (f"pruned {self.removed} entr{'y' if self.removed == 1 else 'ies'}, "
                f"kept {self.kept}, reclaimed {self.reclaimed_bytes} bytes")


def fingerprint_digest(key: tuple) -> str:
    """Stable hex digest of a fingerprint tuple.

    The tuple is rendered with ``repr`` — every component the backends put
    in a fingerprint (strings, numbers, bools, nested tuples) has a stable,
    process-independent representation — and hashed with SHA-256.
    """
    return hashlib.sha256(repr(key).encode("utf-8")).hexdigest()


class SweepDiskCache:
    """A directory of pickled scenario results keyed by fingerprint digest.

    Parameters
    ----------
    path:
        Cache directory; created on first use.  Multiple processes (the
        sweep runner's workers, or independent CLI invocations) may share
        one directory concurrently.
    """

    def __init__(self, path: str | os.PathLike):
        self.path = Path(path)
        self.stats = DiskCacheStats()
        #: Guards the accounting: one cache object may serve many threads
        #: (the prediction service's worker pool), and ``stats.hits += 1``
        #: is a read-modify-write that would drop counts unguarded.
        self._stats_lock = threading.Lock()
        try:
            self.path.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise ExperimentError(
                f"cannot create sweep cache directory {self.path}: {exc}") from exc

    # ------------------------------------------------------------------

    def _entry_path(self, key: tuple) -> Path:
        return self.path / f"{fingerprint_digest(key)}.pkl"

    def get(self, key: tuple) -> Any | None:
        """The stored result for ``key``, or ``None`` (counted as a miss)."""
        entry = self._entry_path(key)
        try:
            with open(entry, "rb") as handle:
                version, stored_key, result = pickle.load(handle)
        except (OSError, pickle.PickleError, EOFError, ValueError,
                AttributeError, ImportError):
            with self._stats_lock:
                self.stats.misses += 1
            return None
        if version != _CACHE_VERSION or stored_key != key:
            # Format change or (astronomically unlikely) digest collision.
            with self._stats_lock:
                self.stats.misses += 1
            return None
        with self._stats_lock:
            self.stats.hits += 1
        return result

    def put(self, key: tuple, result: Any) -> None:
        """Store ``result`` under ``key`` atomically.

        The entry is written to a temporary file in the cache directory and
        moved into place with ``os.replace``, which is atomic on POSIX and
        Windows — concurrent writers of the same key simply race to an
        identical complete file, and readers never observe a partial one.
        """
        entry = self._entry_path(key)
        payload = pickle.dumps((_CACHE_VERSION, key, result),
                               protocol=pickle.HIGHEST_PROTOCOL)
        fd, tmp_name = tempfile.mkstemp(dir=self.path, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            os.replace(tmp_name, entry)
        except OSError:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        with self._stats_lock:
            self.stats.stores += 1

    # ------------------------------------------------------------------

    def entries(self) -> list[Path]:
        """Every entry file currently in the store."""
        return sorted(self.path.glob("*.pkl"))

    def __len__(self) -> int:
        return sum(1 for _ in self.path.glob("*.pkl"))

    def total_bytes(self) -> int:
        """Total on-disk size of every entry (bytes)."""
        total = 0
        for entry in self.path.glob("*.pkl"):
            try:
                total += entry.stat().st_size
            except OSError:
                pass
        return total

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for entry in self.path.glob("*.pkl"):
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def prune(self, max_entries: int | None = None,
              max_age_s: float | None = None,
              now: float | None = None) -> "PruneResult":
        """Evict stale and excess entries from a long-lived store.

        Parameters
        ----------
        max_entries:
            Keep at most this many entries, evicting the least recently
            *stored* first (entries are immutable, so the file mtime is
            the store time).
        max_age_s:
            Evict every entry stored more than this many seconds ago.
        now:
            Reference timestamp for ``max_age_s`` (defaults to the wall
            clock; injectable for tests).

        Entries that vanish mid-prune (a concurrent pruner or ``clear``)
        are skipped, not errors — the store stays safe under the same
        concurrent access the reads and atomic writes support.
        """
        if max_entries is not None and max_entries < 0:
            raise ExperimentError("prune: max_entries must be >= 0")
        if max_age_s is not None and max_age_s < 0:
            raise ExperimentError("prune: max_age_s must be >= 0")
        now = time.time() if now is None else now

        stamped: list[tuple[float, int, Path]] = []
        for entry in self.path.glob("*.pkl"):
            try:
                info = entry.stat()
            except OSError:
                continue
            stamped.append((info.st_mtime, info.st_size, entry))
        stamped.sort()  # oldest first

        doomed: dict[Path, int] = {}
        if max_age_s is not None:
            cutoff = now - max_age_s
            for mtime, size, entry in stamped:
                if mtime < cutoff:
                    doomed[entry] = size
        if max_entries is not None:
            survivors = [item for item in stamped if item[2] not in doomed]
            excess = len(survivors) - max_entries
            for mtime, size, entry in survivors[:max(0, excess)]:
                doomed[entry] = size

        removed = reclaimed = 0
        for entry, size in doomed.items():
            try:
                entry.unlink()
            except OSError:
                continue
            removed += 1
            reclaimed += size
        return PruneResult(removed=removed, kept=len(stamped) - removed,
                           reclaimed_bytes=reclaimed)

    def stats_snapshot(self) -> DiskCacheStats:
        """A consistent copy of the accounting (safe under concurrent use)."""
        with self._stats_lock:
            return DiskCacheStats(hits=self.stats.hits,
                                  misses=self.stats.misses,
                                  stores=self.stats.stores)

    def reset_stats(self) -> None:
        with self._stats_lock:
            self.stats = DiskCacheStats()

    def __getstate__(self):
        # Worker processes rebuild the cache from its path; the lock is
        # process-local and not picklable.
        state = dict(self.__dict__)
        del state["_stats_lock"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._stats_lock = threading.Lock()
