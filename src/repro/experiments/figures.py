"""Regeneration of the speculative scaling study (Figures 8 and 9)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import units
from repro.core.workload import SweepWorkload
from repro.errors import ExperimentError
from repro.experiments.paper_data import FIGURE8_STUDY, FIGURE9_STUDY, SpeculativeStudy
from repro.experiments.sweep import Scenario, ScenarioSweep
from repro.machines.machine import Machine
from repro.machines.presets import get_machine
from repro.simmpi.cart import Cart2D
from repro.sweep3d.input import Sweep3DInput


@dataclass
class FigureSeries:
    """One curve of a speculative figure (a single achieved-rate factor)."""

    rate_factor: float
    flop_rate_mflops: float
    processor_counts: list[int] = field(default_factory=list)
    times: list[float] = field(default_factory=list)

    def as_rows(self) -> list[tuple[int, float]]:
        return list(zip(self.processor_counts, self.times))

    @property
    def final_time(self) -> float:
        return self.times[-1] if self.times else float("nan")

    def is_monotone_nondecreasing(self, tolerance: float = 1e-9) -> bool:
        """Weak-scaled wavefront times grow with the processor count."""
        return all(b >= a - tolerance for a, b in zip(self.times, self.times[1:]))


@dataclass
class FigureResult:
    """A reproduced speculative figure: one series per achieved-rate factor."""

    study: SpeculativeStudy
    machine_name: str
    series: list[FigureSeries] = field(default_factory=list)

    def series_for(self, rate_factor: float) -> FigureSeries:
        for entry in self.series:
            if abs(entry.rate_factor - rate_factor) < 1e-9:
                return entry
        raise ExperimentError(
            f"{self.study.name} has no series for rate factor {rate_factor}")

    @property
    def actual(self) -> FigureSeries:
        """The series using the baseline ("actual") achieved rate."""
        return self.series_for(1.0)

    def speedup_from_upgrade(self, rate_factor: float) -> float:
        """Run-time ratio actual/upgraded at the largest processor count."""
        return self.actual.final_time / self.series_for(rate_factor).final_time


def _deck_for_processors(study: SpeculativeStudy, nranks: int) -> tuple[Sweep3DInput, int, int]:
    cart = Cart2D.for_size(nranks)
    nx, ny, nz = study.cells_per_processor
    deck = Sweep3DInput(it=nx * cart.px, jt=ny * cart.py, kt=nz,
                        mk=study.mk, mmi=study.mmi, sn=6, max_iterations=12,
                        label=study.name)
    return deck, cart.px, cart.py


def speculative_sweep(study: SpeculativeStudy, machine: Machine,
                      processor_counts: list[int],
                      rate_factors: list[float]) -> ScenarioSweep:
    """Declare the (rate factor x processor count) grid of one figure.

    One hardware model per rate factor (the communication parameters are
    shared across factors); every point carries its factor and rank count
    as tags so the runner's flat outcome list can be regrouped into series.
    """
    sweep = ScenarioSweep()
    reference_deck, px0, py0 = _deck_for_processors(study, processor_counts[0])
    for factor in rate_factors:
        rate = study.flop_rate_mflops * units.MFLOPS * factor
        hardware = machine.hardware_model(reference_deck, px0, py0,
                                          flop_rate_override=rate)
        for nranks in processor_counts:
            deck, px, py = _deck_for_processors(study, nranks)
            workload = SweepWorkload(deck, px, py)
            sweep.add(Scenario(
                label=f"{study.name} x{factor:g} @{nranks}",
                variables=workload.model_variables(),
                hardware=hardware,
                tags={"rate_factor": factor, "nranks": nranks,
                      "flop_rate_mflops": rate / units.MFLOPS},
            ))
    return sweep


def _run_speculative_figure_impl(study: SpeculativeStudy,
                                 machine: Machine | None = None,
                                 processor_counts: list[int] | None = None,
                                 rate_factors: list[float] | None = None,
                                 workers: int = 1,
                                 context=None) -> FigureResult:
    """The direct implementation behind the ``figure8``/``figure9`` studies."""
    machine = machine or get_machine("hypothetical-opteron-myrinet")
    counts = list(processor_counts if processor_counts is not None
                  else study.processor_counts)
    factors = list(rate_factors if rate_factors is not None else study.rate_factors)
    if not counts or not factors:
        raise ExperimentError("speculative figure needs processor counts and rate factors")

    from repro.experiments.study import ensure_context
    with ensure_context(context) as ctx:
        runner = ctx.prediction_runner(workers=workers)
        outcomes = runner.run(speculative_sweep(study, machine, counts, factors))

    result = FigureResult(study=study, machine_name=machine.name)
    series_by_factor: dict[float, FigureSeries] = {}
    for outcome in outcomes:
        factor = outcome.tags["rate_factor"]
        series = series_by_factor.get(factor)
        if series is None:
            series = FigureSeries(
                rate_factor=factor,
                flop_rate_mflops=outcome.tags["flop_rate_mflops"])
            series_by_factor[factor] = series
            result.series.append(series)
        series.processor_counts.append(outcome.tags["nranks"])
        series.times.append(outcome.total_time)
    return result


def run_speculative_figure(study: SpeculativeStudy,
                           machine: Machine | str | None = None,
                           processor_counts: list[int] | None = None,
                           rate_factors: list[float] | None = None,
                           workers: int = 1) -> FigureResult:
    """Reproduce one speculative figure.

    The hypothetical machine's HMCL object uses the fixed achieved rate of
    the study (340 MFLOPS in the paper) scaled by each rate factor, with the
    Myrinet 2000 communication model — the model re-use the paper
    demonstrates in Section 6.  The whole figure is one declared scenario
    grid evaluated by the batch sweep runner.

    Named studies with a machine given by preset name (or defaulted) route
    through the Study API registry; an explicit :class:`Machine` instance
    or an unregistered :class:`SpeculativeStudy` runs directly — both paths
    produce bit-identical figures.
    """
    from repro.experiments.study import SPECULATIVE_STUDIES, build_spec, run_study
    if SPECULATIVE_STUDIES.get(study.name) == study and \
            (machine is None or isinstance(machine, str)):
        spec = build_spec(study.name, machine=machine, workers=workers,
                          processor_counts=processor_counts,
                          rate_factors=rate_factors)
        return run_study(spec).payload
    if isinstance(machine, str):
        machine = get_machine(machine)
    return _run_speculative_figure_impl(study, machine=machine,
                                        processor_counts=processor_counts,
                                        rate_factors=rate_factors,
                                        workers=workers)


def figure8(machine: Machine | str | None = None,
            processor_counts: list[int] | None = None,
            rate_factors: list[float] | None = None,
            workers: int = 1) -> FigureResult:
    """Reproduce Figure 8 (the twenty-million-cell problem).

    Deprecated shim over the Study API: prefer
    ``repro.api.run_study("figure8")``.
    """
    return run_speculative_figure(FIGURE8_STUDY, machine=machine,
                                  processor_counts=processor_counts,
                                  rate_factors=rate_factors, workers=workers)


def figure9(machine: Machine | str | None = None,
            processor_counts: list[int] | None = None,
            rate_factors: list[float] | None = None,
            workers: int = 1) -> FigureResult:
    """Reproduce Figure 9 (the one-billion-cell problem).

    Deprecated shim over the Study API: prefer
    ``repro.api.run_study("figure9")``.
    """
    return run_speculative_figure(FIGURE9_STUDY, machine=machine,
                                  processor_counts=processor_counts,
                                  rate_factors=rate_factors, workers=workers)
