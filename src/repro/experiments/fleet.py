"""Elastic shard fleet: a work-stealing coordinator with fault-tolerant leases.

The static :class:`~repro.experiments.sharding.ShardPlanner` splits a
study's grid at plan time and trusts every machine to finish its slice;
a dead shard is re-run by hand and the merge assumes one filesystem.
This module turns the same deterministic decomposition into an **elastic
fleet**: a :class:`FleetCoordinator` enumerates a spec's grid into
one-unit shard specs (:func:`~repro.experiments.sharding.plan_unit_shards`
— each unit is the finest lease the planner can justify), and
:class:`FleetWorker` processes claim, execute and publish units over a
small shared-directory work queue, with results and warm cache entries
flowing through an :class:`~repro.experiments.remotestore.ArtifactStore`
instead of a shared filesystem.

The fault-tolerance contract, enforced by generation-numbered leases:

* **claim** — a worker claims unit ``k`` at generation ``g`` by
  exclusively creating ``leases/unit-k.g<g>.json`` (``O_CREAT|O_EXCL``),
  so two workers racing for the same unit — including for a freshly
  expired lease — resolve to exactly one winner at the filesystem.
* **heartbeat** — a background thread refreshes every held lease's
  deadline; a worker that crashes or hangs simply stops refreshing.
* **expiry / reassignment** — the coordinator's controller loop bumps
  the unit's generation when a lease deadline passes and returns the
  unit to the pool; the late worker's lease file and any result it
  still publishes carry the stale generation and are discarded (results
  are deterministic, so a discarded zombie result is byte-identical to
  the accepted one — the tests prove it, the protocol never relies on it).
* **work stealing** — near the end of a run, when the open pool is dry
  but idle workers exist, the coordinator revokes leases a straggler
  holds beyond its actively-executing unit, so prefetched units never
  strand behind one slow machine.

The hard invariant is **bit-identity**: whatever the dynamic placement,
lease churn or kill schedule, the merged rows equal the static plan's
merge and the unsharded reference —
:func:`~repro.experiments.sharding.merge_study_results` consumes the
coordinator's unit results unchanged and enforces disjoint, complete
coverage. CI proves the invariant on every commit with a chaos job that
SIGKILLs a worker mid-run.

Shared-directory layout (the work queue)::

    <fleet_dir>/
        fleet.json                  # run descriptor (written last: ready)
        units/unit-0003.json        # spec + generation + state (coordinator-owned)
        leases/unit-0003.g0.json    # live lease (worker-owned, O_EXCL-created)
        results/unit-0003.g0.json   # publication marker per generation
        workers/<id>.json           # registration + heartbeat deadline
        events.jsonl                # append-only event log (post-mortems)
        done.json                   # terminal marker (workers exit on it)

In-process fleets (tests, benchmarks, the service's job manager) run the
same protocol with worker threads and a
:class:`~repro.experiments.remotestore.MemoryStore` via
:func:`run_local_fleet`.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Sequence

from repro.errors import FleetError, StoreError
from repro.experiments.artifacts import load_study_results, write_study_artifacts
from repro.experiments.remotestore import (
    ArtifactStore,
    pull_cache_entries,
    push_cache_entries,
    store_from_url,
)
from repro.experiments.sharding import (
    group_by_parent,
    merge_study_results,
    plan_unit_shards,
    study_order_key,
)
from repro.experiments.study import (
    StudyContext,
    StudyResult,
    StudyRunner,
    StudySpec,
    build_spec,
)

#: Protocol version stamped into ``fleet.json``.
FLEET_VERSION = 1

_LEASE_NAME = re.compile(r"^unit-(\d+)\.g(\d+)\.json$")


# ---------------------------------------------------------------------------
# Small shared-file primitives
# ---------------------------------------------------------------------------


def _write_json_atomic(path: Path, obj: Any) -> None:
    """Write ``obj`` as JSON via temp file + ``os.replace`` (atomic)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(obj, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp_name, path)
    except OSError:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def _read_json(path: Path) -> dict | None:
    """Read a protocol file; ``None`` when absent or mid-replace."""
    try:
        return json.loads(path.read_text())
    except (OSError, ValueError):
        return None


class FleetEventLog:
    """Append-only JSON-lines event log shared by coordinator and workers.

    Writes are single ``O_APPEND`` syscalls well under ``PIPE_BUF``, so
    concurrent writers from several processes never interleave a line.
    """

    def __init__(self, path: str | Path, clock: Callable[[], float] = time.time):
        self.path = Path(path)
        self._clock = clock

    def append(self, event: str, **fields: Any) -> None:
        record = {"ts": round(self._clock(), 3), "event": event, **fields}
        line = json.dumps(record, sort_keys=True) + "\n"
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fd = os.open(self.path, os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644)
            try:
                os.write(fd, line.encode("utf-8"))
            finally:
                os.close(fd)
        except OSError:
            pass  # the log is diagnostic; losing a line never fails a run

    def events(self) -> list[dict]:
        """Every decodable event in append order."""
        try:
            text = self.path.read_text()
        except OSError:
            return []
        events = []
        for line in text.splitlines():
            try:
                events.append(json.loads(line))
            except ValueError:
                continue
        return events


# ---------------------------------------------------------------------------
# Directory paths (one place, both sides of the protocol)
# ---------------------------------------------------------------------------


class _FleetPaths:
    def __init__(self, fleet_dir: str | Path):
        self.root = Path(fleet_dir)
        self.descriptor = self.root / "fleet.json"
        self.done = self.root / "done.json"
        self.units = self.root / "units"
        self.leases = self.root / "leases"
        self.results = self.root / "results"
        self.workers = self.root / "workers"
        self.events = self.root / "events.jsonl"

    def unit(self, index: int) -> Path:
        return self.units / f"unit-{index:04d}.json"

    def lease(self, index: int, generation: int) -> Path:
        return self.leases / f"unit-{index:04d}.g{generation}.json"

    def result(self, index: int, generation: int) -> Path:
        return self.results / f"unit-{index:04d}.g{generation}.json"

    def worker(self, worker_id: str) -> Path:
        return self.workers / f"{worker_id}.json"


def _unit_prefix(parent_hash: str, index: int, generation: int) -> str:
    return f"runs/{parent_hash[:16]}/unit-{index:04d}.g{generation}"


# ---------------------------------------------------------------------------
# The coordinator
# ---------------------------------------------------------------------------


@dataclass
class FleetOutcome:
    """What one coordinated run produced."""

    status: str  # "done" | "failed"
    reason: str = ""
    results: list[StudyResult] = field(default_factory=list)
    out_dir: Path | None = None
    unit_count: int = 0
    reassignments: int = 0
    steals: int = 0
    zombies: int = 0

    def describe(self) -> str:
        extra = ""
        if self.reassignments or self.steals or self.zombies:
            extra = (f" ({self.reassignments} reassignment(s), "
                     f"{self.steals} steal(s), "
                     f"{self.zombies} zombie result(s) discarded)")
        return (f"fleet {self.status}: {len(self.results)} merged stud(y/ies) "
                f"from {self.unit_count} unit(s){extra}")


class FleetCoordinator:
    """Decomposes study specs into leased units and supervises the run.

    Parameters
    ----------
    fleet_dir:
        The shared work-queue directory (created; must not already hold
        a fleet).  Workers on other machines reach it via any shared
        medium — it is tiny control state, the heavy artifacts flow
        through ``store``.
    store:
        The :class:`~repro.experiments.remotestore.ArtifactStore` unit
        results (and warm cache entries) travel through.  Defaults to a
        ``LocalDirStore`` under ``<fleet_dir>/store``.
    lease_ttl_s:
        How long a lease survives without a heartbeat before the unit is
        reassigned.
    poll_s:
        Controller-loop cadence.
    steal:
        Whether to revoke prefetched units from stragglers once the open
        pool is dry and idle workers wait.
    clock:
        Injectable wall-clock (tests).
    """

    def __init__(self, fleet_dir: str | Path,
                 store: ArtifactStore | None = None,
                 lease_ttl_s: float = 30.0,
                 poll_s: float = 0.2,
                 steal: bool = True,
                 clock: Callable[[], float] = time.time):
        if lease_ttl_s <= 0:
            raise FleetError("lease_ttl_s must be > 0")
        self.paths = _FleetPaths(fleet_dir)
        if store is None:
            from repro.experiments.remotestore import LocalDirStore
            store = LocalDirStore(self.paths.root / "store")
        self.store = store
        self.lease_ttl_s = float(lease_ttl_s)
        self.poll_s = float(poll_s)
        self.steal = steal
        self._clock = clock
        self.log = FleetEventLog(self.paths.events, clock=clock)
        #: index -> mutable unit record (the files mirror this table).
        self._units: dict[int, dict] = {}
        self._reassignments = 0
        self._steals = 0
        self._zombies = 0

    # -- enqueue -------------------------------------------------------------

    def enqueue(self, specs: Sequence[StudySpec | str],
                smoke: bool = False) -> int:
        """Decompose ``specs`` into one-unit leases and open the queue.

        The descriptor (``fleet.json``) is written **after** every unit
        file, so a worker that sees the descriptor sees the whole queue.
        Returns the number of units enqueued.
        """
        if self.paths.descriptor.exists():
            raise FleetError(
                f"fleet directory {self.paths.root} already holds a fleet; "
                "start each run in a fresh directory")
        resolved: list[StudySpec] = []
        for spec in specs:
            spec = build_spec(spec) if isinstance(spec, str) else spec
            resolved.append(spec.smoke() if smoke else spec)
        if not resolved:
            raise FleetError("nothing to enqueue: no study specs given")
        hashes = [spec.spec_hash() for spec in resolved]
        if len(set(hashes)) != len(hashes):
            raise FleetError("cannot enqueue the same spec twice in one fleet")

        for directory in (self.paths.units, self.paths.leases,
                          self.paths.results, self.paths.workers):
            directory.mkdir(parents=True, exist_ok=True)
        index = 0
        studies = []
        for spec in resolved:
            plan = plan_unit_shards(spec)
            unit_indices = []
            for assignment in plan.shards:
                record = {
                    "index": index,
                    "study": spec.study,
                    "parent": plan.parent_hash,
                    "spec": assignment.spec.to_dict(),
                    "unit": _json_unit(assignment.units[0]),
                    "cost": assignment.estimated_cost,
                    "generation": 0,
                    "state": "pending",
                }
                _write_json_atomic(self.paths.unit(index), record)
                self._units[index] = record
                unit_indices.append(index)
                index += 1
            studies.append({"study": spec.study, "parent": plan.parent_hash,
                            "units": unit_indices})
            self.log.append("enqueued", study=spec.study,
                            parent=plan.parent_hash[:12],
                            units=len(unit_indices))
        descriptor = {
            "version": FLEET_VERSION,
            "lease_ttl_s": self.lease_ttl_s,
            "unit_count": index,
            "studies": studies,
            "store_url": _store_url(self.store),
            "created": self._clock(),
        }
        _write_json_atomic(self.paths.descriptor, descriptor)
        self.log.append("fleet-ready", units=index, studies=len(studies))
        return index

    # -- controller loop -----------------------------------------------------

    def serve(self, timeout_s: float | None = None,
              out_dir: str | Path | None = None) -> FleetOutcome:
        """Supervise the run to completion (or timeout) and merge.

        Loops :meth:`poll_once` until every unit is done, then pulls the
        unit results from the store, merges each study family
        bit-identically (:func:`merge_study_results`) and — when
        ``out_dir`` is given — writes the standard artifact layout
        there.  Writes the ``done.json`` terminal marker either way, so
        background workers exit.
        """
        if not self._units:
            self._load_state()
        started = self._clock()
        while True:
            self.poll_once()
            if all(unit["state"] == "done" for unit in self._units.values()):
                break
            if timeout_s is not None and self._clock() - started > timeout_s:
                outcome = FleetOutcome(
                    status="failed",
                    reason=f"timed out after {timeout_s:g} s with "
                           f"{self._open_count()} unit(s) unfinished",
                    unit_count=len(self._units),
                    reassignments=self._reassignments, steals=self._steals,
                    zombies=self._zombies)
                self._finish(outcome)
                return outcome
            time.sleep(self.poll_s)
        try:
            results = self._merge()
        except Exception as exc:
            outcome = FleetOutcome(status="failed",
                                   reason=f"merge failed: {exc}",
                                   unit_count=len(self._units),
                                   reassignments=self._reassignments,
                                   steals=self._steals, zombies=self._zombies)
            self._finish(outcome)
            raise
        outcome = FleetOutcome(status="done", results=results,
                               unit_count=len(self._units),
                               reassignments=self._reassignments,
                               steals=self._steals, zombies=self._zombies)
        if out_dir is not None:
            outcome.out_dir = Path(out_dir)
            write_study_artifacts(results, outcome.out_dir)
        self._finish(outcome)
        return outcome

    def poll_once(self) -> None:
        """One controller pass: expire, steal, collect."""
        now = self._clock()
        leases = self._live_leases(now)
        self._collect_results(leases)
        leases = {key: value for key, value in leases.items()
                  if self._units[key[0]]["state"] != "done"}
        if self.steal:
            self._steal_from_stragglers(leases, now)

    # -- controller internals --------------------------------------------

    def _live_leases(self, now: float) -> dict[tuple[int, int], dict]:
        """Scan lease files; expire the stale, drop the zombie.

        Returns the surviving ``(unit, generation) -> lease`` map, every
        one at its unit's current generation with an unexpired deadline.
        """
        live: dict[tuple[int, int], dict] = {}
        try:
            names = os.listdir(self.paths.leases)
        except OSError:
            return live
        for name in sorted(names):
            match = _LEASE_NAME.match(name)
            if not match:
                continue
            index, generation = int(match.group(1)), int(match.group(2))
            path = self.paths.leases / name
            unit = self._units.get(index)
            if unit is None:
                continue
            if unit["state"] == "done" or generation != unit["generation"]:
                # A finished unit's leftover, or a zombie heartbeat's
                # recreation of a lease the fleet already moved past.
                _unlink_quiet(path)
                continue
            lease = _read_json(path)
            if lease is None:
                continue  # mid-write; next poll sees it
            if lease.get("deadline", 0) < now:
                self.log.append("lease-expired", unit=index,
                                generation=generation,
                                worker=lease.get("worker"))
                self._bump_generation(unit)
                _unlink_quiet(path)
                continue
            live[(index, generation)] = lease
        return live

    def _bump_generation(self, unit: dict) -> None:
        unit["generation"] += 1
        _write_json_atomic(self.paths.unit(unit["index"]), unit)
        self._reassignments += 1
        self.log.append("reassigned", unit=unit["index"],
                        generation=unit["generation"])

    def _collect_results(self, leases: dict[tuple[int, int], dict]) -> None:
        try:
            names = os.listdir(self.paths.results)
        except OSError:
            return
        for name in sorted(names):
            match = _LEASE_NAME.match(name)
            if not match:
                continue
            index, generation = int(match.group(1)), int(match.group(2))
            path = self.paths.results / name
            unit = self._units.get(index)
            if unit is None:
                continue
            marker = _read_json(path)
            if marker is None:
                continue
            if unit["state"] == "done" or generation != unit["generation"]:
                # Deterministic execution makes the discarded bytes
                # identical to the accepted ones; discarding is still the
                # rule — exactly one generation owns each unit's result.
                self._zombies += 1
                self.log.append("zombie-result-discarded", unit=index,
                                generation=generation,
                                worker=marker.get("worker"))
                _unlink_quiet(path)
                continue
            unit["state"] = "done"
            unit["result"] = {"worker": marker.get("worker"),
                              "generation": generation,
                              "prefix": marker.get("prefix"),
                              "elapsed_s": marker.get("elapsed_s")}
            _write_json_atomic(self.paths.unit(index), unit)
            _unlink_quiet(path)
            _unlink_quiet(self.paths.lease(index, generation))
            leases.pop((index, generation), None)
            self.log.append("result-accepted", unit=index,
                            generation=generation,
                            worker=marker.get("worker"))

    def _steal_from_stragglers(self, leases: dict[tuple[int, int], dict],
                               now: float) -> None:
        """Revoke prefetched (not actively executing) units once the open
        pool is dry and registered workers sit idle."""
        open_units = [unit for unit in self._units.values()
                      if unit["state"] == "pending"
                      and (unit["index"], unit["generation"]) not in leases]
        if open_units or not leases:
            return
        registrations = self._registrations(now)
        busy = {lease.get("worker") for lease in leases.values()}
        idle = [worker for worker in registrations if worker not in busy]
        if not idle:
            return
        grace = self.lease_ttl_s / 4.0
        stealable: list[tuple[int, tuple[int, int], dict]] = []
        held: dict[str, int] = {}
        for key, lease in leases.items():
            held[lease.get("worker", "")] = held.get(lease.get("worker", ""), 0) + 1
        for key, lease in leases.items():
            worker = lease.get("worker", "")
            active = registrations.get(worker, {}).get("active_unit")
            if key[0] == active:
                continue  # never steal the unit a worker is executing
            if now - lease.get("acquired", now) < grace:
                continue  # too fresh: the worker may be about to start it
            if self.paths.result(*key).exists():
                continue  # already published; collection accepts it next pass
            stealable.append((held[worker], key, lease))
        stealable.sort(key=lambda item: (-item[0], item[1]))
        for _, (index, generation), lease in stealable[:len(idle)]:
            self._steals += 1
            self.log.append("steal", unit=index, generation=generation,
                            worker=lease.get("worker"))
            self._bump_generation(self._units[index])
            _unlink_quiet(self.paths.lease(index, generation))
            leases.pop((index, generation), None)

    def _registrations(self, now: float) -> dict[str, dict]:
        alive: dict[str, dict] = {}
        try:
            names = os.listdir(self.paths.workers)
        except OSError:
            return alive
        for name in names:
            if not name.endswith(".json"):
                continue
            record = _read_json(self.paths.workers / name)
            if record and record.get("deadline", 0) >= now:
                alive[record.get("worker", name[:-5])] = record
        return alive

    # -- completion ----------------------------------------------------------

    def _merge(self) -> list[StudyResult]:
        """Pull every unit's artifacts and merge each family bit-identically."""
        collected: list[StudyResult] = []
        with tempfile.TemporaryDirectory(prefix="fleet-merge-") as scratch:
            for index in sorted(self._units):
                unit = self._units[index]
                prefix = (unit.get("result") or {}).get("prefix")
                if not prefix:
                    raise FleetError(
                        f"unit {index} is marked done but has no result "
                        "prefix; the queue state was tampered with")
                target = Path(scratch) / f"unit-{index:04d}"
                self.store.pull_dir(prefix, target)
                results = load_study_results(target)
                if len(results) != 1:
                    raise FleetError(
                        f"unit {index} artifact dir holds {len(results)} "
                        "result(s); expected exactly one")
                collected.append(results[0])
        families, plain = group_by_parent(collected)
        merged = [merge_study_results(family) for family in families.values()]
        merged.extend(plain)
        merged.sort(key=study_order_key)
        for result in merged:
            self.log.append("merged", study=result.spec.study,
                            rows=len(result.rows))
        return merged

    def _finish(self, outcome: FleetOutcome) -> None:
        _write_json_atomic(self.paths.done, {
            "status": outcome.status,
            "reason": outcome.reason,
            "units": outcome.unit_count,
            "reassignments": outcome.reassignments,
            "steals": outcome.steals,
            "zombies": outcome.zombies,
        })
        self.log.append(outcome.status, reason=outcome.reason)

    # -- state helpers ---------------------------------------------------

    def _open_count(self) -> int:
        return sum(1 for unit in self._units.values()
                   if unit["state"] != "done")

    def _load_state(self) -> None:
        descriptor = _read_json(self.paths.descriptor)
        if descriptor is None:
            raise FleetError(
                f"no fleet at {self.paths.root}; enqueue() first")
        for index in range(descriptor.get("unit_count", 0)):
            record = _read_json(self.paths.unit(index))
            if record is None:
                raise FleetError(f"fleet unit file {index} is missing")
            self._units[index] = record


def _json_unit(value: Any) -> Any:
    """A unit axis value as JSON-safe data (tuples -> lists)."""
    if isinstance(value, tuple):
        return [_json_unit(item) for item in value]
    return value


def _store_url(store: ArtifactStore) -> str | None:
    from repro.experiments.remotestore import LocalDirStore
    if isinstance(store, LocalDirStore):
        return f"file://{store.root}"
    return None  # in-memory stores are reachable in-process only


def _unlink_quiet(path: Path) -> None:
    try:
        path.unlink()
    except OSError:
        pass


# ---------------------------------------------------------------------------
# The worker
# ---------------------------------------------------------------------------


class _SimulatedDeath(Exception):
    """Raised by a chaos hook: the worker vanishes without cleanup."""


#: Sentinel distinguishing "no cache rebinding" from "previous cache None".
_UNSET = object()


@dataclass(frozen=True)
class _ClaimedUnit:
    index: int
    generation: int
    record: dict

    @property
    def spec(self) -> StudySpec:
        return StudySpec.from_dict(self.record["spec"])


class _Heartbeat(threading.Thread):
    """Refreshes held leases and the worker registration periodically."""

    def __init__(self, worker: "FleetWorker", interval_s: float):
        super().__init__(name=f"fleet-heartbeat-{worker.worker_id}",
                         daemon=True)
        self._worker = worker
        self._interval = interval_s
        self._stop = threading.Event()
        self._dead = False

    def run(self) -> None:
        while not self._stop.wait(self._interval):
            if self._dead:
                continue
            self._worker._refresh_leases()
            self._worker._register()

    def halt(self, *, dead: bool = False) -> None:
        """Stop refreshing; ``dead`` simulates a crash (no final beat)."""
        self._dead = self._dead or dead
        self._stop.set()


class FleetWorker:
    """Claims, executes and publishes fleet units until the run ends.

    Parameters
    ----------
    fleet_dir:
        The coordinator's shared queue directory.
    store:
        Artifact store override; defaults to the queue descriptor's
        ``store_url`` (required for cross-process fleets).
    worker_id:
        Stable identity in leases/registrations (default: host + pid).
    cache_dir:
        Local :class:`SweepDiskCache` directory.  With a store attached
        the worker pulls warm entries before its first unit and pushes
        fresh ones after each, so machines warm-start from each other.
    prefetch:
        Units claimed per scan (>1 amortises claim latency; the
        coordinator steals unstarted prefetched units back from
        stragglers).
    throttle_s:
        Pause before executing each unit while heartbeats continue —
        a chaos/benchmark aid to simulate a slow machine.
    failure_hook:
        Optional chaos hook called before each unit's execution; return
        ``True`` to simulate sudden worker death (heartbeats stop, held
        leases are abandoned un-released).
    context:
        A shared :class:`StudyContext`; by default the worker owns one
        (and closes it when the loop ends).
    """

    def __init__(self, fleet_dir: str | Path,
                 store: ArtifactStore | None = None,
                 worker_id: str | None = None,
                 cache_dir: str | None = None,
                 poll_s: float = 0.2,
                 prefetch: int = 1,
                 throttle_s: float = 0.0,
                 sync_cache: bool = True,
                 failure_hook: Callable[[int], bool] | None = None,
                 context: StudyContext | None = None,
                 clock: Callable[[], float] = time.time):
        if prefetch < 1:
            raise FleetError("prefetch must be >= 1")
        self.paths = _FleetPaths(fleet_dir)
        self.worker_id = worker_id or f"{os.uname().nodename}-{os.getpid()}"
        self.cache_dir = cache_dir
        self.poll_s = float(poll_s)
        self.prefetch = int(prefetch)
        self.throttle_s = float(throttle_s)
        self.sync_cache = sync_cache
        self._failure_hook = failure_hook
        self._clock = clock
        self._store = store
        self._context = context
        self._owns_context = context is None
        self.log = FleetEventLog(self.paths.events, clock=clock)
        self.lease_ttl_s = 30.0
        #: (index, generation) -> lease path, guarded for the heartbeat.
        self._held: dict[tuple[int, int], Path] = {}
        #: Published-but-uncollected leases: the coordinator, not the
        #: worker, removes these on acceptance (closes the window where a
        #: released lease lets a peer re-claim the same generation).
        self._published: set[tuple[int, int]] = set()
        self._held_lock = threading.Lock()
        self._active_unit: int | None = None
        self._heartbeat: _Heartbeat | None = None
        self._stop = threading.Event()
        #: Units known finished (never re-read) and cached unit specs.
        self._done_units: set[int] = set()
        self._unit_cache: dict[int, dict] = {}
        self.completed = 0
        self.died = False

    # -- lifecycle -----------------------------------------------------------

    def stop(self) -> None:
        """Ask the run loop to exit after the current unit."""
        self._stop.set()

    def run(self, max_units: int | None = None,
            wait_timeout_s: float = 120.0) -> int:
        """Work the queue until the fleet finishes; returns units completed.

        Waits up to ``wait_timeout_s`` for the queue descriptor to
        appear (workers may start before ``fleet serve``), then claims
        and executes units until the coordinator writes the terminal
        marker, ``max_units`` is reached, or :meth:`stop` is called.
        """
        descriptor = self._await_descriptor(wait_timeout_s)
        if descriptor is None:
            return 0
        self.lease_ttl_s = float(descriptor.get("lease_ttl_s", 30.0))
        if self._store is None:
            url = descriptor.get("store_url")
            if not url:
                raise FleetError(
                    "the fleet descriptor names no store URL; pass a store "
                    "to this worker explicitly")
            self._store = store_from_url(url)
        unit_count = int(descriptor.get("unit_count", 0))
        if self._context is None:
            self._context = StudyContext()
        restore_cache = _UNSET
        if self.cache_dir is not None:
            restore_cache = self._context.cache
            self._context.cache = self._context.cache_for(self.cache_dir)
        self._register()
        self.log.append("worker-registered", worker=self.worker_id)
        if self.sync_cache and self.cache_dir is not None:
            pulled = pull_cache_entries(self._store, self._local_cache())
            if pulled:
                self.log.append("cache-pulled", worker=self.worker_id,
                                entries=pulled)
        self._heartbeat = _Heartbeat(self, max(self.lease_ttl_s / 4.0, 0.05))
        self._heartbeat.start()
        try:
            self._work_loop(unit_count, max_units)
        except _SimulatedDeath:
            self.died = True
            self._heartbeat.halt(dead=True)
            return self.completed
        finally:
            self._heartbeat.halt()
            if not self.died:
                self._release_all()
                _unlink_quiet(self.paths.worker(self.worker_id))
                self.log.append("worker-exit", worker=self.worker_id,
                                completed=self.completed)
            if restore_cache is not _UNSET:
                self._context.cache = restore_cache
            if self._owns_context and self._context is not None:
                self._context.close()
        return self.completed

    # -- the loop ------------------------------------------------------------

    def _work_loop(self, unit_count: int, max_units: int | None) -> None:
        while not self._stop.is_set():
            if self.paths.done.exists():
                return
            if max_units is not None and self.completed >= max_units:
                return
            batch = self._claim_units(unit_count)
            if not batch:
                self._register()
                time.sleep(self.poll_s)
                continue
            for claimed in batch:
                if self._stop.is_set():
                    return
                if max_units is not None and self.completed >= max_units:
                    return
                if not self._still_current(claimed):
                    self._release(claimed)
                    continue
                self._execute(claimed)

    def _await_descriptor(self, wait_timeout_s: float) -> dict | None:
        deadline = self._clock() + wait_timeout_s
        while True:
            descriptor = _read_json(self.paths.descriptor)
            if descriptor is not None:
                return descriptor
            if self.paths.done.exists() or self._stop.is_set():
                return None
            if self._clock() > deadline:
                raise FleetError(
                    f"no fleet appeared at {self.paths.root} within "
                    f"{wait_timeout_s:g} s")
            time.sleep(min(self.poll_s, 0.2))

    # -- claiming ------------------------------------------------------------

    def _claim_units(self, unit_count: int) -> list[_ClaimedUnit]:
        claimed: list[_ClaimedUnit] = []
        for index in range(unit_count):
            if len(claimed) >= self.prefetch:
                break
            if index in self._done_units:
                continue
            record = self._unit_cache.get(index)
            if record is None or record["state"] == "pending":
                record = _read_json(self.paths.unit(index))
                if record is None:
                    continue
                self._unit_cache[index] = record
            if record["state"] == "done":
                self._done_units.add(index)
                continue
            generation = record["generation"]
            if self.paths.lease(index, generation).exists():
                continue
            unit = self._try_claim(index, generation, record)
            if unit is not None:
                claimed.append(unit)
        return claimed

    def _try_claim(self, index: int, generation: int,
                   record: dict) -> _ClaimedUnit | None:
        """Atomically claim one unit; exactly one racer ever wins."""
        path = self.paths.lease(index, generation)
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
        except FileExistsError:
            return None
        except OSError:
            return None
        now = self._clock()
        lease = {"unit": index, "generation": generation,
                 "worker": self.worker_id, "acquired": now,
                 "deadline": now + self.lease_ttl_s}
        with os.fdopen(fd, "w") as handle:
            json.dump(lease, handle)
        with self._held_lock:
            self._held[(index, generation)] = path
        # Freshness check: the generation may have been bumped between
        # the scan and the claim; a stale claim is released immediately.
        fresh = _read_json(self.paths.unit(index))
        if fresh is None or fresh["generation"] != generation \
                or fresh["state"] == "done":
            self._unit_cache.pop(index, None)
            claimed = _ClaimedUnit(index, generation, record)
            self._release(claimed)
            return None
        self._unit_cache[index] = fresh
        self.log.append("claimed", unit=index, generation=generation,
                        worker=self.worker_id)
        return _ClaimedUnit(index, generation, fresh)

    def _still_current(self, claimed: _ClaimedUnit) -> bool:
        record = _read_json(self.paths.unit(claimed.index))
        if record is None:
            return False
        self._unit_cache[claimed.index] = record
        return (record["state"] == "pending"
                and record["generation"] == claimed.generation
                and self.paths.lease(claimed.index, claimed.generation).exists())

    # -- execution -----------------------------------------------------------

    def _execute(self, claimed: _ClaimedUnit) -> None:
        self._active_unit = claimed.index
        self._register()
        try:
            if self.throttle_s:
                # Heartbeats keep the lease alive: a slow machine is not
                # a dead one.  (Chaos jobs use this to widen kill windows.)
                self._interruptible_sleep(self.throttle_s)
            if self._failure_hook is not None \
                    and self._failure_hook(claimed.index):
                raise _SimulatedDeath(claimed.index)
            started = time.perf_counter()
            # The cache binds at context level, never as a spec override:
            # a cache_dir override would change the shard spec's hash and
            # break its recorded parent (each worker's cache is local
            # anyway — only the rows, which caches cannot alter, travel).
            runner = StudyRunner(context=self._context)
            result = runner.run(claimed.spec)
            elapsed = time.perf_counter() - started
            self._publish(claimed, result, elapsed)
        finally:
            if not self.died:
                self._active_unit = None

    def _publish(self, claimed: _ClaimedUnit, result: StudyResult,
                 elapsed: float) -> None:
        prefix = _unit_prefix(claimed.record["parent"], claimed.index,
                              claimed.generation)
        with tempfile.TemporaryDirectory(prefix="fleet-unit-") as scratch:
            write_study_artifacts([result], scratch)
            self._store.push_dir(prefix, scratch)
        _write_json_atomic(self.paths.result(claimed.index, claimed.generation),
                           {"unit": claimed.index,
                            "generation": claimed.generation,
                            "worker": self.worker_id,
                            "prefix": prefix,
                            "elapsed_s": elapsed})
        # The lease outlives publication: the coordinator deletes it on
        # acceptance.  Releasing here would let a peer re-claim this very
        # generation in the collect gap and re-execute the unit for nothing.
        with self._held_lock:
            self._published.add((claimed.index, claimed.generation))
        self._done_units.add(claimed.index)
        self.completed += 1
        self.log.append("completed", unit=claimed.index,
                        generation=claimed.generation,
                        worker=self.worker_id,
                        elapsed_s=round(elapsed, 4))
        if self.sync_cache and self.cache_dir is not None:
            pushed = push_cache_entries(self._local_cache(), self._store)
            if pushed:
                self.log.append("cache-pushed", worker=self.worker_id,
                                entries=pushed)

    # -- lease bookkeeping -----------------------------------------------

    def _release(self, claimed: _ClaimedUnit) -> None:
        with self._held_lock:
            path = self._held.pop((claimed.index, claimed.generation), None)
        if path is not None:
            _unlink_quiet(path)

    def _release_all(self) -> None:
        with self._held_lock:
            held = [path for key, path in self._held.items()
                    if key not in self._published]
            self._held.clear()
            self._published.clear()
        for path in held:
            _unlink_quiet(path)

    def _refresh_leases(self) -> None:
        """Extend every held lease's deadline (heartbeat thread).

        A lease file the coordinator removed is **not** recreated with a
        live deadline blindly: the rewrite is harmless even when it races
        a reassignment, because the coordinator discards any lease whose
        generation trails the unit's — the generation, not the file, is
        the authority.
        """
        now = self._clock()
        with self._held_lock:
            held = dict(self._held)
        for (index, generation), path in held.items():
            if not path.exists():
                # Expired-and-reassigned, or published-and-accepted: the
                # coordinator removed it, so stop tracking it either way.
                with self._held_lock:
                    self._held.pop((index, generation), None)
                    self._published.discard((index, generation))
                continue
            _write_json_atomic(path, {"unit": index, "generation": generation,
                                      "worker": self.worker_id,
                                      "acquired": now - self.lease_ttl_s / 4.0,
                                      "deadline": now + self.lease_ttl_s})

    def _register(self) -> None:
        _write_json_atomic(self.paths.worker(self.worker_id), {
            "worker": self.worker_id,
            "deadline": self._clock() + self.lease_ttl_s,
            "active_unit": self._active_unit,
        })

    def _local_cache(self):
        from repro.experiments.diskcache import SweepDiskCache
        return SweepDiskCache(self.cache_dir)

    def _interruptible_sleep(self, seconds: float) -> None:
        self._stop.wait(seconds)


# ---------------------------------------------------------------------------
# Status (CLI `fleet status`, no coordinator instance required)
# ---------------------------------------------------------------------------


def fleet_status(fleet_dir: str | Path) -> dict:
    """A snapshot of a fleet directory's queue state (for humans/CLI)."""
    paths = _FleetPaths(fleet_dir)
    descriptor = _read_json(paths.descriptor)
    if descriptor is None:
        raise FleetError(f"no fleet at {paths.root}")
    now = time.time()
    units = {"pending": 0, "done": 0}
    leased = 0
    for index in range(descriptor.get("unit_count", 0)):
        record = _read_json(paths.unit(index)) or {}
        state = record.get("state", "pending")
        units[state] = units.get(state, 0) + 1
        if state == "pending" \
                and paths.lease(index, record.get("generation", 0)).exists():
            leased += 1
    workers = []
    try:
        names = sorted(os.listdir(paths.workers))
    except OSError:
        names = []
    for name in names:
        record = _read_json(paths.workers / name)
        if record is None:
            continue
        workers.append({"worker": record.get("worker"),
                        "alive": record.get("deadline", 0) >= now,
                        "active_unit": record.get("active_unit")})
    done = _read_json(paths.done)
    return {
        "fleet_dir": str(paths.root),
        "unit_count": descriptor.get("unit_count", 0),
        "done": units.get("done", 0),
        "leased": leased,
        "open": units.get("pending", 0) - leased,
        "workers": workers,
        "status": (done or {}).get("status", "running"),
        "reason": (done or {}).get("reason", ""),
        "events": len(FleetEventLog(paths.events).events()),
    }


# ---------------------------------------------------------------------------
# In-process fleets (tests, benchmarks, the service's job manager)
# ---------------------------------------------------------------------------


def run_local_fleet(specs: Iterable[StudySpec | str],
                    n_workers: int = 2,
                    smoke: bool = False,
                    fleet_dir: str | Path | None = None,
                    store: ArtifactStore | None = None,
                    lease_ttl_s: float = 30.0,
                    poll_s: float = 0.02,
                    prefetch: int = 1,
                    timeout_s: float = 600.0,
                    out_dir: str | Path | None = None,
                    cache_dir: str | None = None,
                    context: StudyContext | None = None,
                    worker_factory: Callable[
                        [int, Path, ArtifactStore], FleetWorker]
                    | None = None) -> FleetOutcome:
    """Run a whole fleet in one process: coordinator + worker threads.

    The protocol is byte-identical to the cross-process CLI fleet — the
    same queue files, leases and store flow — only the workers are
    threads and the default store is in-memory.  ``context`` is shared
    with the (single) worker when ``n_workers == 1``; with more workers
    each owns a private context, because a :class:`StudyContext` is not
    safe under concurrent studies.  ``worker_factory`` lets tests inject
    chaos-instrumented workers.  Raises :class:`FleetError` unless the
    run completes.
    """
    if n_workers < 1:
        raise FleetError("a local fleet needs at least one worker")
    from repro.experiments.remotestore import MemoryStore
    store = store if store is not None else MemoryStore()
    scratch = None
    if fleet_dir is None:
        scratch = tempfile.TemporaryDirectory(prefix="fleet-")
        fleet_dir = scratch.name
    try:
        coordinator = FleetCoordinator(fleet_dir, store=store,
                                       lease_ttl_s=lease_ttl_s, poll_s=poll_s)
        coordinator.enqueue(list(specs), smoke=smoke)
        workers: list[FleetWorker] = []
        for number in range(n_workers):
            if worker_factory is not None:
                worker = worker_factory(number, Path(fleet_dir), store)
            else:
                worker = FleetWorker(
                    fleet_dir, store=store, worker_id=f"local-{number}",
                    cache_dir=cache_dir, poll_s=poll_s, prefetch=prefetch,
                    context=context if n_workers == 1 else None)
            workers.append(worker)
        threads = [threading.Thread(target=worker.run, daemon=True,
                                    name=f"fleet-worker-{worker.worker_id}")
                   for worker in workers]
        for thread in threads:
            thread.start()
        try:
            outcome = coordinator.serve(timeout_s=timeout_s, out_dir=out_dir)
        finally:
            for worker in workers:
                worker.stop()
            for thread in threads:
                thread.join(timeout=30.0)
        if outcome.status != "done":
            raise FleetError(f"local fleet failed: {outcome.reason}")
        return outcome
    finally:
        if scratch is not None:
            scratch.cleanup()
