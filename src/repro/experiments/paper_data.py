"""Published results of the paper, transcribed for side-by-side comparison.

Tables 1-3 list, for each processor-array configuration, the measured and
predicted run times (seconds) and the signed relative error the paper
reports.  The speculative study definitions capture the parameters of
Figures 8 and 9 (which the paper presents only graphically, so no point
values are transcribed — the reproduction is compared against the figures'
qualitative features: the value ranges and the monotone scaling shape).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PaperValidationRow:
    """One row of a validation table as printed in the paper."""

    data_size: str
    pes: int
    px: int
    py: int
    measured: float
    predicted: float
    error_pct: float

    @property
    def cells_per_processor(self) -> tuple[int, int, int]:
        it, jt, kt = (int(part) for part in self.data_size.split("x"))
        return (it // self.px, jt // self.py, kt)


def _row(data_size: str, pes: int, array: str, measured: float, predicted: float,
         error: float) -> PaperValidationRow:
    px, py = (int(part) for part in array.split("x"))
    assert px * py == pes, f"inconsistent paper row {data_size}: {array} != {pes} PEs"
    return PaperValidationRow(data_size=data_size, pes=pes, px=px, py=py,
                              measured=measured, predicted=predicted, error_pct=error)


#: Table 1 — Intel Pentium-3 2-way SMP cluster, Myrinet 2000 (110 MFLOPS).
TABLE1_ROWS: tuple[PaperValidationRow, ...] = (
    _row("100x100x50", 4, "2x2", 26.54, 28.59, -7.72),
    _row("100x150x50", 6, "2x3", 30.25, 30.03, 0.74),
    _row("150x200x50", 12, "3x4", 31.18, 32.12, -3.01),
    _row("200x200x50", 16, "4x4", 32.28, 32.78, -1.55),
    _row("150x300x50", 18, "3x6", 33.72, 34.77, -3.11),
    _row("200x250x50", 20, "4x5", 32.72, 34.11, -4.25),
    _row("200x300x50", 24, "4x6", 33.94, 35.44, -4.42),
    _row("250x300x50", 30, "5x6", 34.73, 36.10, -3.94),
    _row("200x400x50", 32, "4x8", 35.89, 38.09, -6.13),
    _row("200x450x50", 36, "4x9", 37.33, 39.42, -5.60),
    _row("250x400x50", 40, "5x8", 36.80, 38.75, -5.30),
    _row("300x400x50", 48, "6x8", 37.53, 39.42, -5.04),
    _row("250x500x50", 50, "5x10", 39.35, 41.41, -5.24),
    _row("300x500x50", 60, "6x10", 40.24, 42.08, -4.57),
    _row("400x400x50", 64, "8x8", 40.03, 40.75, -1.80),
    _row("300x550x50", 66, "6x11", 41.67, 43.40, -4.15),
    _row("350x500x50", 70, "7x10", 41.19, 42.74, -3.76),
    _row("400x450x50", 72, "8x9", 41.22, 42.08, -2.09),
    _row("400x500x50", 80, "8x10", 43.09, 43.40, -0.73),
    _row("400x550x50", 88, "8x11", 44.22, 44.75, -1.20),
    _row("450x500x50", 90, "9x10", 43.70, 44.07, -0.85),
    _row("500x500x50", 100, "10x10", 44.37, 44.73, -0.81),
    _row("500x550x50", 110, "10x11", 45.09, 46.06, -2.16),
    _row("400x700x50", 112, "8x14", 46.32, 48.71, -5.16),
)

#: Table 2 — AMD Opteron 2-way SMP cluster, Gigabit Ethernet (350 MFLOPS).
TABLE2_ROWS: tuple[PaperValidationRow, ...] = (
    _row("100x100x50", 4, "2x2", 8.98, 9.69, -7.90),
    _row("100x150x50", 6, "2x3", 9.59, 10.25, -6.83),
    _row("150x150x50", 9, "3x3", 9.94, 10.54, -6.00),
    _row("150x200x50", 12, "3x4", 10.57, 11.07, -4.70),
    _row("200x200x50", 16, "4x4", 10.77, 11.33, -5.22),
    _row("200x250x50", 20, "4x5", 11.18, 11.85, -5.97),
    _row("200x300x50", 24, "4x6", 11.95, 12.38, -3.59),
    _row("250x250x50", 25, "5x5", 11.73, 12.11, -3.24),
    _row("250x300x50", 30, "5x6", 12.07, 12.64, -4.68),
)

#: Table 3 — SGI Altix Itanium-2 56-way SMP, NUMAlink 4 (225 MFLOPS).
TABLE3_ROWS: tuple[PaperValidationRow, ...] = (
    _row("100x100x50", 4, "2x2", 14.66, 13.95, 4.81),
    _row("100x150x50", 6, "2x3", 15.38, 14.60, 5.07),
    _row("150x200x50", 12, "3x4", 16.46, 15.58, 5.35),
    _row("200x200x50", 16, "4x4", 17.31, 15.91, 8.09),
    _row("150x300x50", 18, "3x6", 18.08, 16.87, 6.69),
    _row("200x250x50", 20, "4x5", 17.57, 16.55, 5.82),
    _row("200x300x50", 24, "4x6", 18.29, 17.20, 5.98),
    _row("250x300x50", 30, "5x6", 18.71, 17.52, 6.33),
    _row("200x400x50", 32, "4x8", 19.83, 18.48, 6.79),
    _row("200x450x50", 36, "4x9", 20.22, 19.13, 5.39),
    _row("250x400x50", 40, "5x8", 20.02, 18.81, 6.04),
    _row("300x400x50", 48, "6x8", 20.54, 19.19, 6.57),
    _row("350x350x50", 49, "7x7", 19.95, 18.81, 5.71),
    _row("250x500x50", 50, "5x10", 21.56, 20.10, 6.76),
    _row("450x300x50", 54, "9x6", 21.21, 19.78, 6.74),
    _row("350x400x50", 56, "7x8", 21.04, 19.46, 7.51),
)

#: Published error statistics quoted in the table captions.
PAPER_ERROR_STATS = {
    "table1": {"max_abs_error": 10.0, "average_error": 3.41, "variance": 4.33},
    "table2": {"max_abs_error": 10.0, "average_error": 5.35, "variance": 2.24},
    "table3": {"max_abs_error": 10.0, "average_error": 6.23, "variance": 0.78},
}

#: Machine used by each table (registry name).
PAPER_TABLES = {
    "table1": {"machine": "pentium3-myrinet", "rows": TABLE1_ROWS,
               "flop_rate_mflops": 110.0},
    "table2": {"machine": "opteron-gige", "rows": TABLE2_ROWS,
               "flop_rate_mflops": 350.0},
    "table3": {"machine": "altix-itanium2", "rows": TABLE3_ROWS,
               "flop_rate_mflops": 225.0},
}


# ---------------------------------------------------------------------------
# The speculative study of Section 6 (Figures 8 and 9)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SpeculativeStudy:
    """Parameters of one speculative scaling figure."""

    name: str
    title: str
    cells_per_processor: tuple[int, int, int]
    total_cells_target: float
    mk: int
    mmi: int
    flop_rate_mflops: float
    #: Achieved-rate multipliers plotted ("actual", +25 %, +50 %).
    rate_factors: tuple[float, ...]
    #: Processor counts along the x axis (log scale up to 8000).
    processor_counts: tuple[int, ...]
    #: Qualitative features read from the published figure: the expected
    #: time range (seconds) of the "actual" curve at the largest processor
    #: count, used as a sanity band by the benchmarks.
    expected_range_at_max: tuple[float, float]

    @property
    def max_processors(self) -> int:
        return max(self.processor_counts)


_SPECULATIVE_COUNTS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8000)

#: Figure 8 — the twenty-million-cell problem (5x5x100 cells per processor).
FIGURE8_STUDY = SpeculativeStudy(
    name="figure8",
    title="Speculated SWEEP3D execution time - twenty million cell problem",
    cells_per_processor=(5, 5, 100),
    total_cells_target=20e6,
    mk=10,
    mmi=3,
    flop_rate_mflops=340.0,
    rate_factors=(1.0, 1.25, 1.5),
    processor_counts=_SPECULATIVE_COUNTS,
    expected_range_at_max=(0.5, 1.5),
)

#: Figure 9 — the one-billion-cell problem (25x25x200 cells per processor).
FIGURE9_STUDY = SpeculativeStudy(
    name="figure9",
    title="Speculated SWEEP3D execution time - one billion cell problem",
    cells_per_processor=(25, 25, 200),
    total_cells_target=1e9,
    mk=10,
    mmi=3,
    flop_rate_mflops=340.0,
    rate_factors=(1.0, 1.25, 1.5),
    processor_counts=_SPECULATIVE_COUNTS,
    expected_range_at_max=(5.0, 30.0),
)
