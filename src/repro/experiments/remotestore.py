"""Remote artifact + cache backend: one object-store interface, many homes.

Sharded execution (:mod:`repro.experiments.sharding`) and the elastic
fleet (:mod:`repro.experiments.fleet`) need shard results, run manifests
and warm :class:`~repro.experiments.diskcache.SweepDiskCache` entries to
flow between machines that do **not** share a filesystem.  This module
provides the transport: a minimal object-store abstraction
(:class:`ArtifactStore`) with a flat, ``/``-separated key namespace laid
out like a bucket::

    cache/<fingerprint-digest>.pkl      # warm sweep-cache entries
    runs/<parent-hash>/unit-0003.g0/    # one fleet unit's artifact dir
        manifest.json
        <study>.json
        <study>.csv

Keys reuse the fingerprint scheme the rest of the system already trusts:
cache objects are named by the same
:func:`~repro.experiments.diskcache.fingerprint_digest` the disk cache
files use, and run prefixes embed the parent spec's content hash — so a
store can be shared by many fleets and machines without key collisions,
and a stale or foreign object can never be mistaken for a current one
(the loaders re-verify hashes on read).

Two implementations ship behind the one interface:

* :class:`LocalDirStore` — a directory standing in for a bucket (NFS
  mount, CI workspace, or a bucket mounted via FUSE).  Writes
  are atomic (temp file + ``os.replace``), mirroring the disk cache's
  concurrency contract: concurrent writers never interleave, readers
  see whole objects or nothing.
* :class:`MemoryStore` — a thread-safe in-process dict for tests,
  benchmarks and single-process fleets.

:func:`store_from_url` turns a CLI-friendly URL (``mem://name``,
``file:///path`` or a bare path) into a store instance;
:func:`push_cache_entries` / :func:`pull_cache_entries` sync a
:class:`SweepDiskCache` with a store so fleet workers warm-start from
each other's scenario evaluations.
"""

from __future__ import annotations

import os
import re
import tempfile
import threading
from pathlib import Path
from typing import Iterable

from repro.errors import StoreError
from repro.experiments.diskcache import SweepDiskCache

#: Key segments: portable file-name characters only, no dot-only names.
_SEGMENT = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")

#: Default key prefix for synced sweep-cache entries.
CACHE_PREFIX = "cache"

#: Default key prefix for synced compiled-trace cache entries.
TRACE_PREFIX = "traces"


def validate_key(key: str) -> str:
    """Check (and return) a store key: ``/``-separated portable segments.

    Rejects empty keys, absolute paths, ``..`` traversal and characters
    that are not portable file names, so every backend — including the
    directory-backed one — can map keys to paths verbatim.
    """
    if not key or not isinstance(key, str):
        raise StoreError(f"bad store key {key!r}: empty")
    segments = key.split("/")
    for segment in segments:
        if not _SEGMENT.match(segment) or segment in (".", ".."):
            raise StoreError(
                f"bad store key {key!r}: segment {segment!r} is not a "
                "portable object name")
    return key


class ArtifactStore:
    """Abstract object store: flat keys, whole-object reads and writes.

    Subclasses implement the five primitives; the JSON/text/directory
    conveniences are shared.  All methods are safe under concurrent use
    from multiple threads (and, for :class:`LocalDirStore`, processes).
    """

    # -- primitives (subclass responsibility) ---------------------------

    def put_bytes(self, key: str, data: bytes) -> None:
        raise NotImplementedError

    def get_bytes(self, key: str) -> bytes:
        """The object at ``key``; raises :class:`StoreError` when absent."""
        raise NotImplementedError

    def exists(self, key: str) -> bool:
        raise NotImplementedError

    def list_keys(self, prefix: str = "") -> list[str]:
        """Every key under ``prefix`` (sorted; ``""`` lists everything)."""
        raise NotImplementedError

    def delete(self, key: str) -> bool:
        """Remove ``key``; returns whether it existed."""
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__

    # -- conveniences ---------------------------------------------------

    def put_text(self, key: str, text: str) -> None:
        self.put_bytes(key, text.encode("utf-8"))

    def get_text(self, key: str) -> str:
        return self.get_bytes(key).decode("utf-8")

    def put_json(self, key: str, obj) -> None:
        import json
        self.put_text(key, json.dumps(obj, indent=2, sort_keys=True,
                                      allow_nan=False) + "\n")

    def get_json(self, key: str):
        import json
        try:
            return json.loads(self.get_text(key))
        except ValueError as exc:
            raise StoreError(f"object {key!r} is not valid JSON: {exc}") from exc

    def push_dir(self, prefix: str, directory: str | Path) -> int:
        """Upload every file under ``directory`` as ``prefix/<relpath>``.

        Returns the number of objects written.  Sub-directories are
        walked; empty directories (having no object representation) are
        skipped, exactly like a real bucket.
        """
        directory = Path(directory)
        if not directory.is_dir():
            raise StoreError(f"cannot push {directory}: not a directory")
        count = 0
        for path in sorted(directory.rglob("*")):
            if not path.is_file():
                continue
            key = "/".join(filter(None, [prefix.strip("/"),
                                         path.relative_to(directory).as_posix()]))
            self.put_bytes(key, path.read_bytes())
            count += 1
        return count

    def pull_dir(self, prefix: str, directory: str | Path) -> int:
        """Download every object under ``prefix`` into ``directory``.

        Returns the number of files written; raises when the prefix is
        empty (a fleet pulling a unit's artifacts must fail loudly, not
        merge an empty directory).
        """
        prefix = prefix.strip("/")
        keys = self.list_keys(prefix)
        if not keys:
            raise StoreError(f"no objects under store prefix {prefix!r}")
        directory = Path(directory)
        for key in keys:
            relative = key[len(prefix):].lstrip("/") if prefix else key
            target = directory / Path(*relative.split("/"))
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_bytes(self.get_bytes(key))
        return len(keys)


class MemoryStore(ArtifactStore):
    """A thread-safe in-process store (tests, benchmarks, local fleets)."""

    def __init__(self):
        self._objects: dict[str, bytes] = {}
        self._lock = threading.Lock()

    def put_bytes(self, key: str, data: bytes) -> None:
        validate_key(key)
        with self._lock:
            self._objects[key] = bytes(data)

    def get_bytes(self, key: str) -> bytes:
        with self._lock:
            data = self._objects.get(key)
        if data is None:
            raise StoreError(f"no object {key!r} in {self.describe()}")
        return data

    def exists(self, key: str) -> bool:
        with self._lock:
            return key in self._objects

    def list_keys(self, prefix: str = "") -> list[str]:
        prefix = prefix.strip("/")
        with self._lock:
            keys = list(self._objects)
        if not prefix:
            return sorted(keys)
        return sorted(key for key in keys
                      if key == prefix or key.startswith(prefix + "/"))

    def delete(self, key: str) -> bool:
        with self._lock:
            return self._objects.pop(key, None) is not None

    def describe(self) -> str:
        return f"MemoryStore({len(self._objects)} object(s))"


class LocalDirStore(ArtifactStore):
    """A directory standing in for an object-store bucket.

    Keys map to paths under ``root`` verbatim (validated against
    traversal); writes are atomic via temp file + ``os.replace``, so the
    store is safe for concurrent writers across processes — the same
    contract :class:`~repro.experiments.diskcache.SweepDiskCache` gives.
    """

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise StoreError(
                f"cannot create store directory {self.root}: {exc}") from exc

    def _path(self, key: str) -> Path:
        validate_key(key)
        return self.root / Path(*key.split("/"))

    def put_bytes(self, key: str, data: bytes) -> None:
        target = self._path(key)
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(dir=target.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(data)
                os.replace(tmp_name, target)
            except OSError:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError as exc:
            raise StoreError(f"cannot store {key!r} in {self.root}: {exc}") from exc

    def get_bytes(self, key: str) -> bytes:
        try:
            return self._path(key).read_bytes()
        except FileNotFoundError:
            raise StoreError(f"no object {key!r} in {self.describe()}") from None
        except OSError as exc:
            raise StoreError(f"cannot read {key!r}: {exc}") from exc

    def exists(self, key: str) -> bool:
        return self._path(key).is_file()

    def list_keys(self, prefix: str = "") -> list[str]:
        prefix = prefix.strip("/")
        base = self.root / Path(*prefix.split("/")) if prefix else self.root
        if base.is_file():
            return [prefix]
        if not base.is_dir():
            return []
        keys = []
        for path in base.rglob("*"):
            if path.is_file() and not path.name.endswith(".tmp"):
                keys.append(path.relative_to(self.root).as_posix())
        return sorted(keys)

    def delete(self, key: str) -> bool:
        try:
            self._path(key).unlink()
            return True
        except FileNotFoundError:
            return False
        except OSError as exc:
            raise StoreError(f"cannot delete {key!r}: {exc}") from exc

    def describe(self) -> str:
        return f"LocalDirStore({self.root})"


#: Named in-process stores (``mem://name`` URLs); one registry per process
#: so a coordinator and its in-process workers resolve the same object.
_MEMORY_STORES: dict[str, MemoryStore] = {}
_MEMORY_LOCK = threading.Lock()


def memory_store(name: str = "default") -> MemoryStore:
    """The process-wide named :class:`MemoryStore` (created on first use)."""
    with _MEMORY_LOCK:
        store = _MEMORY_STORES.get(name)
        if store is None:
            store = _MEMORY_STORES[name] = MemoryStore()
        return store


def store_from_url(url: str | os.PathLike) -> ArtifactStore:
    """An :class:`ArtifactStore` from a CLI-friendly URL.

    ``mem://<name>`` names a process-wide in-memory store,
    ``file://<path>`` (or any bare path) a :class:`LocalDirStore`.
    """
    text = str(url)
    if text.startswith("mem://"):
        return memory_store(text[len("mem://"):] or "default")
    if text.startswith("file://"):
        text = text[len("file://"):]
    elif re.match(r"^[A-Za-z][A-Za-z0-9+.-]*://", text):
        scheme = text.split("://", 1)[0]
        raise StoreError(
            f"unsupported store URL scheme {scheme!r} in {url!r} "
            "(supported: mem://, file://, bare paths)")
    if not text:
        raise StoreError(f"bad store URL {url!r}")
    return LocalDirStore(text)


# ---------------------------------------------------------------------------
# Sweep-cache sync: warm entries flow between machines through the store
# ---------------------------------------------------------------------------


def _cache_entry_names(cache) -> Iterable[str]:
    return (entry.name for entry in cache.entries())


def push_cache_entries(cache, store: ArtifactStore,
                       prefix: str = CACHE_PREFIX) -> int:
    """Upload local cache entries the store does not hold yet.

    ``cache`` is any :class:`~repro.diskio.DirectoryStore` — the sweep
    result cache or the compiled-trace cache.  Entries are keyed
    ``<prefix>/<digest><suffix>`` — the same digest name the disk cache
    uses — so two machines pushing the same evaluation write the same
    object, and an object can only ever be claimed by the fingerprint
    that produced it (the cache re-verifies the stored key on read).
    Returns the number uploaded.
    """
    pushed = 0
    for name in _cache_entry_names(cache):
        key = f"{prefix}/{name}"
        if store.exists(key):
            continue
        try:
            data = (cache.path / name).read_bytes()
        except OSError:
            continue  # concurrently pruned — nothing to push
        store.put_bytes(key, data)
        pushed += 1
    return pushed


def pull_cache_entries(store: ArtifactStore, cache,
                       prefix: str = CACHE_PREFIX) -> int:
    """Download store-held cache entries missing locally (warm start).

    ``cache`` is any :class:`~repro.diskio.DirectoryStore`; only objects
    carrying its suffix are fetched.  The transfer is byte-for-byte; a
    corrupt or foreign object is harmless because the cache's ``get``
    re-verifies the stored fingerprint key before serving a hit.
    Returns the number fetched.
    """
    pulled = 0
    have = set(_cache_entry_names(cache))
    for key in store.list_keys(prefix):
        name = key.rsplit("/", 1)[-1]
        if not name.endswith(cache.suffix) or name in have:
            continue
        target = cache.path / name
        fd, tmp_name = tempfile.mkstemp(dir=cache.path, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(store.get_bytes(key))
            os.replace(tmp_name, target)
        except (OSError, StoreError):
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            continue
        pulled += 1
    return pulled


def push_trace_entries(cache, store: ArtifactStore,
                       prefix: str = TRACE_PREFIX) -> int:
    """Upload compiled-trace cache entries (``<prefix>/<digest>.npz``).

    The trace-cache twin of :func:`push_cache_entries`: a fleet's workers
    push the traces they captured so every other machine starts capture-
    warm (:class:`~repro.simmpi.tracecache.TraceDiskCache` verifies the
    fingerprint key on read, so foreign objects are harmless misses).
    """
    return push_cache_entries(cache, store, prefix=prefix)


def pull_trace_entries(store: ArtifactStore, cache,
                       prefix: str = TRACE_PREFIX) -> int:
    """Download compiled-trace cache entries missing locally."""
    return pull_cache_entries(store, cache, prefix=prefix)
