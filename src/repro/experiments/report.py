"""Plain-text reports for the reproduced tables and figures.

The formatting mirrors the paper's tables — data size, processor count,
processor array, measured and predicted times, error — with additional
columns showing the published values for side-by-side comparison.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.ablation import AblationResult
from repro.experiments.agreement import AgreementResult
from repro.experiments.figures import FigureResult
from repro.experiments.paper_data import PAPER_ERROR_STATS
from repro.experiments.runner import ValidationTableResult


def _format_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def fmt(row: Sequence[str]) -> str:
        return "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
    separator = "  ".join("-" * width for width in widths)
    lines = [fmt(headers), separator]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def _optional(value: float | None, fmt: str = "{:.2f}") -> str:
    return fmt.format(value) if value is not None else "-"


def format_validation_table(result: ValidationTableResult,
                            include_paper: bool = True) -> str:
    """Render a reproduced validation table (Tables 1-3 layout)."""
    headers = ["Data Size", "PEs", "Array", "Measured(s)", "Predicted(s)", "Error(%)"]
    if include_paper:
        headers += ["Paper Meas.", "Paper Pred.", "Paper Err(%)"]
    rows = []
    for row in result.rows:
        cells = [
            row.data_size,
            str(row.pes),
            f"{row.px}x{row.py}",
            _optional(row.measured),
            f"{row.predicted:.2f}",
            _optional(row.error_pct, "{:+.2f}"),
        ]
        if include_paper:
            cells += [
                _optional(row.paper_measured),
                _optional(row.paper_predicted),
                _optional(row.paper_error_pct, "{:+.2f}"),
            ]
        rows.append(cells)
    body = _format_table(headers, rows)

    stats = [
        f"max |error| = {result.max_abs_error:.2f}%",
        f"average |error| = {result.average_abs_error:.2f}%",
        f"error variance = {result.error_variance:.2f}",
    ]
    paper_stats = PAPER_ERROR_STATS.get(result.name)
    if include_paper and paper_stats:
        stats.append(
            f"(paper: max < {paper_stats['max_abs_error']:.0f}%, "
            f"average = {paper_stats['average_error']:.2f}%, "
            f"variance = {paper_stats['variance']:.2f})")
    title = f"{result.name} — {result.machine_name}"
    return f"{title}\n{body}\n{'; '.join(stats)}"


def format_figure(result: FigureResult) -> str:
    """Render a speculative-figure reproduction as a table of series."""
    headers = ["Processors"] + [
        f"{series.flop_rate_mflops:.0f} MFLOPS (x{series.rate_factor:g})"
        for series in result.series
    ]
    counts = result.series[0].processor_counts if result.series else []
    rows = []
    for index, count in enumerate(counts):
        cells = [str(count)]
        for series in result.series:
            cells.append(f"{series.times[index]:.3f}")
        rows.append(cells)
    body = _format_table(headers, rows)
    text = f"{result.study.title} ({result.machine_name})\n{body}"
    if counts and max(counts) == result.study.max_processors:
        lo, hi = result.study.expected_range_at_max
        text += (f"\nexpected 'actual' time at {result.study.max_processors} processors "
                 f"(from the published figure): {lo:.1f}-{hi:.1f} s")
    return text


def format_ablation(result: AblationResult) -> str:
    """Render the legacy-vs-coarse benchmarking ablation."""
    lines = [
        "Hardware-layer benchmarking ablation (Section 4)",
        result.describe(),
        f"coarse-approach |error| is {result.improvement_factor:.1f}x smaller "
        "than the legacy opcode approach",
    ]
    return "\n".join(lines)


def format_agreement(result: AgreementResult) -> str:
    """Render the cross-model agreement report."""
    return result.describe()


def error_summary(results: Sequence[ValidationTableResult]) -> str:
    """One-line-per-table error summary used by EXPERIMENTS.md."""
    lines = []
    for result in results:
        lines.append(
            f"{result.name}: {len(result.rows)} rows, "
            f"max |error| {result.max_abs_error:.2f}%, "
            f"avg |error| {result.average_abs_error:.2f}%")
    return "\n".join(lines)
