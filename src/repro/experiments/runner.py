"""Shared machinery for running validation experiments.

A *validation row* corresponds to one row of Tables 1-3: a problem/processor
configuration for which the harness produces

* a **prediction** — the PACE model evaluated from the PSL application
  model and the machine's HMCL hardware object (profiled flop rate +
  fitted communication parameters), and
* a **measurement** — the parallel sweep executed on the machine's
  discrete-event simulator with OS/network noise,

together with the signed relative error (the paper's convention:
``(measured - predicted) / measured * 100``).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Sequence

from repro import units
from repro.core.evaluation import EvaluationEngine, PredictionResult
from repro.core.hmcl.model import HardwareModel
from repro.core.workload import SweepWorkload
from repro.experiments.backends import SimulationBackend
from repro.experiments.diskcache import SweepDiskCache
from repro.experiments.paper_data import PaperValidationRow
from repro.experiments.sweep import Scenario, ScenarioSweep
from repro.machines.machine import Machine
from repro.sweep3d.input import Sweep3DInput, standard_deck


@dataclass
class ValidationRowResult:
    """Reproduced results for one validation-table row."""

    data_size: str
    pes: int
    px: int
    py: int
    predicted: float
    measured: float | None = None
    paper_row: PaperValidationRow | None = None
    prediction_detail: PredictionResult | None = None
    #: Multi-seed uncertainty block, filled when the measurement grid runs
    #: with ``samples > 0``: the per-seed elapsed times of the batched
    #: trace replay and their summary statistics.  ``measured`` stays the
    #: sample-0 value, bit-identical to the unsampled measurement.
    measured_samples: tuple = ()
    measured_mean: float | None = None
    measured_std: float | None = None
    measured_ci95: float | None = None

    @property
    def n_samples(self) -> int:
        return len(self.measured_samples)

    @property
    def error_pct(self) -> float | None:
        """Signed relative error of the reproduction (paper convention)."""
        if self.measured is None or self.measured == 0:
            return None
        return units.relative_error(self.measured, self.predicted)

    @property
    def paper_measured(self) -> float | None:
        return self.paper_row.measured if self.paper_row else None

    @property
    def paper_predicted(self) -> float | None:
        return self.paper_row.predicted if self.paper_row else None

    @property
    def paper_error_pct(self) -> float | None:
        return self.paper_row.error_pct if self.paper_row else None


@dataclass
class ValidationTableResult:
    """A full reproduced validation table plus its error statistics."""

    name: str
    machine_name: str
    rows: list[ValidationRowResult] = field(default_factory=list)

    def errors(self) -> list[float]:
        return [row.error_pct for row in self.rows if row.error_pct is not None]

    @property
    def max_abs_error(self) -> float:
        errors = self.errors()
        return max(abs(e) for e in errors) if errors else 0.0

    @property
    def average_abs_error(self) -> float:
        errors = self.errors()
        return statistics.mean(abs(e) for e in errors) if errors else 0.0

    @property
    def error_variance(self) -> float:
        errors = self.errors()
        return statistics.pvariance(errors) if len(errors) > 1 else 0.0

    def predictions(self) -> list[float]:
        return [row.predicted for row in self.rows]

    def measurements(self) -> list[float]:
        return [row.measured for row in self.rows if row.measured is not None]


def deck_for_row(row: PaperValidationRow, max_iterations: int = 12) -> Sweep3DInput:
    """The SWEEP3D input deck of a validation-table row (50^3 cells/processor)."""
    return standard_deck("validation", px=row.px, py=row.py,
                         max_iterations=max_iterations)


def scenario_for_row(row: PaperValidationRow,
                     max_iterations: int = 12) -> Scenario:
    """Declare one validation-table row as a sweep scenario point."""
    deck = deck_for_row(row, max_iterations=max_iterations)
    workload = SweepWorkload(deck, row.px, row.py)
    return Scenario(
        label=f"{row.data_size} on {row.px}x{row.py}",
        variables=workload.model_variables(),
        tags={"row": row, "deck": deck},
    )


def predict_rows(machine: Machine, rows: Sequence[PaperValidationRow],
                 max_iterations: int = 12,
                 hardware: HardwareModel | None = None,
                 workers: int = 1,
                 context=None) -> list[ValidationRowResult]:
    """Predict a batch of validation rows through the sweep runner.

    All rows of a table share the same per-processor problem size (50^3
    weak scaling), so the hardware model is built once — exactly as the
    paper profiles once per problem size per machine — and the compiled
    model plus its caches are shared across every row.  A
    :class:`~repro.experiments.study.StudyContext` may be supplied to
    share the compiled model (and pool/cache) across tables.
    """
    from repro.experiments.study import ensure_context
    rows = list(rows)
    if not rows:
        return []
    if hardware is None:
        first_deck = deck_for_row(rows[0], max_iterations=max_iterations)
        hardware = machine.hardware_model(first_deck, rows[0].px, rows[0].py)
    sweep = ScenarioSweep([scenario_for_row(row, max_iterations=max_iterations)
                           for row in rows])
    with ensure_context(context) as ctx:
        runner = ctx.prediction_runner(hardware=hardware, workers=workers)
        outcomes = runner.run(sweep)
    return [
        ValidationRowResult(
            data_size=row.data_size,
            pes=row.pes,
            px=row.px,
            py=row.py,
            predicted=outcome.prediction.total_time,
            paper_row=row,
            prediction_detail=outcome.prediction,
        )
        for row, outcome in zip(rows, outcomes)
    ]


def attach_measurement(machine: Machine, result: ValidationRowResult,
                       max_iterations: int = 12,
                       seed_offset: int | None = None) -> ValidationRowResult:
    """Run the discrete-event "measurement" for a predicted row (in place)."""
    row = result.paper_row
    deck = deck_for_row(row, max_iterations=max_iterations)
    offset = seed_offset if seed_offset is not None else row.pes
    run = machine.simulate(deck, row.px, row.py, numeric=False,
                           seed_offset=offset)
    result.measured = run.elapsed_time
    return result


def measure_rows(machine: Machine, results: Sequence[ValidationRowResult],
                 max_iterations: int = 12,
                 workers: int = 1,
                 cache: SweepDiskCache | str | None = None,
                 context=None,
                 execution: str = "auto",
                 samples: int = 0) -> list[ValidationRowResult]:
    """Attach the discrete-event measurements of a whole table as one sweep.

    The rows become one scenario grid evaluated through the
    :class:`~repro.experiments.backends.SimulationBackend` — simulation
    plans, the compute cost table and (optionally) the disk-backed sweep
    cache are shared across every row, and ``workers > 1`` fans the grid
    out over multiprocessing.  Each row keeps the per-row noise seed
    :func:`attach_measurement` uses (``seed_offset = row.pes``), so the
    measured values are bit-identical to the per-row path whatever the
    worker count.  ``execution`` selects the simulation tier (``"auto"``:
    trace replay for these modelled runs; ``"engine"``: the per-event
    reference; both bit-identical).  ``samples > 0`` replays each row
    under that many noise seeds in one batched max-plus pass and fills
    the row's ``measured_*`` uncertainty fields; ``measured`` itself
    stays the sample-0 value, bit-identical to ``samples=0``.
    """
    from repro.experiments.study import ensure_context
    results = list(results)
    if not results:
        return results
    backend = SimulationBackend(machine, deck="validation",
                                max_iterations=max_iterations,
                                execution=execution,
                                samples=samples)
    sweep = ScenarioSweep([
        Scenario(label=f"measure {row.data_size} on {row.px}x{row.py}",
                 variables={"px": row.px, "py": row.py, "seed": row.pes},
                 tags={"row": row})
        for row in (result.paper_row for result in results)
    ])
    with ensure_context(context) as ctx:
        if cache is not None:
            runner = ctx.backend_runner(backend, workers=workers, cache=cache)
        else:
            runner = ctx.backend_runner(backend, workers=workers)
        for result, outcome in zip(results, runner.run(sweep)):
            measurement = outcome.result
            result.measured = measurement.elapsed_time
            if measurement.n_samples:
                result.measured_samples = tuple(measurement.elapsed_samples)
                result.measured_mean = measurement.elapsed_mean
                result.measured_std = measurement.elapsed_std
                result.measured_ci95 = measurement.elapsed_ci95
    return results


def run_validation_row(machine: Machine, row: PaperValidationRow,
                       engine: EvaluationEngine | None = None,
                       simulate_measurement: bool = True,
                       max_iterations: int = 12,
                       seed_offset: int | None = None) -> ValidationRowResult:
    """Reproduce one validation-table row on ``machine``.

    ``engine`` may be supplied to reuse a prediction engine (and its HMCL
    hardware model) across rows; otherwise the row is routed through
    :func:`predict_rows` (a single-point sweep), building the hardware
    model from the machine's profiling/benchmark campaigns.
    """
    if engine is not None:
        deck = deck_for_row(row, max_iterations=max_iterations)
        workload = SweepWorkload(deck, row.px, row.py)
        prediction = engine.predict(workload.model_variables())
        result = ValidationRowResult(
            data_size=row.data_size, pes=row.pes, px=row.px, py=row.py,
            predicted=prediction.total_time, paper_row=row,
            prediction_detail=prediction)
    else:
        result = predict_rows(machine, [row], max_iterations=max_iterations)[0]

    if simulate_measurement:
        attach_measurement(machine, result, max_iterations=max_iterations,
                           seed_offset=seed_offset)
    return result
