"""Shared machinery for running validation experiments.

A *validation row* corresponds to one row of Tables 1-3: a problem/processor
configuration for which the harness produces

* a **prediction** — the PACE model evaluated from the PSL application
  model and the machine's HMCL hardware object (profiled flop rate +
  fitted communication parameters), and
* a **measurement** — the parallel sweep executed on the machine's
  discrete-event simulator with OS/network noise,

together with the signed relative error (the paper's convention:
``(measured - predicted) / measured * 100``).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field

from repro import units
from repro.core.evaluation import EvaluationEngine, PredictionResult
from repro.core.workload import SweepWorkload, load_sweep3d_model
from repro.experiments.paper_data import PaperValidationRow
from repro.machines.machine import Machine
from repro.sweep3d.input import Sweep3DInput, standard_deck


@dataclass
class ValidationRowResult:
    """Reproduced results for one validation-table row."""

    data_size: str
    pes: int
    px: int
    py: int
    predicted: float
    measured: float | None = None
    paper_row: PaperValidationRow | None = None
    prediction_detail: PredictionResult | None = None

    @property
    def error_pct(self) -> float | None:
        """Signed relative error of the reproduction (paper convention)."""
        if self.measured is None or self.measured == 0:
            return None
        return units.relative_error(self.measured, self.predicted)

    @property
    def paper_measured(self) -> float | None:
        return self.paper_row.measured if self.paper_row else None

    @property
    def paper_predicted(self) -> float | None:
        return self.paper_row.predicted if self.paper_row else None

    @property
    def paper_error_pct(self) -> float | None:
        return self.paper_row.error_pct if self.paper_row else None


@dataclass
class ValidationTableResult:
    """A full reproduced validation table plus its error statistics."""

    name: str
    machine_name: str
    rows: list[ValidationRowResult] = field(default_factory=list)

    def errors(self) -> list[float]:
        return [row.error_pct for row in self.rows if row.error_pct is not None]

    @property
    def max_abs_error(self) -> float:
        errors = self.errors()
        return max(abs(e) for e in errors) if errors else 0.0

    @property
    def average_abs_error(self) -> float:
        errors = self.errors()
        return statistics.mean(abs(e) for e in errors) if errors else 0.0

    @property
    def error_variance(self) -> float:
        errors = self.errors()
        return statistics.pvariance(errors) if len(errors) > 1 else 0.0

    def predictions(self) -> list[float]:
        return [row.predicted for row in self.rows]

    def measurements(self) -> list[float]:
        return [row.measured for row in self.rows if row.measured is not None]


def deck_for_row(row: PaperValidationRow, max_iterations: int = 12) -> Sweep3DInput:
    """The SWEEP3D input deck of a validation-table row (50^3 cells/processor)."""
    return standard_deck("validation", px=row.px, py=row.py,
                         max_iterations=max_iterations)


def run_validation_row(machine: Machine, row: PaperValidationRow,
                       engine: EvaluationEngine | None = None,
                       simulate_measurement: bool = True,
                       max_iterations: int = 12,
                       seed_offset: int | None = None) -> ValidationRowResult:
    """Reproduce one validation-table row on ``machine``.

    ``engine`` may be supplied to reuse a prediction engine (and its HMCL
    hardware model) across rows of the same table; otherwise one is built
    from the machine's profiling/benchmark campaigns for this row's
    per-processor problem size.
    """
    deck = deck_for_row(row, max_iterations=max_iterations)
    workload = SweepWorkload(deck, row.px, row.py)
    if engine is None:
        hardware = machine.hardware_model(deck, row.px, row.py)
        engine = EvaluationEngine(load_sweep3d_model(), hardware)
    prediction = engine.predict(workload.model_variables())

    measured: float | None = None
    if simulate_measurement:
        offset = seed_offset if seed_offset is not None else row.pes
        run = machine.simulate(deck, row.px, row.py, numeric=False,
                               seed_offset=offset)
        measured = run.elapsed_time

    return ValidationRowResult(
        data_size=row.data_size,
        pes=row.pes,
        px=row.px,
        py=row.py,
        predicted=prediction.total_time,
        measured=measured,
        paper_row=row,
        prediction_detail=prediction,
    )
