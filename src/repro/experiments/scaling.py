"""Scalability metrics derived from model predictions.

The paper reads its speculative figures qualitatively ("the model predicts
good scaling behaviour").  This module quantifies that statement for the
weak-scaled SWEEP3D workloads: given predicted run times over a processor
axis it computes weak-scaling efficiency, the communication/pipeline
overhead fraction, and the processor count at which efficiency drops below
a threshold — the numbers a procurement study would actually quote.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import ExperimentError
from repro.experiments.figures import FigureResult, FigureSeries, speculative_sweep
from repro.experiments.paper_data import FIGURE8_STUDY, SpeculativeStudy


@dataclass(frozen=True)
class ScalingPoint:
    """Weak-scaling metrics at one processor count."""

    processors: int
    time: float
    #: Weak-scaling efficiency relative to the single-processor time
    #: (T(1) / T(P); 1.0 means perfect weak scaling).
    efficiency: float
    #: Fraction of the run time not explained by the single-processor work
    #: (pipeline fill + communication overhead).
    overhead_fraction: float


@dataclass
class ScalingAnalysis:
    """Weak-scaling analysis of one predicted series."""

    label: str
    points: list[ScalingPoint] = field(default_factory=list)

    @property
    def base_time(self) -> float:
        if not self.points:
            raise ExperimentError("scaling analysis has no points")
        return self.points[0].time

    def efficiency_at(self, processors: int) -> float:
        for point in self.points:
            if point.processors == processors:
                return point.efficiency
        raise ExperimentError(f"no scaling point at {processors} processors")

    def final_efficiency(self) -> float:
        return self.points[-1].efficiency if self.points else 0.0

    def processors_above_efficiency(self, threshold: float) -> int:
        """Largest processor count whose efficiency is still >= ``threshold``."""
        qualifying = [p.processors for p in self.points if p.efficiency >= threshold]
        if not qualifying:
            raise ExperimentError(
                f"no configuration reaches a weak-scaling efficiency of {threshold}")
        return max(qualifying)

    def is_monotone_degrading(self, tolerance: float = 1e-9) -> bool:
        """Weak-scaling efficiency never improves as processors are added."""
        efficiencies = [p.efficiency for p in self.points]
        return all(b <= a + tolerance for a, b in zip(efficiencies, efficiencies[1:]))

    def describe(self) -> str:
        lines = [f"weak-scaling analysis: {self.label}",
                 f"{'processors':>12} {'time (s)':>10} {'efficiency':>11} {'overhead':>9}"]
        for point in self.points:
            lines.append(f"{point.processors:>12} {point.time:>10.3f} "
                         f"{point.efficiency:>10.1%} {point.overhead_fraction:>8.1%}")
        return "\n".join(lines)


def analyze_series(processor_counts: Sequence[int], times: Sequence[float],
                   label: str = "") -> ScalingAnalysis:
    """Build a weak-scaling analysis from raw (processors, time) data.

    The first entry is taken as the single-processor (or smallest) baseline.
    """
    if len(processor_counts) != len(times) or not processor_counts:
        raise ExperimentError("processor counts and times must be equal-length and non-empty")
    if any(t <= 0 for t in times):
        raise ExperimentError("run times must be positive")
    base = times[0]
    analysis = ScalingAnalysis(label=label)
    for processors, time in zip(processor_counts, times):
        efficiency = base / time
        analysis.points.append(ScalingPoint(
            processors=int(processors),
            time=float(time),
            efficiency=float(efficiency),
            overhead_fraction=float(max(0.0, 1.0 - base / time)),
        ))
    return analysis


def analyze_figure_series(series: FigureSeries, label: str = "") -> ScalingAnalysis:
    """Weak-scaling analysis of one curve of a speculative figure."""
    return analyze_series(series.processor_counts, series.times,
                          label=label or f"x{series.rate_factor:g} achieved rate")


def analyze_figure(result: FigureResult) -> dict[float, ScalingAnalysis]:
    """Analyse every series of a reproduced figure, keyed by rate factor."""
    return {series.rate_factor: analyze_figure_series(
                series, label=f"{result.study.name} x{series.rate_factor:g}")
            for series in result.series}


def _run_scaling_impl(machine=None,
                      study: SpeculativeStudy = FIGURE8_STUDY,
                      processor_counts: Sequence[int] = (1, 16, 256, 1024, 8000),
                      rate_factor: float = 1.0,
                      workers: int = 1,
                      context=None) -> ScalingAnalysis:
    """The direct implementation behind the ``scaling`` study."""
    from repro.machines.presets import get_machine
    machine = machine or get_machine("hypothetical-opteron-myrinet")
    counts = list(processor_counts)
    if not counts:
        raise ExperimentError("scaling study needs at least one processor count")
    from repro.experiments.study import ensure_context
    with ensure_context(context) as ctx:
        runner = ctx.prediction_runner(workers=workers)
        outcomes = runner.run(speculative_sweep(study, machine, counts,
                                                [rate_factor]))
    return analyze_series(counts, [outcome.total_time for outcome in outcomes],
                          label=f"{study.name} x{rate_factor:g} on {machine.name}")


def run_scaling_study(machine=None,
                      study: SpeculativeStudy = FIGURE8_STUDY,
                      processor_counts: Sequence[int] = (1, 16, 256, 1024, 8000),
                      rate_factor: float = 1.0,
                      workers: int = 1) -> ScalingAnalysis:
    """Predict and analyse a weak-scaling curve from a declared grid.

    The processor-count axis is declared as a scenario grid and evaluated
    through the batch :class:`~repro.experiments.sweep.SweepRunner`; the
    resulting times feed :func:`analyze_series`.

    Deprecated shim over the Study API (the ``"scaling"`` study): named
    speculative studies with a machine given by preset name (or
    defaulted) route through a spec; explicit :class:`Machine` instances
    or unregistered studies run directly, bit-identically.
    """
    from repro.experiments.study import SPECULATIVE_STUDIES, build_spec, run_study
    if SPECULATIVE_STUDIES.get(study.name) == study and \
            (machine is None or isinstance(machine, str)):
        spec = build_spec("scaling", machine=machine, workers=workers,
                          figure=study.name,
                          processor_counts=tuple(processor_counts),
                          rate_factor=rate_factor)
        return run_study(spec).payload
    if isinstance(machine, str):
        from repro.machines.presets import get_machine
        machine = get_machine(machine)
    return _run_scaling_impl(machine=machine, study=study,
                             processor_counts=processor_counts,
                             rate_factor=rate_factor, workers=workers)
