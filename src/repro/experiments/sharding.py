"""Sharded study execution: split one spec's grid across machines.

A study's scenario grid is embarrassingly partitionable — like the
density-mode cells of a partitioned estimation problem, every unit of the
grid (a validation-table row, a processor count, a blocking factor) can be
evaluated with no knowledge of the others.  What a fleet needs on top of
the shared medium that already exists (spec files, the fingerprint-keyed
:class:`~repro.experiments.diskcache.SweepDiskCache`, per-study manifests)
is exactly two deterministic pieces, and this module provides both:

* a **planner** — :class:`ShardPlanner` splits any
  :class:`~repro.experiments.study.StudySpec` into ``N`` disjoint shard
  specs, balancing by estimated scenario cost (longest-processing-time
  greedy assignment) rather than naive round-robin.  A shard spec carries
  the parent's full grid plus three bookkeeping parameters
  (``shard_index``/``shard_count``/``shard_parent``), so its
  ``spec_hash()`` distinguishes it from every sibling while the recorded
  parent hash ties the family together.  Planning is a pure function of
  the spec: every machine that plans the same spec with the same shard
  count computes byte-identical shard specs, so a fleet coordinates
  through nothing but a spec file and ``--shard i/N``.
* a **merger** — :func:`merge_study_results` reassembles shard results
  into one :class:`~repro.experiments.study.StudyResult` whose rows are
  bit-identical to an unsharded run: it recomputes the plan, refuses
  mismatched parent hashes, duplicated or missing shards and overlapping
  or incomplete grid coverage, reorders rows into full-grid order and
  recomputes the few derived columns that depend on the whole series
  (weak-scaling efficiency).  The artifact-directory counterpart lives in
  :func:`repro.experiments.artifacts.merge_manifests`.

Each registered study declares its shard axis here (:data:`ShardAxis`):
the grid parameter that may be narrowed per shard, how to enumerate its
units with cost estimates, and how a tabulated row maps back onto the
axis.  Studies without a registered axis fall back to a single
indivisible unit (the ablation's one-point "grid").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.core.evaluation.compiler import CacheStats
from repro.errors import ExperimentError
from repro.experiments.diskcache import DiskCacheStats
from repro.experiments.paper_data import PAPER_TABLES
from repro.profiling.phases import merge_phases
from repro.experiments.study import (
    SHARD_PARAM_DEFAULTS,
    SPECULATIVE_STUDIES,
    StudyResult,
    StudySpec,
    build_spec,
    study_names,
)

#: The unit value of the single-unit fallback axis (unshardable studies).
WHOLE_STUDY = "__study__"


# ---------------------------------------------------------------------------
# Shard axes: how each study's grid partitions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ShardUnit:
    """One indivisible slice of a study's grid, with an estimated cost."""

    value: Any
    cost: float


@dataclass(frozen=True)
class ShardAxis:
    """How one study family's scenario grid shards.

    ``param`` names the spec parameter the planner narrows per shard
    (``None``: the study is one indivisible unit).  ``units`` enumerates
    the axis values of a resolved parameter set with cost estimates;
    ``row_unit`` maps a tabulated row back to the unit that produced it
    (coverage/overlap checking) and ``row_key`` to its position in the
    full-grid row order (merge ordering).  ``finalize_rows`` recomputes
    derived columns that depend on the whole series after the merge.
    """

    param: str | None
    units: Callable[[Mapping[str, Any]], list[ShardUnit]]
    row_unit: Callable[[Mapping[str, Any], Mapping[str, Any]], Any]
    row_key: Callable[[Mapping[str, Any], Mapping[str, Any]], tuple]
    finalize_rows: Callable[[list, Mapping[str, Any]], list] | None = None


def _whole_axis() -> ShardAxis:
    return ShardAxis(
        param=None,
        units=lambda params: [ShardUnit(WHOLE_STUDY, 1.0)],
        row_unit=lambda row, params: WHOLE_STUDY,
        row_key=lambda row, params: (0,),
    )


_SHARD_AXES: dict[str, ShardAxis] = {}


def register_shard_axis(study: str, axis: ShardAxis) -> None:
    """Declare how a registered study's grid shards."""
    _SHARD_AXES[study] = axis


def shard_axis_for(study: str) -> ShardAxis:
    """The study's declared axis, or the single-unit fallback."""
    return _SHARD_AXES.get(study, _whole_axis())


def _table_axis(table_name: str) -> ShardAxis:
    published = PAPER_TABLES[table_name]["rows"]
    index_of = {(row.data_size, row.pes, row.px, row.py): position
                for position, row in enumerate(published)}

    def units(params: Mapping[str, Any]) -> list[ShardUnit]:
        indices = params.get("rows")
        indices = list(indices) if indices is not None \
            else list(range(len(published)))
        max_pes = params.get("max_pes")
        selected = []
        for index in indices:
            if not 0 <= index < len(published):
                raise ExperimentError(
                    f"{table_name} row index {index!r} out of range "
                    f"0..{len(published) - 1}")
            row = published[index]
            if max_pes is None or row.pes <= max_pes:
                # The discrete-event measurement dominates a row's cost and
                # scales with the processor count of the configuration.
                selected.append(ShardUnit(index, float(row.pes)))
        return selected

    def row_unit(row: Mapping[str, Any], params: Mapping[str, Any]):
        key = (row["data_size"], row["pes"], row["px"], row["py"])
        try:
            return index_of[key]
        except KeyError:
            raise ExperimentError(
                f"merged row {key!r} matches no published {table_name} "
                "row") from None

    return ShardAxis(
        param="rows",
        units=units,
        row_unit=row_unit,
        row_key=lambda row, params: (row_unit(row, params),),
    )


def _figure_grid(figure_name: str,
                 params: Mapping[str, Any]) -> tuple[list, list]:
    study = SPECULATIVE_STUDIES[figure_name]
    counts = params.get("processor_counts")
    counts = list(counts) if counts is not None else list(study.processor_counts)
    factors = params.get("rate_factors")
    factors = list(factors) if factors is not None else list(study.rate_factors)
    return counts, factors


def _axis_position(values: list, value, label: str) -> int:
    try:
        return values.index(value)
    except ValueError:
        raise ExperimentError(
            f"merged row references {label} {value!r} which is not on the "
            f"parent grid {values}") from None


def _figure_axis(figure_name: str) -> ShardAxis:
    def units(params: Mapping[str, Any]) -> list[ShardUnit]:
        counts, factors = _figure_grid(figure_name, params)
        # One scenario per rate factor at each count; evaluation cost grows
        # with the rank count (the wavefront recurrence is longer).
        return [ShardUnit(count, float(max(count, 1)) * len(factors))
                for count in counts]

    def row_key(row: Mapping[str, Any], params: Mapping[str, Any]) -> tuple:
        counts, factors = _figure_grid(figure_name, params)
        return (_axis_position(factors, row["rate_factor"], "rate factor"),
                _axis_position(counts, row["processors"], "processor count"))

    return ShardAxis(
        param="processor_counts",
        units=units,
        row_unit=lambda row, params: row["processors"],
        row_key=row_key,
    )


def _blocking_valid_mks(params: Mapping[str, Any]) -> list[int]:
    nz = params["cells_per_processor"][2]
    return [mk for mk in params["mk_values"] if 1 <= mk <= nz]


def _blocking_axis() -> ShardAxis:
    def units(params: Mapping[str, Any]) -> list[ShardUnit]:
        mmis = len(list(params["mmi_values"]))
        return [ShardUnit(mk, float(mmis)) for mk in _blocking_valid_mks(params)]

    def row_key(row: Mapping[str, Any], params: Mapping[str, Any]) -> tuple:
        mks = _blocking_valid_mks(params)
        mmis = list(params["mmi_values"])
        return (_axis_position(mks, row["mk"], "mk"),
                _axis_position(mmis, row["mmi"], "mmi"))

    return ShardAxis(
        param="mk_values",
        units=units,
        row_unit=lambda row, params: row["mk"],
        row_key=row_key,
    )


def _count_axis(count_column: str,
                finalize: Callable[[list, Mapping[str, Any]], list] | None = None,
                ) -> ShardAxis:
    """A plain processor-count axis (the scaling and agreement studies)."""
    def units(params: Mapping[str, Any]) -> list[ShardUnit]:
        return [ShardUnit(count, float(max(count, 1)))
                for count in params["processor_counts"]]

    def row_key(row: Mapping[str, Any], params: Mapping[str, Any]) -> tuple:
        counts = list(params["processor_counts"])
        return (_axis_position(counts, row[count_column], "processor count"),)

    return ShardAxis(
        param="processor_counts",
        units=units,
        row_unit=lambda row, params: row[count_column],
        row_key=row_key,
        finalize_rows=finalize,
    )


def _scaling_finalize(rows: list, params: Mapping[str, Any]) -> list:
    """Recompute whole-series weak-scaling columns after a merge.

    A shard's efficiency/overhead columns are relative to the shard's own
    first processor count; the merged series must be relative to the full
    series' baseline, exactly as :func:`repro.experiments.scaling.
    analyze_series` computes it (same arithmetic, bit-identical floats).
    """
    if not rows:
        return rows
    base = rows[0]["time_s"]
    merged = []
    for row in rows:
        time = row["time_s"]
        merged.append({**row,
                       "efficiency": float(base / time),
                       "overhead_fraction": float(max(0.0, 1.0 - base / time))})
    return merged


for _table in ("table1", "table2", "table3"):
    register_shard_axis(_table, _table_axis(_table))
for _figure in ("figure8", "figure9"):
    register_shard_axis(_figure, _figure_axis(_figure))
register_shard_axis("blocking", _blocking_axis())
register_shard_axis("scaling", _count_axis("processors",
                                           finalize=_scaling_finalize))
register_shard_axis("agreement", _count_axis("pes"))
register_shard_axis("steady-scaling", _count_axis("pes"))
# "ablation" stays on the single-unit fallback: its grid is one point.


# ---------------------------------------------------------------------------
# Shard specs: detection and parent recovery
# ---------------------------------------------------------------------------


def is_shard_spec(spec: StudySpec) -> bool:
    """Whether a spec is one slice of a larger grid."""
    params = spec.params_dict
    return bool(params.get("shard_parent")) or params.get("shard_count", 1) > 1


def parent_spec(spec: StudySpec) -> StudySpec:
    """The spec a shard was split from (the shard markers stripped).

    A shard spec carries the parent's grid verbatim — only the
    ``shard_*`` bookkeeping parameters distinguish it — so the parent is
    recoverable from any shard alone.
    """
    params = {name: value for name, value in spec.params
              if name not in SHARD_PARAM_DEFAULTS}
    return build_spec(spec.study, machine=spec.machine, backend=spec.backend,
                      workers=spec.workers, cache_dir=spec.cache_dir,
                      analysis=spec.analysis, **params)


# ---------------------------------------------------------------------------
# The planner
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ShardAssignment:
    """One shard of a plan: its spec and the grid units it must cover."""

    index: int
    spec: StudySpec
    units: tuple
    estimated_cost: float


@dataclass(frozen=True)
class ShardPlan:
    """A deterministic split of one spec's grid into disjoint shard specs."""

    parent: StudySpec
    parent_hash: str
    #: Shard count that was requested (the plan may hold fewer shards when
    #: the grid has fewer units than machines).
    requested: int
    axis_param: str | None
    #: Every grid unit, in full-grid order.
    unit_values: tuple
    shards: tuple[ShardAssignment, ...]

    @property
    def shard_count(self) -> int:
        """The effective shard count (every shard is non-empty)."""
        return len(self.shards)

    def spec_for(self, index: int) -> StudySpec | None:
        """The shard spec at ``index`` (``None``: no work for this shard)."""
        if not 0 <= index < self.requested:
            raise ExperimentError(
                f"shard index {index} out of range for {self.requested} "
                "requested shard(s)")
        if index >= len(self.shards):
            return None
        return self.shards[index].spec

    def describe(self) -> str:
        axis = self.axis_param or "<whole study>"
        lines = [f"{self.parent.study} [{self.parent_hash[:12]}] "
                 f"axis {axis!r}: {len(self.unit_values)} unit(s) -> "
                 f"{self.shard_count} shard(s) "
                 f"({self.requested} requested)"]
        for shard in self.shards:
            units = ", ".join(str(value) for value in shard.units)
            lines.append(f"  shard {shard.index}/{self.shard_count} "
                         f"[{shard.spec.spec_hash()[:12]}] "
                         f"cost {shard.estimated_cost:g}: [{units}]")
        return "\n".join(lines)


def _balance(units: Sequence[ShardUnit], bins: int) -> list[list[int]]:
    """Longest-processing-time greedy assignment of units to bins.

    Deterministic: costs tie-break on the unit's grid position, bins on
    their index — every process computes the same packing.  Returns unit
    indices per bin, each bin sorted back into grid order.
    """
    order = sorted(range(len(units)), key=lambda i: (-units[i].cost, i))
    loads = [0.0] * bins
    packed: list[list[int]] = [[] for _ in range(bins)]
    for index in order:
        target = min(range(bins), key=lambda b: (loads[b], b))
        packed[target].append(index)
        loads[target] += max(units[index].cost, 1e-9)
    return [sorted(bin_units) for bin_units in packed]


class ShardPlanner:
    """Deterministically splits a spec's grid into disjoint shard specs."""

    def plan(self, spec: StudySpec | str, shards: int) -> ShardPlan:
        """Split ``spec`` (or a registered study's default spec) ``shards``
        ways.

        The grid is enumerated from the spec's resolved parameters, so
        plan a smoke spec (``spec.smoke()``) — not the full spec — when
        the shards will run with ``--smoke``.
        """
        if isinstance(spec, str):
            spec = build_spec(spec)
        if shards < 1:
            raise ExperimentError("a shard plan needs at least one shard")
        if is_shard_spec(spec):
            raise ExperimentError(
                f"spec {spec.spec_hash()[:12]} is already a shard of "
                f"{spec.params_dict.get('shard_parent', '')[:12]}; plan from "
                "its parent instead")
        axis = shard_axis_for(spec.study)
        params = spec.resolved_params()
        units = axis.units(params)
        if not units:
            raise ExperimentError(
                f"study {spec.study!r} has no grid units to shard "
                "(empty grid after filters?)")
        effective = min(shards, len(units))
        parent_hash = spec.spec_hash()
        assignments = []
        for index, unit_indices in enumerate(_balance(units, effective)):
            shard_spec = build_spec(
                spec.study, machine=spec.machine, backend=spec.backend,
                workers=spec.workers, cache_dir=spec.cache_dir,
                analysis=spec.analysis, **spec.params_dict,
                shard_index=index, shard_count=effective,
                shard_parent=parent_hash)
            assignments.append(ShardAssignment(
                index=index,
                spec=shard_spec,
                units=tuple(units[i].value for i in unit_indices),
                estimated_cost=sum(units[i].cost for i in unit_indices)))
        return ShardPlan(parent=spec, parent_hash=parent_hash,
                         requested=shards, axis_param=axis.param,
                         unit_values=tuple(unit.value for unit in units),
                         shards=tuple(assignments))


def plan_shards(spec: StudySpec | str, shards: int) -> ShardPlan:
    """Split a spec's grid (module-level convenience)."""
    return ShardPlanner().plan(spec, shards)


def plan_unit_shards(spec: StudySpec | str) -> ShardPlan:
    """Split a spec's grid into one shard **per grid unit**.

    Planning with ``shards == len(units)`` makes the LPT packing place
    exactly one unit in every shard, so each shard spec is the finest
    indivisible lease the elastic fleet (:mod:`repro.experiments.fleet`)
    can hand a worker — and because it is still an ordinary shard plan,
    :func:`merge_study_results` recombines the unit results bit-identically
    to the unsharded run (and to any coarser static plan's merge).
    """
    if isinstance(spec, str):
        spec = build_spec(spec)
    axis = shard_axis_for(spec.study)
    units = axis.units(spec.resolved_params())
    if not units:
        raise ExperimentError(
            f"study {spec.study!r} has no grid units to lease "
            "(empty grid after filters?)")
    return ShardPlanner().plan(spec, len(units))


def make_shard_spec(spec: StudySpec | str, index: int,
                    count: int) -> StudySpec | None:
    """The shard spec ``index`` of ``count`` for a parent spec.

    Returns ``None`` when the grid has fewer units than ``count`` and this
    shard received no work (the caller simply skips the study).
    """
    return ShardPlanner().plan(spec, count).spec_for(index)


# ---------------------------------------------------------------------------
# Shard resolution (what StudyRunner executes)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ShardResolution:
    """A shard spec resolved against its recomputed plan."""

    spec: StudySpec
    parent: StudySpec
    plan: ShardPlan
    assignment: ShardAssignment
    #: The parent spec with its grid axis narrowed to this shard's units —
    #: what the study executor actually runs.
    sliced: StudySpec

    def metadata(self) -> dict[str, Any]:
        """Manifest-facing bookkeeping for a shard's artifacts."""
        return {
            "parent_spec": self.parent.to_dict(),
            "parent_hash": self.plan.parent_hash,
            "shard_index": self.assignment.index,
            "shard_count": self.plan.shard_count,
            "axis": self.plan.axis_param,
            "units": list(self.assignment.units),
        }


def resolve_shard(spec: StudySpec) -> ShardResolution:
    """Recompute a shard spec's plan and locate its slice of the grid.

    Fails loudly when the recorded parent hash does not match the spec's
    own grid (a hand-edited grid, or ``smoke()`` applied after planning —
    plan the smoke spec instead) or when the recorded shard count no
    longer matches the deterministic plan.
    """
    if not is_shard_spec(spec):
        raise ExperimentError("spec carries no shard markers")
    params = spec.resolved_params()
    index = params["shard_index"]
    count = params["shard_count"]
    recorded_parent = params["shard_parent"]
    parent = parent_spec(spec)
    if recorded_parent and parent.spec_hash() != recorded_parent:
        raise ExperimentError(
            f"shard spec records parent {recorded_parent[:12]} but its own "
            f"grid hashes to {parent.spec_hash()[:12]}; was the grid edited "
            "after planning (or smoke() applied to a planned shard)? "
            "Re-plan from the parent spec that will actually run")
    plan = ShardPlanner().plan(parent, count)
    if plan.shard_count != count:
        raise ExperimentError(
            f"shard spec records {count} shard(s) but the grid only "
            f"supports {plan.shard_count}; re-plan from the parent spec")
    assignment = plan.shards[index]
    sliced = parent
    if plan.axis_param is not None:
        sliced_params = parent.params_dict
        sliced_params[plan.axis_param] = assignment.units
        sliced = build_spec(parent.study, machine=parent.machine,
                            backend=parent.backend, workers=parent.workers,
                            cache_dir=parent.cache_dir,
                            analysis=parent.analysis, **sliced_params)
    return ShardResolution(spec=spec, parent=parent, plan=plan,
                           assignment=assignment, sliced=sliced)


# ---------------------------------------------------------------------------
# The merge
# ---------------------------------------------------------------------------


def _shard_bookkeeping(result: StudyResult) -> tuple[int, int, str]:
    params = result.spec.resolved_params()
    return (params["shard_index"], params["shard_count"],
            params["shard_parent"])


def merge_study_results(results: Iterable[StudyResult]) -> StudyResult:
    """Recombine one study's shard results into the unsharded result.

    The merged :class:`~repro.experiments.study.StudyResult` has the
    parent spec, the full-grid row order and rows bit-identical to an
    unsharded run (whole-series derived columns are recomputed with the
    same arithmetic).  Wall-clock and cache accounting are summed across
    shards; the legacy payload object is not reconstructed
    (``payload=None``).

    Refuses, loudly: results of different studies, shards of different
    parents, duplicated/missing shard indices, rows outside a shard's
    assignment, overlapping or incomplete grid coverage, and specs with
    analysis hooks (hooks need the payload, which shards cannot ship).
    """
    results = list(results)
    if not results:
        raise ExperimentError("no shard results to merge")
    if len(results) == 1 and not is_shard_spec(results[0].spec):
        return results[0]
    studies = {result.spec.study for result in results}
    if len(studies) > 1:
        raise ExperimentError(
            f"cannot merge results of different studies {sorted(studies)}")
    strays = [result for result in results if not is_shard_spec(result.spec)]
    if strays:
        raise ExperimentError(
            f"cannot merge: {len(strays)} result(s) carry no shard markers")

    bookkeeping = [_shard_bookkeeping(result) for result in results]
    parents = {parent for _, _, parent in bookkeeping}
    if len(parents) > 1:
        raise ExperimentError(
            "cannot merge shards of different parents "
            f"{sorted(p[:12] for p in parents)}")
    counts = {count for _, count, _ in bookkeeping}
    if len(counts) > 1:
        raise ExperimentError(
            f"cannot merge: shards disagree on shard_count {sorted(counts)}")
    count = counts.pop()
    indices = sorted(index for index, _, _ in bookkeeping)
    duplicates = sorted({i for i in indices if indices.count(i) > 1})
    if duplicates:
        raise ExperimentError(
            f"cannot merge: duplicated shard index(es) {duplicates}")
    missing = sorted(set(range(count)) - set(indices))
    if missing:
        raise ExperimentError(
            f"cannot merge: missing shard index(es) {missing} of {count}")

    parent = parent_spec(results[0].spec)
    recorded = parents.pop()
    if recorded and parent.spec_hash() != recorded:
        raise ExperimentError(
            f"shards record parent {recorded[:12]} but their grid hashes to "
            f"{parent.spec_hash()[:12]}")
    if parent.analysis:
        raise ExperimentError(
            "cannot merge shards of a spec with analysis hooks; run the "
            "hooks on the merged result instead")
    plan = ShardPlanner().plan(parent, count)
    if plan.shard_count != count:
        raise ExperimentError(
            f"shards record {count} shard(s) but the recomputed plan has "
            f"{plan.shard_count}")
    axis = shard_axis_for(parent.study)
    params = parent.resolved_params()

    ordered = sorted(results, key=lambda result: _shard_bookkeeping(result)[0])
    columns = ordered[0].columns
    machines = {(result.machine_name, result.machine_fingerprint)
                for result in ordered}
    if len(machines) > 1:
        raise ExperimentError(
            f"cannot merge: shards ran on different machines "
            f"{sorted(str(m) for m in machines)}")
    for result in ordered:
        if result.columns != columns:
            raise ExperimentError("cannot merge: shards disagree on columns")

    covered: dict[Any, int] = {}
    keyed_rows: list[tuple[tuple, dict]] = []
    for result in ordered:
        index = _shard_bookkeeping(result)[0]
        assigned = set(plan.shards[index].units)
        for row in result.rows:
            unit = axis.row_unit(row, params)
            if unit not in assigned:
                raise ExperimentError(
                    f"shard {index} produced rows for unit {unit!r} outside "
                    f"its assignment {sorted(map(str, assigned))}")
            owner = covered.get(unit)
            if owner is not None and owner != index:
                raise ExperimentError(
                    f"overlapping coverage: unit {unit!r} appears in shards "
                    f"{owner} and {index}")
            covered[unit] = index
            keyed_rows.append((axis.row_key(row, params), row))
        if axis.param is None:
            # Whole-study fallback: the single shard carries every row,
            # so the tabulated position is the (unique, order-preserving)
            # key — content-derived keys don't exist for these studies.
            keyed_rows = [((position,), row)
                          for position, (_, row) in enumerate(keyed_rows)]
    uncovered = [unit for unit in plan.unit_values if unit not in covered]
    if uncovered:
        raise ExperimentError(
            f"incomplete coverage: no shard produced unit(s) "
            f"{[str(u) for u in uncovered]}")
    keys = [key for key, _ in keyed_rows]
    if len(set(keys)) != len(keys):
        raise ExperimentError("duplicate rows across shards")

    keyed_rows.sort(key=lambda item: item[0])
    rows = [row for _, row in keyed_rows]
    if axis.finalize_rows is not None:
        rows = axis.finalize_rows(rows, params)

    cache_stats = CacheStats()
    disk_stats = DiskCacheStats()
    execution: dict[str, int] = {}
    phases: dict[str, float] = {}
    for result in ordered:
        cache_stats = cache_stats.merge(result.cache_stats)
        disk_stats = disk_stats.merge(result.disk_stats)
        for tier, tally in result.execution.items():
            execution[tier] = execution.get(tier, 0) + tally
        merge_phases(phases, result.phases)
    machine_name, machine_fingerprint = machines.pop()
    return StudyResult(
        spec=parent,
        payload=None,
        columns=list(columns),
        rows=rows,
        machine_name=machine_name,
        machine_fingerprint=machine_fingerprint,
        elapsed_s=sum(result.elapsed_s for result in ordered),
        cache_stats=cache_stats,
        disk_stats=disk_stats,
        execution=execution,
        phases=phases,
    )


def group_by_parent(results: Iterable[StudyResult],
                    ) -> tuple[dict[str, list[StudyResult]], list[StudyResult]]:
    """Split results into shard families (by parent hash) and plain results."""
    families: dict[str, list[StudyResult]] = {}
    plain: list[StudyResult] = []
    for result in results:
        if is_shard_spec(result.spec):
            parent = _shard_bookkeeping(result)[2] or \
                parent_spec(result.spec).spec_hash()
            families.setdefault(parent, []).append(result)
        else:
            plain.append(result)
    return families, plain


def study_order_key(result: StudyResult) -> tuple:
    """Deterministic manifest order: registry order, then spec hash."""
    names = study_names()
    study = result.spec.study
    position = names.index(study) if study in names else len(names)
    return (position, result.spec_hash)
