"""Steady-state scaling study: modelled grids far beyond the paper's tables.

The published scaling studies stop at the configurations a 2006-era
cluster could measure (20M cells, 12 source iterations).  The
steady-state execution tier (:mod:`repro.simmpi.steady`) removes the
per-event cost of the *periodic* part of a modelled run, so this study
pushes two axes well past the paper:

* **cells** — per-processor subgrids of ``200 x 200 x 100`` put the
  default grid at 256M cells on 64 ranks (12.8x the paper's largest
  ASCI configuration).  Cell counts only change the per-block compute
  charge, not the event count, so they are effectively free.
* **iterations** — the event stream grows linearly with the source
  iteration count, but the steady tier replays only the warm-up and one
  lock-in window and extrapolates the rest, so hundred-iteration runs
  cost barely more than twelve-iteration ones.

* **ranks** — periodic capture (:mod:`repro.simmpi.capture`) records
  only a handful of iterations and tiles the rest, so the one-off
  O(events) recorder pass that used to cap this study at 64 ranks no
  longer dominates; the grid now climbs to 256 ranks (the modelled
  machine hosts 8000 processors).

Runs are noise-free by construction (``with_noise`` is hardcoded off):
the steady tier refuses noisy traces, and the point of this study is the
deterministic modelled prediction.  The tier that actually served each
scenario is recorded per row and aggregated into
:attr:`repro.experiments.study.StudyResult.execution`; under the default
``hypothetical-opteron-myrinet-1ns`` machine (a dyadic-quantised
timebase) every scenario should report ``steady``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ExperimentError
from repro.experiments.backends import SimulationBackend
from repro.experiments.sweep import Scenario, ScenarioSweep
from repro.sweep3d.input import Sweep3DInput

# ---------------------------------------------------------------------------
# Payload types
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SteadyScaleRow:
    """One modelled configuration of the steady-scaling grid."""

    label: str
    px: int
    py: int
    it: int
    jt: int
    kt: int
    iterations: int
    elapsed_s: float
    #: Which execution tier actually served the run (``"steady"``,
    #: ``"replay"`` or ``"engine"``; empty for pre-tier cached entries).
    execution_tier: str
    total_messages: int
    total_bytes: float
    compute_fraction: float

    @property
    def pes(self) -> int:
        return self.px * self.py

    @property
    def cells(self) -> int:
        return self.it * self.jt * self.kt

    @property
    def per_iteration_s(self) -> float:
        return self.elapsed_s / max(self.iterations, 1)


@dataclass
class SteadyScalingResult:
    """The steady-scaling study's payload."""

    machine_name: str
    sim_execution: str
    rows: list[SteadyScaleRow] = field(default_factory=list)

    def tiers(self) -> dict[str, int]:
        """Execution-tier counts across the grid (diagnostic summary)."""
        counts: dict[str, int] = {}
        for row in self.rows:
            tier = row.execution_tier or "unknown"
            counts[tier] = counts.get(tier, 0) + 1
        return counts

    def describe(self) -> str:
        tiers = ", ".join(f"{count} x {tier}"
                          for tier, count in sorted(self.tiers().items()))
        largest = max(self.rows, key=lambda row: row.cells, default=None)
        lines = [f"steady-scaling on {self.machine_name} "
                 f"(execution={self.sim_execution}): "
                 f"{len(self.rows)} configuration(s), tiers: {tiers or 'none'}"]
        if largest is not None:
            lines.append(
                f"  largest grid: {largest.it} x {largest.jt} x {largest.kt} "
                f"({largest.cells:,} cells) on {largest.pes} PE(s), "
                f"{largest.iterations} iteration(s) -> "
                f"{largest.elapsed_s:.3f} s modelled")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Scenario grid
# ---------------------------------------------------------------------------


def _near_square(count: int) -> tuple[int, int]:
    """The most-square ``px x py`` factorisation of a processor count."""
    if count < 1:
        raise ExperimentError(
            f"processor counts must be >= 1, got {count!r}")
    px = int(math.isqrt(count))
    while count % px:
        px -= 1
    return px, count // px


def steady_scaling_scenarios(params) -> list[Scenario]:
    """The simulation scenario grid of the steady-scaling study.

    Shared with the noise-sensitivity study's target derivation, so the
    uncertainty sweep samples exactly the grid this study measures.
    """
    from repro.experiments.uncertainty import _deck_variables
    nx, ny, nz = (int(value) for value in params["cells_per_processor"])
    scenarios = []
    for count in params["processor_counts"]:
        px, py = _near_square(int(count))
        for iterations in params["iteration_counts"]:
            deck = Sweep3DInput(it=nx * px, jt=ny * py, kt=nz,
                                mk=int(params["mk"]), mmi=int(params["mmi"]),
                                sn=6, max_iterations=int(iterations),
                                label="steady-scaling")
            variables: dict[str, Any] = {"px": px, "py": py}
            variables.update(_deck_variables(deck))
            scenarios.append(Scenario(
                label=f"{px}x{py} @{int(iterations)} iter",
                variables=variables))
    return scenarios


# ---------------------------------------------------------------------------
# Study implementation
# ---------------------------------------------------------------------------


def _run_steady_scaling_impl(machine, params, workers,
                             context) -> SteadyScalingResult:
    execution = str(params["sim_execution"])
    # Noise is hardcoded off: the steady tier refuses noisy traces (their
    # draws are per-event), and this study measures the deterministic
    # modelled prediction.
    backend = SimulationBackend(machine, deck="validation",
                                numeric=False, with_noise=False,
                                execution=execution)
    runner = context.backend_runner(backend, workers=workers)
    scenarios = steady_scaling_scenarios(params)
    result = SteadyScalingResult(machine_name=machine.name,
                                 sim_execution=execution)
    for scenario, outcome in zip(scenarios, runner.run(ScenarioSweep(scenarios))):
        measurement = outcome.result
        variables = scenario.variables
        result.rows.append(SteadyScaleRow(
            label=scenario.label,
            px=measurement.px, py=measurement.py,
            it=int(variables["it"]), jt=int(variables["jt"]),
            kt=int(variables["kt"]),
            iterations=measurement.iterations,
            elapsed_s=measurement.elapsed_time,
            execution_tier=getattr(measurement, "execution_tier", ""),
            total_messages=measurement.total_messages,
            total_bytes=measurement.total_bytes,
            compute_fraction=measurement.compute_fraction,
        ))
    return result


def _tabulate_steady(payload) -> tuple[list[str], list[dict[str, Any]]]:
    columns = ["pes", "px", "py", "it", "jt", "kt", "cells", "iterations",
               "elapsed_s", "per_iteration_s", "tier", "messages", "bytes",
               "compute_fraction"]
    rows = [{
        "pes": row.pes,
        "px": row.px,
        "py": row.py,
        "it": row.it,
        "jt": row.jt,
        "kt": row.kt,
        "cells": row.cells,
        "iterations": row.iterations,
        "elapsed_s": row.elapsed_s,
        "per_iteration_s": row.per_iteration_s,
        "tier": row.execution_tier,
        "messages": row.total_messages,
        "bytes": row.total_bytes,
        "compute_fraction": row.compute_fraction,
    } for row in payload.rows]
    return columns, rows


def _register() -> None:
    from repro.experiments.study import register_study

    @register_study(
        "steady-scaling",
        title="Steady-state scaling — periodic-trace tier beyond the paper",
        machine="hypothetical-opteron-myrinet-1ns", backend="simulate",
        defaults={"processor_counts": (1, 4, 16, 64, 256),
                  "iteration_counts": (12, 100),
                  "cells_per_processor": (200, 200, 100),
                  "mk": 10, "mmi": 3,
                  "sim_execution": "auto"},
        smoke={"processor_counts": (1, 4), "iteration_counts": (10,),
               "cells_per_processor": (5, 5, 50)},
        tabulate=_tabulate_steady,
    )
    def _study_steady_scaling(spec, context):
        from repro.experiments.study import get_study
        machine_name = spec.machine or get_study(spec.study).default_machine
        return _run_steady_scaling_impl(
            machine=context.machine(machine_name),
            params=spec.resolved_params(),
            workers=spec.workers,
            context=context,
        )


_register()
