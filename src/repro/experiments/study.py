"""The declarative Study API: one spec-driven entrypoint for every experiment.

Every experiment in this repository — the validation tables, the
speculative figures, the blocking/scaling studies, the Section-4 ablation
and the Section-6 model-agreement check — reduces to *evaluate a scenario
grid on a machine with a backend*.  This module gives that reduction a
first-class, serializable form:

* :class:`StudySpec` — a frozen, hashable description of one workload:
  the registered study family, the machine preset, the backend, the grid
  parameters, worker count, cache directory and analysis hooks.  Specs
  round-trip through JSON and TOML (:meth:`StudySpec.to_toml` /
  :func:`load_spec`) and have a stable content hash
  (:meth:`StudySpec.spec_hash`) — a spec file plus a shared cache
  directory is the unit of work a fleet of machines can split.
* :func:`register_study` — the registry under which every experiment is
  expressed as "defaults + an executor"; :func:`build_spec` canonicalises
  user overrides against those defaults (unknown studies and unknown
  parameters fail loudly).
* :class:`StudyContext` — shared execution state: the PSL model is parsed
  and compiled **once**, one disk-backed sweep cache and one
  multiprocessing pool serve every study of a run.
* :class:`StudyRunner` — executes one or many specs in a single
  invocation and emits typed :class:`StudyResult` artifacts: the legacy
  payload object, uniform tabular rows for JSON/CSV export, the spec
  hash, the machine fingerprint and cache statistics
  (:mod:`repro.experiments.artifacts` writes them to disk plus a run
  manifest).

The legacy per-experiment entrypoints (``table1``, ``figure8``,
``run_blocking_study``, ...) survive as thin shims that build specs
internally and run them through this pipeline, bit-identically.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.core.evaluation.compiler import CacheStats, CompiledModel
from repro.core.hmcl.model import HardwareModel
from repro.errors import ExperimentError
from repro.experiments.backends import (
    Backend,
    PredictionBackend,
    machine_fingerprint,
)
from repro.experiments.diskcache import (
    DiskCacheStats,
    SweepDiskCache,
    fingerprint_digest,
)
from repro.experiments.paper_data import (
    FIGURE8_STUDY,
    FIGURE9_STUDY,
    PAPER_TABLES,
    SpeculativeStudy,
)
from repro.profiling.phases import merge_phases

#: Named speculative studies a spec can reference by string.
SPECULATIVE_STUDIES: dict[str, SpeculativeStudy] = {
    "figure8": FIGURE8_STUDY,
    "figure9": FIGURE9_STUDY,
}

#: Universal sharding parameters injected into every registered study's
#: defaults: ``shard_index``/``shard_count`` mark a spec as one slice of a
#: larger grid (so ``spec_hash()`` distinguishes shards) and
#: ``shard_parent`` records the content hash of the parent spec that was
#: split (so a merge can tie the shards back together and refuse strays).
#: The defaults describe an unsharded spec, and values equal to the
#: defaults are dropped by :func:`build_spec`, so existing specs and their
#: hashes are unchanged.  Shard specs are built by
#: :class:`repro.experiments.sharding.ShardPlanner`, never by hand.
SHARD_PARAM_DEFAULTS: dict[str, Any] = {
    "shard_index": 0,
    "shard_count": 1,
    "shard_parent": "",
}


# ---------------------------------------------------------------------------
# The spec
# ---------------------------------------------------------------------------


def _normalize(value: Any) -> Any:
    """Canonicalise a parameter value for a frozen, hashable spec.

    Lists become tuples (recursively) so equal specs compare and hash
    equal whether they were built in memory or parsed from JSON/TOML.
    """
    if isinstance(value, (list, tuple)):
        return tuple(_normalize(item) for item in value)
    if isinstance(value, bool) or value is None or isinstance(value, (int, float, str)):
        return value
    raise ExperimentError(
        f"study parameter value {value!r} is not JSON/TOML-serializable; "
        "specs may only carry numbers, strings, booleans and lists thereof")


def _listify(value: Any) -> Any:
    """The JSON/TOML-facing form of a normalised value (tuples -> lists)."""
    if isinstance(value, tuple):
        return [_listify(item) for item in value]
    return value


@dataclass(frozen=True)
class StudySpec:
    """A frozen, serializable description of one experiment workload.

    Build specs with :func:`build_spec` (or :meth:`StudySpec.create`),
    which validates the study name and parameters against the registry and
    canonicalises defaults so that equal workloads hash equal.
    """

    #: Registered study family (``"table1"``, ``"figure8"``, ``"blocking"``, ...).
    study: str
    #: Machine preset name; ``None`` means the study's default machine.
    machine: str | None = None
    #: Scenario backend override; ``None`` means the study's default.
    backend: str | None = None
    #: Canonicalised grid/study parameters as sorted ``(name, value)`` pairs.
    params: tuple[tuple[str, Any], ...] = ()
    #: Multiprocessing fan-out for the study's scenario sweeps.
    workers: int = 1
    #: Disk-backed sweep cache directory shared across studies/processes.
    cache_dir: str | None = None
    #: Registered analysis hooks applied to the result.
    analysis: tuple[str, ...] = ()

    # -- construction --------------------------------------------------------

    @classmethod
    def create(cls, study: str, machine: str | None = None,
               backend: str | None = None, workers: int = 1,
               cache_dir: str | None = None,
               analysis: Sequence[str] = (), **params) -> "StudySpec":
        """Validated constructor; see :func:`build_spec`."""
        return build_spec(study, machine=machine, backend=backend,
                          workers=workers, cache_dir=cache_dir,
                          analysis=analysis, **params)

    # -- parameter access ----------------------------------------------------

    @property
    def params_dict(self) -> dict[str, Any]:
        """The spec's explicit (non-default) parameters as a dict."""
        return dict(self.params)

    def resolved_params(self) -> dict[str, Any]:
        """Study defaults overlaid with this spec's explicit parameters."""
        definition = get_study(self.study)
        resolved = dict(definition.defaults)
        resolved.update(self.params)
        return resolved

    def with_overrides(self, workers: int | None = None,
                       cache_dir: str | None = None,
                       analysis: Sequence[str] | None = None) -> "StudySpec":
        """A copy with runner-level overrides applied (None keeps the field)."""
        changes: dict[str, Any] = {}
        if workers is not None:
            changes["workers"] = workers
        if cache_dir is not None:
            changes["cache_dir"] = str(cache_dir)
        if analysis is not None:
            changes["analysis"] = tuple(analysis)
        return dataclasses.replace(self, **changes) if changes else self

    def smoke(self) -> "StudySpec":
        """The reduced-grid variant of this spec (CI smoke runs)."""
        definition = get_study(self.study)
        params = self.params_dict
        params.update(definition.smoke_params)
        return build_spec(self.study, machine=self.machine,
                          backend=self.backend, workers=self.workers,
                          cache_dir=self.cache_dir, analysis=self.analysis,
                          **params)

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """A plain-data form of the spec (stable key order, lists not tuples)."""
        data: dict[str, Any] = {"study": self.study}
        if self.machine is not None:
            data["machine"] = self.machine
        if self.backend is not None:
            data["backend"] = self.backend
        if self.workers != 1:
            data["workers"] = self.workers
        if self.cache_dir is not None:
            data["cache_dir"] = self.cache_dir
        if self.analysis:
            data["analysis"] = list(self.analysis)
        if self.params:
            data["params"] = {name: _listify(value) for name, value in self.params}
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "StudySpec":
        """Rebuild (and re-canonicalise) a spec from :meth:`to_dict` data."""
        data = dict(data)
        try:
            study = data.pop("study")
        except KeyError:
            raise ExperimentError("study spec has no 'study' field") from None
        params = data.pop("params", {})
        if not isinstance(params, Mapping):
            raise ExperimentError("study spec 'params' must be a table/object")
        unknown = set(data) - {"machine", "backend", "workers", "cache_dir", "analysis"}
        if unknown:
            raise ExperimentError(
                f"study spec has unknown fields {sorted(unknown)}; expected "
                "study/machine/backend/workers/cache_dir/analysis/params")
        return build_spec(study,
                          machine=data.get("machine"),
                          backend=data.get("backend"),
                          workers=int(data.get("workers", 1)),
                          cache_dir=data.get("cache_dir"),
                          analysis=data.get("analysis", ()),
                          **dict(params))

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "StudySpec":
        return cls.from_dict(json.loads(text))

    def to_toml(self) -> str:
        """Render the spec as a TOML document (the spec-file format)."""
        data = self.to_dict()
        params = data.pop("params", None)
        lines = [f"{name} = {_toml_value(value)}" for name, value in data.items()]
        if params:
            lines.append("")
            lines.append("[params]")
            lines.extend(f"{name} = {_toml_value(value)}"
                         for name, value in params.items())
        return "\n".join(lines) + "\n"

    @classmethod
    def from_toml(cls, text: str) -> "StudySpec":
        import tomllib
        try:
            data = tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise ExperimentError(f"invalid study spec TOML: {exc}") from exc
        return cls.from_dict(data)

    def spec_hash(self) -> str:
        """A stable content digest of the spec (identical across processes)."""
        payload = json.dumps(self.to_dict(), sort_keys=True,
                             separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _toml_value(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, str):
        return json.dumps(value)
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_toml_value(item) for item in value) + "]"
    raise ExperimentError(f"cannot render {value!r} as a TOML value")


def load_spec(path: str | Path) -> StudySpec:
    """Load a :class:`StudySpec` from a ``.toml`` or ``.json`` file."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise ExperimentError(f"cannot read study spec {path}: {exc}") from exc
    if path.suffix.lower() == ".json":
        return StudySpec.from_json(text)
    return StudySpec.from_toml(text)


# ---------------------------------------------------------------------------
# The registry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StudyDefinition:
    """One registered study family: defaults plus an executor."""

    name: str
    title: str
    #: Default machine preset (None: the executor chooses / not applicable).
    default_machine: str | None
    #: Default scenario backend the study's sweeps use.
    default_backend: str
    #: Parameter names and default values the spec may override.
    defaults: Mapping[str, Any]
    #: Parameter overrides for reduced-grid smoke runs.
    smoke_params: Mapping[str, Any]
    #: ``execute(spec, context) -> payload`` (the legacy result object).
    execute: Callable[["StudySpec", "StudyContext"], Any]
    #: ``tabulate(payload) -> (columns, rows)`` for uniform JSON/CSV export.
    tabulate: Callable[[Any], tuple[list[str], list[dict[str, Any]]]]
    #: Optional plain-text renderer used by the CLI.
    render: Callable[[Any], str] | None = None


_STUDIES: dict[str, StudyDefinition] = {}


def register_study(name: str, *, title: str,
                   machine: str | None = None,
                   backend: str = "predict",
                   defaults: Mapping[str, Any] | None = None,
                   smoke: Mapping[str, Any] | None = None,
                   tabulate: Callable[[Any], tuple[list[str], list[dict[str, Any]]]] | None = None,
                   render: Callable[[Any], str] | None = None):
    """Class/function decorator registering a study executor under ``name``.

    ``defaults`` declares every parameter a spec may set (unknown
    parameters are rejected by :func:`build_spec`); ``smoke`` lists the
    reduced-grid overrides used by ``--smoke`` runs.
    """
    def decorator(execute):
        declared = dict(defaults or {})
        reserved = set(declared) & set(SHARD_PARAM_DEFAULTS)
        if reserved:
            raise ExperimentError(
                f"study {name!r} declares reserved parameter(s) "
                f"{sorted(reserved)}; the shard_* names are injected into "
                "every study")
        declared = {**SHARD_PARAM_DEFAULTS, **declared}
        _STUDIES[name] = StudyDefinition(
            name=name,
            title=title,
            default_machine=machine,
            default_backend=backend,
            defaults={key: _normalize(value)
                      for key, value in declared.items()},
            smoke_params={key: _normalize(value)
                          for key, value in dict(smoke or {}).items()},
            execute=execute,
            tabulate=tabulate or _tabulate_generic,
            render=render,
        )
        return execute
    return decorator


def _validate_shard_params(params: Mapping[str, Any]) -> None:
    """Reject inconsistent shard bookkeeping on a spec under construction."""
    index = params.get("shard_index", 0)
    count = params.get("shard_count", 1)
    parent = params.get("shard_parent", "")
    if not isinstance(index, int) or not isinstance(count, int) \
            or isinstance(index, bool) or isinstance(count, bool):
        raise ExperimentError("shard_index/shard_count must be integers")
    if count < 1:
        raise ExperimentError("shard_count must be >= 1")
    if not 0 <= index < count:
        raise ExperimentError(
            f"shard_index {index} out of range for shard_count {count}")
    if not isinstance(parent, str):
        raise ExperimentError("shard_parent must be a spec-hash string")
    if count > 1 and not parent:
        raise ExperimentError(
            "a shard spec needs shard_parent (the parent spec's hash); "
            "build shard specs with repro.experiments.sharding.ShardPlanner "
            "or 'repro-sweep3d shard plan'")


def get_study(name: str) -> StudyDefinition:
    """Look a registered study up by name."""
    try:
        return _STUDIES[name]
    except KeyError:
        raise ExperimentError(
            f"unknown study {name!r}; registered: {study_names()}") from None


def study_names() -> list[str]:
    """Names of every registered study, in registration order."""
    return list(_STUDIES)


def build_spec(study: str, machine: str | None = None,
               backend: str | None = None, workers: int = 1,
               cache_dir: str | None = None,
               analysis: Sequence[str] = (), **params) -> StudySpec:
    """Build a canonical :class:`StudySpec`, validating against the registry.

    Parameters equal to the study's defaults are dropped, so a spec's hash
    does not depend on whether defaults were spelled out; unknown studies
    and unknown parameter names raise :class:`ExperimentError`.
    """
    definition = get_study(study)
    unknown = set(params) - set(definition.defaults)
    if unknown:
        raise ExperimentError(
            f"study {study!r} does not accept parameter(s) {sorted(unknown)}; "
            f"accepted: {sorted(definition.defaults)}")
    if workers < 1:
        raise ExperimentError("a study spec needs at least one worker")
    _validate_shard_params(params)
    canonical = []
    for name in sorted(params):
        value = _normalize(params[name])
        if value != definition.defaults[name]:
            canonical.append((name, value))
    if machine is not None and machine == definition.default_machine:
        machine = None
    if backend is not None and backend == definition.default_backend:
        backend = None
    return StudySpec(study=study, machine=machine, backend=backend,
                     params=tuple(canonical), workers=int(workers),
                     cache_dir=str(cache_dir) if cache_dir is not None else None,
                     analysis=tuple(analysis))


# ---------------------------------------------------------------------------
# Analysis hooks
# ---------------------------------------------------------------------------


_ANALYSES: dict[str, Callable[["StudyResult"], Any]] = {}


def register_analysis(name: str):
    """Register an analysis hook: ``hook(result) -> JSON-friendly value``."""
    def decorator(fn):
        _ANALYSES[name] = fn
        return fn
    return decorator


def analysis_names() -> list[str]:
    return sorted(_ANALYSES)


# ---------------------------------------------------------------------------
# Shared execution state
# ---------------------------------------------------------------------------


_UNSET: Any = object()


class StudyContext:
    """Execution state shared across studies (and across sweeps of one study).

    * the PSL model is parsed once and compiled once
      (:meth:`model` / :meth:`compiled_model`);
    * machine presets are instantiated once (:meth:`machine`);
    * one :class:`~repro.experiments.diskcache.SweepDiskCache` serves every
      sweep (:attr:`cache`), and one ``ProcessPoolExecutor`` is reused by
      every ``workers > 1`` fan-out (:meth:`pool`).

    Usable as a context manager; :meth:`close` shuts the shared pool down.
    """

    def __init__(self, cache: SweepDiskCache | str | None = None):
        if cache is not None and not isinstance(cache, SweepDiskCache):
            cache = SweepDiskCache(cache)
        self.cache: SweepDiskCache | None = cache
        self._model = None
        self._compiled: CompiledModel | None = None
        self._machines: dict[str, Any] = {}
        self._caches: dict[str, SweepDiskCache] = {}
        self._pool: ProcessPoolExecutor | None = None
        self._pool_size = 0
        #: Sweep runners created through this context (stats aggregation).
        self._runners: list[Any] = []

    # -- shared resources ----------------------------------------------------

    def model(self):
        if self._model is None:
            from repro.core.workload import load_sweep3d_model
            self._model = load_sweep3d_model()
        return self._model

    def compiled_model(self) -> CompiledModel:
        if self._compiled is None:
            self._compiled = CompiledModel(self.model())
        return self._compiled

    def machine(self, name: str):
        from repro.machines.presets import get_machine
        key = name.lower()
        if key not in self._machines:
            self._machines[key] = get_machine(name)
        return self._machines[key]

    def cache_for(self, cache_dir: str | os.PathLike) -> SweepDiskCache:
        """The shared :class:`SweepDiskCache` for a directory (memoised)."""
        key = str(Path(cache_dir))
        if key not in self._caches:
            self._caches[key] = SweepDiskCache(key)
        return self._caches[key]

    def pool(self, workers: int) -> ProcessPoolExecutor | None:
        """The shared process pool (grown on demand); ``None`` for serial."""
        if workers <= 1:
            return None
        if self._pool is None or self._pool_size < workers:
            if self._pool is not None:
                self._pool.shutdown()
            self._pool = ProcessPoolExecutor(max_workers=workers)
            self._pool_size = workers
        return self._pool

    # -- runner factories ----------------------------------------------------

    def prediction_runner(self, hardware: HardwareModel | None = None,
                          workers: int = 1, entry_proc: str = "init"):
        """A :class:`SweepRunner` on the shared compiled prediction backend."""
        backend = PredictionBackend(hardware=hardware, entry_proc=entry_proc,
                                    compiled=self.compiled_model())
        return self.backend_runner(backend, workers=workers)

    def backend_runner(self, backend: Backend, workers: int = 1,
                       cache: SweepDiskCache | str | None = _UNSET):
        """A :class:`SweepRunner` on an explicit backend instance.

        ``cache`` defaults to the context's shared cache; pass ``None`` to
        disable caching for one sweep.
        """
        from repro.experiments.sweep import SweepRunner
        runner = SweepRunner(backend=backend, workers=workers,
                             cache=self.cache if cache is _UNSET else cache,
                             pool=self.pool(workers))
        self._runners.append(runner)
        return runner

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
            self._pool_size = 0

    def __enter__(self) -> "StudyContext":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


@contextmanager
def ensure_context(context: StudyContext | None = None):
    """Yield ``context`` or a fresh one, closing only what this call created."""
    if context is not None:
        yield context
        return
    owned = StudyContext()
    try:
        yield owned
    finally:
        owned.close()


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------


def _json_safe(value: Any) -> Any:
    """Replace NaN/inf with None so artifacts are strict JSON."""
    if isinstance(value, float) and (value != value or value in (float("inf"),
                                                                 float("-inf"))):
        return None
    if isinstance(value, dict):
        return {key: _json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    return value


@dataclass
class StudyResult:
    """The typed artifact of one executed study."""

    spec: StudySpec
    #: The legacy per-experiment result object (ValidationTableResult, ...).
    payload: Any
    #: Uniform tabular form of the payload (one dict per row).
    columns: list[str] = field(default_factory=list)
    rows: list[dict[str, Any]] = field(default_factory=list)
    machine_name: str | None = None
    #: Digest of the resolved machine's value fingerprint.
    machine_fingerprint: str | None = None
    elapsed_s: float = 0.0
    #: In-memory evaluation-cache accounting for this study's sweeps.
    cache_stats: CacheStats = field(default_factory=CacheStats)
    #: Disk-cache accounting for this study's sweeps (zeros without a cache).
    disk_stats: DiskCacheStats = field(default_factory=DiskCacheStats)
    #: Scenario counts per simulation execution tier
    #: (``{"steady": 12, "replay": 3, ...}``) — how many of this study's
    #: measurements each tier produced, so ``sim_execution="auto"``
    #: decisions are auditable from the artifact.  Empty for prediction
    #: studies.
    execution: dict[str, int] = field(default_factory=dict)
    #: Host seconds per simulation execution phase (``{"capture": 1.9,
    #: "steady": 0.2, ...}``) summed over this study's sweeps — where the
    #: wall-clock actually went, complementing the tier counts.  Empty
    #: for prediction studies.
    phases: dict[str, float] = field(default_factory=dict)
    #: Outputs of the spec's analysis hooks, keyed by hook name.
    analysis: dict[str, Any] = field(default_factory=dict)
    #: Shard bookkeeping for sharded runs (parent spec/hash, assigned
    #: units); ``None`` for unsharded and merged results, so their
    #: artifacts keep the unsharded schema.
    sharding: dict[str, Any] | None = None

    @property
    def study(self) -> str:
        return self.spec.study

    @property
    def spec_hash(self) -> str:
        return self.spec.spec_hash()

    def describe(self) -> str:
        """Plain-text rendering (the study's renderer, or a row count)."""
        definition = get_study(self.spec.study)
        # Merged results carry rows but no payload object, and a shard's
        # payload renderer may assume the full grid (e.g. the blocking
        # study's best-point summary); both fall through to the generic
        # row-count line.
        if self.payload is not None and self.sharding is None:
            if definition.render is not None:
                return definition.render(self.payload)
            described = getattr(self.payload, "describe", None)
            if callable(described):
                return described()
        return (f"{self.spec.study}: {len(self.rows)} row(s) "
                f"in {self.elapsed_s:.2f} s")

    def to_dict(self) -> dict[str, Any]:
        """The JSON artifact form (strict JSON: NaN/inf become null)."""
        data = {
            "study": self.spec.study,
            "spec": self.spec.to_dict(),
            "spec_hash": self.spec_hash,
            "machine": self.machine_name,
            "machine_fingerprint": self.machine_fingerprint,
            "elapsed_s": self.elapsed_s,
            "cache": {
                "predictions": self.cache_stats.predictions,
                "subtask_hits": self.cache_stats.subtask_hits,
                "subtask_misses": self.cache_stats.subtask_misses,
                "disk_hits": self.disk_stats.hits,
                "disk_misses": self.disk_stats.misses,
                "disk_stores": self.disk_stats.stores,
            },
            "execution": self.execution,
            "phases": self.phases,
            "columns": self.columns,
            "rows": self.rows,
            "analysis": self.analysis,
        }
        if self.sharding is not None:
            data["sharding"] = self.sharding
        return _json_safe(data)


# ---------------------------------------------------------------------------
# The runner
# ---------------------------------------------------------------------------


class StudyRunner:
    """Executes one or many :class:`StudySpec` in a single invocation.

    Parameters
    ----------
    workers:
        Override applied to every spec that does not exceed it (CLI
        ``--workers``); ``None`` keeps each spec's own value.
    cache_dir:
        Shared disk-cache directory override (CLI ``--cache-dir``).
    context:
        An externally owned :class:`StudyContext`; without one the runner
        creates (and closes) its own around each :meth:`run_all` call.
    """

    def __init__(self, workers: int | None = None,
                 cache_dir: str | None = None,
                 context: StudyContext | None = None):
        self.workers = workers
        self.cache_dir = cache_dir
        self._context = context

    # -- single study --------------------------------------------------------

    def run(self, spec: StudySpec | str,
            context: StudyContext | None = None) -> StudyResult:
        """Execute one spec (or a registered study's default spec)."""
        spec = self._resolve(spec)
        with ensure_context(context or self._context) as ctx:
            return self._run_one(spec, ctx)

    # -- many studies --------------------------------------------------------

    def run_many(self, specs: Iterable[StudySpec | str],
                 smoke: bool = False) -> list[StudyResult]:
        """Execute several specs sharing one context (model, caches, pool).

        Each spec's own ``cache_dir`` governs its run (specs naming the
        same directory share one store); the runner-level ``cache_dir``
        override, when set, applies to every spec.
        """
        resolved = [self._resolve(spec) for spec in specs]
        if smoke:
            resolved = [spec.smoke() for spec in resolved]
        with ensure_context(self._context) as ctx:
            return [self._run_one(spec, ctx) for spec in resolved]

    def run_all(self, smoke: bool = False) -> list[StudyResult]:
        """Execute every registered study's (default or smoke) spec."""
        return self.run_many(study_names(), smoke=smoke)

    # -- internals -----------------------------------------------------------

    def _resolve(self, spec: StudySpec | str) -> StudySpec:
        if isinstance(spec, str):
            spec = build_spec(spec)
        return spec.with_overrides(workers=self.workers,
                                   cache_dir=self.cache_dir)

    def _machine_identity(self, spec: StudySpec, payload: Any,
                          ctx: StudyContext) -> tuple[str | None, str | None]:
        """The machine the study actually ran on (payload first, spec second)."""
        definition = get_study(spec.study)
        name = (getattr(payload, "machine_name", None)
                or spec.machine or definition.default_machine)
        if name is None:
            return None, None
        machine = ctx.machine(name)
        return machine.name, fingerprint_digest(machine_fingerprint(machine))

    def _run_one(self, spec: StudySpec, ctx: StudyContext) -> StudyResult:
        definition = get_study(spec.study)
        # A shard spec carries the parent's full grid plus shard_* markers;
        # the deterministic planner is recomputed here and the study
        # executes only its assigned slice (same context, same caches).
        exec_spec = spec
        shard_meta = None
        from repro.experiments.sharding import is_shard_spec, resolve_shard
        if is_shard_spec(spec):
            resolution = resolve_shard(spec)
            exec_spec = resolution.sliced
            shard_meta = resolution.metadata()
        # The spec's cache directory governs this study; the context's own
        # cache (if any) is the default for specs that declare none.
        previous_cache = ctx.cache
        if spec.cache_dir is not None:
            ctx.cache = ctx.cache_for(spec.cache_dir)
        runners_before = len(ctx._runners)
        try:
            started = time.perf_counter()
            payload = definition.execute(exec_spec, ctx)
            elapsed = time.perf_counter() - started
        finally:
            ctx.cache = previous_cache
        # Aggregate accounting from the sweep runners this study created;
        # each runner's stats cover its one run() call, and the parallel
        # path already merges its workers' disk I/O into runner.disk_stats
        # (the shared cache object's own counters never see worker hits).
        cache_stats = CacheStats()
        disk_stats = DiskCacheStats()
        execution: dict[str, int] = {}
        phases: dict[str, float] = {}
        for runner in ctx._runners[runners_before:]:
            cache_stats = cache_stats.merge(runner.stats)
            disk_stats = disk_stats.merge(runner.disk_stats)
            for tier, count in getattr(runner, "execution_counts", {}).items():
                execution[tier] = execution.get(tier, 0) + count
            merge_phases(phases, getattr(runner, "phase_seconds", {}))
        columns, rows = definition.tabulate(payload)
        machine_name, machine_token = self._machine_identity(spec, payload, ctx)
        result = StudyResult(
            spec=spec,
            payload=payload,
            columns=columns,
            rows=rows,
            machine_name=machine_name,
            machine_fingerprint=machine_token,
            elapsed_s=elapsed,
            cache_stats=cache_stats,
            disk_stats=disk_stats,
            execution=execution,
            phases=phases,
            sharding=shard_meta,
        )
        for hook_name in spec.analysis:
            hook = _ANALYSES.get(hook_name)
            if hook is None:
                raise ExperimentError(
                    f"unknown analysis hook {hook_name!r}; "
                    f"registered: {analysis_names()}")
            result.analysis[hook_name] = hook(result)
        return result


def run_study(spec: StudySpec | str,
              context: StudyContext | None = None) -> StudyResult:
    """Execute one spec (module-level convenience)."""
    return StudyRunner(context=context).run(spec)


def run_studies(specs: Iterable[StudySpec | str],
                workers: int | None = None,
                cache_dir: str | None = None,
                smoke: bool = False) -> list[StudyResult]:
    """Execute several specs in one invocation with shared state."""
    return StudyRunner(workers=workers, cache_dir=cache_dir).run_many(
        specs, smoke=smoke)


# ---------------------------------------------------------------------------
# Tabulators (uniform CSV/JSON rows per payload type)
# ---------------------------------------------------------------------------


def _tabulate_generic(payload) -> tuple[list[str], list[dict[str, Any]]]:
    return [], []


def _tabulate_table(payload) -> tuple[list[str], list[dict[str, Any]]]:
    columns = ["data_size", "pes", "px", "py", "predicted_s", "measured_s",
               "error_pct", "paper_measured_s", "paper_predicted_s",
               "paper_error_pct"]
    rows = [{
        "data_size": row.data_size,
        "pes": row.pes,
        "px": row.px,
        "py": row.py,
        "predicted_s": row.predicted,
        "measured_s": row.measured,
        "error_pct": row.error_pct,
        "paper_measured_s": row.paper_measured,
        "paper_predicted_s": row.paper_predicted,
        "paper_error_pct": row.paper_error_pct,
    } for row in payload.rows]
    # Multi-seed runs (the ``samples`` parameter) extend the schema with
    # the uncertainty block; unsampled runs keep the historical columns.
    if any(row.n_samples for row in payload.rows):
        columns += ["samples", "measured_mean_s", "measured_std_s",
                    "measured_ci95_s"]
        for tabulated, row in zip(rows, payload.rows):
            tabulated["samples"] = row.n_samples
            tabulated["measured_mean_s"] = row.measured_mean
            tabulated["measured_std_s"] = row.measured_std
            tabulated["measured_ci95_s"] = row.measured_ci95
    return columns, rows


def _tabulate_figure(payload) -> tuple[list[str], list[dict[str, Any]]]:
    columns = ["rate_factor", "flop_rate_mflops", "processors", "time_s"]
    rows = [{
        "rate_factor": series.rate_factor,
        "flop_rate_mflops": series.flop_rate_mflops,
        "processors": processors,
        "time_s": time_s,
    } for series in payload.series
        for processors, time_s in series.as_rows()]
    return columns, rows


def _tabulate_blocking(payload) -> tuple[list[str], list[dict[str, Any]]]:
    columns = ["mk", "mmi", "blocks_per_iteration", "messages_per_processor",
               "predicted_s"]
    rows = [{
        "mk": point.mk,
        "mmi": point.mmi,
        "blocks_per_iteration": point.blocks_per_iteration,
        "messages_per_processor": point.messages_per_processor,
        "predicted_s": point.predicted_time,
    } for point in payload.points]
    return columns, rows


def _tabulate_scaling(payload) -> tuple[list[str], list[dict[str, Any]]]:
    columns = ["processors", "time_s", "efficiency", "overhead_fraction"]
    rows = [{
        "processors": point.processors,
        "time_s": point.time,
        "efficiency": point.efficiency,
        "overhead_fraction": point.overhead_fraction,
    } for point in payload.points]
    return columns, rows


def _tabulate_ablation(payload) -> tuple[list[str], list[dict[str, Any]]]:
    columns = ["machine", "data_size", "pes", "measured_s",
               "coarse_prediction_s", "legacy_prediction_s",
               "coarse_error_pct", "legacy_error_pct"]
    rows = [{
        "machine": payload.machine_name,
        "data_size": payload.data_size,
        "pes": payload.pes,
        "measured_s": payload.measured,
        "coarse_prediction_s": payload.coarse_prediction,
        "legacy_prediction_s": payload.legacy_prediction,
        "coarse_error_pct": payload.coarse_error_pct,
        "legacy_error_pct": payload.legacy_error_pct,
    }]
    return columns, rows


def _tabulate_agreement(payload) -> tuple[list[str], list[dict[str, Any]]]:
    columns = ["pes", "pace_s", "loggp_s", "hoisie_s", "spread"]
    rows = [{
        "pes": comparison.workload.px * comparison.workload.py,
        "pace_s": comparison.pace,
        "loggp_s": comparison.loggp,
        "hoisie_s": comparison.hoisie,
        "spread": comparison.spread,
    } for comparison in payload.comparisons]
    return columns, rows


# ---------------------------------------------------------------------------
# Renderers (CLI plain text; lazy report import keeps import costs down)
# ---------------------------------------------------------------------------


def _render_table(payload) -> str:
    from repro.experiments.report import format_validation_table
    return format_validation_table(payload)


def _render_figure(payload) -> str:
    from repro.experiments.report import format_figure
    return format_figure(payload)


def _render_ablation(payload) -> str:
    from repro.experiments.report import format_ablation
    return format_ablation(payload)


# ---------------------------------------------------------------------------
# The registered studies
# ---------------------------------------------------------------------------


def _table_executor(table_name: str, spec: StudySpec, context: StudyContext):
    from repro.experiments.tables import _run_table_impl, rows_for_indices
    params = spec.resolved_params()
    indices = params["rows"]
    rows = rows_for_indices(table_name, indices) if indices is not None else None
    return _run_table_impl(
        table_name,
        rows=rows,
        simulate_measurement=params["simulate_measurement"],
        max_iterations=params["max_iterations"],
        max_pes=params["max_pes"],
        workers=spec.workers,
        cache=context.cache,
        machine=spec.machine,
        context=context,
        sim_execution=params["sim_execution"],
        samples=params["samples"],
    )


#: ``rows`` selects a subset of the published table by row index (the
#: shard axis of the table studies); ``None`` runs every published row.
#: ``sim_execution`` selects the simulation tier of the measurement grid
#: ("auto": trace replay for modelled runs; "engine": the per-event
#: reference; "replay": force replay) — all tiers are bit-identical, so
#: the choice never changes a result, only its cost.  ``samples > 0``
#: replays every measurement under that many noise seeds in one batched
#: max-plus pass and adds uncertainty columns; the default 0 keeps the
#: historical schema (and existing spec hashes, since default-equal
#: parameters are dropped by :func:`build_spec`).
_TABLE_DEFAULTS = {"simulate_measurement": True, "max_iterations": 12,
                   "max_pes": None, "rows": None, "sim_execution": "auto",
                   "samples": 0}
_TABLE_SMOKE = {"max_pes": 6, "max_iterations": 1}


@register_study("table1",
                title="Table 1 — validation on the Pentium-3/Myrinet cluster",
                machine="pentium3-myrinet", backend="predict",
                defaults=_TABLE_DEFAULTS, smoke=_TABLE_SMOKE,
                tabulate=_tabulate_table, render=_render_table)
def _study_table1(spec: StudySpec, context: StudyContext):
    return _table_executor("table1", spec, context)


@register_study("table2",
                title="Table 2 — validation on the Opteron/GigE cluster",
                machine="opteron-gige", backend="predict",
                defaults=_TABLE_DEFAULTS, smoke=_TABLE_SMOKE,
                tabulate=_tabulate_table, render=_render_table)
def _study_table2(spec: StudySpec, context: StudyContext):
    return _table_executor("table2", spec, context)


@register_study("table3",
                title="Table 3 — validation on the SGI Altix Itanium-2 SMP",
                machine="altix-itanium2", backend="predict",
                defaults=_TABLE_DEFAULTS, smoke=_TABLE_SMOKE,
                tabulate=_tabulate_table, render=_render_table)
def _study_table3(spec: StudySpec, context: StudyContext):
    return _table_executor("table3", spec, context)


def _figure_executor(study: SpeculativeStudy, spec: StudySpec,
                     context: StudyContext):
    from repro.experiments.figures import _run_speculative_figure_impl
    params = spec.resolved_params()
    machine_name = spec.machine or get_study(spec.study).default_machine
    counts = params["processor_counts"]
    factors = params["rate_factors"]
    return _run_speculative_figure_impl(
        study,
        machine=context.machine(machine_name),
        processor_counts=list(counts) if counts is not None else None,
        rate_factors=list(factors) if factors is not None else None,
        workers=spec.workers,
        context=context,
    )


_FIGURE_DEFAULTS = {"processor_counts": None, "rate_factors": None}
_FIGURE_SMOKE = {"processor_counts": (1, 4, 16), "rate_factors": (1.0,)}


@register_study("figure8",
                title="Figure 8 — speculative scaling, twenty-million-cell problem",
                machine="hypothetical-opteron-myrinet", backend="predict",
                defaults=_FIGURE_DEFAULTS, smoke=_FIGURE_SMOKE,
                tabulate=_tabulate_figure, render=_render_figure)
def _study_figure8(spec: StudySpec, context: StudyContext):
    return _figure_executor(FIGURE8_STUDY, spec, context)


@register_study("figure9",
                title="Figure 9 — speculative scaling, one-billion-cell problem",
                machine="hypothetical-opteron-myrinet", backend="predict",
                defaults=_FIGURE_DEFAULTS, smoke=_FIGURE_SMOKE,
                tabulate=_tabulate_figure, render=_render_figure)
def _study_figure9(spec: StudySpec, context: StudyContext):
    return _figure_executor(FIGURE9_STUDY, spec, context)


@register_study("blocking",
                title="Blocking-factor study — (mk, mmi) sensitivity sweep",
                machine="hypothetical-opteron-myrinet", backend="predict",
                defaults={"px": 20, "py": 20,
                          "cells_per_processor": (5, 5, 100),
                          "mk_values": (1, 2, 5, 10, 20, 50, 100),
                          "mmi_values": (1, 2, 3, 6),
                          "max_iterations": 12},
                smoke={"px": 4, "py": 4, "mk_values": (1, 10),
                       "mmi_values": (1, 3), "max_iterations": 1},
                tabulate=_tabulate_blocking)
def _study_blocking(spec: StudySpec, context: StudyContext):
    from repro.experiments.blocking import _run_blocking_impl
    params = spec.resolved_params()
    machine_name = spec.machine or get_study(spec.study).default_machine
    return _run_blocking_impl(
        machine=context.machine(machine_name),
        px=params["px"], py=params["py"],
        cells_per_processor=tuple(params["cells_per_processor"]),
        mk_values=tuple(params["mk_values"]),
        mmi_values=tuple(params["mmi_values"]),
        max_iterations=params["max_iterations"],
        workers=spec.workers,
        context=context,
    )


@register_study("scaling",
                title="Weak-scaling analysis of a speculative study",
                machine="hypothetical-opteron-myrinet", backend="predict",
                defaults={"figure": "figure8",
                          "processor_counts": (1, 16, 256, 1024, 8000),
                          "rate_factor": 1.0},
                smoke={"processor_counts": (1, 16)},
                tabulate=_tabulate_scaling)
def _study_scaling(spec: StudySpec, context: StudyContext):
    from repro.experiments.scaling import _run_scaling_impl
    params = spec.resolved_params()
    figure = params["figure"]
    if figure not in SPECULATIVE_STUDIES:
        raise ExperimentError(
            f"unknown speculative study {figure!r}; "
            f"known: {sorted(SPECULATIVE_STUDIES)}")
    machine_name = spec.machine or get_study(spec.study).default_machine
    return _run_scaling_impl(
        machine=context.machine(machine_name),
        study=SPECULATIVE_STUDIES[figure],
        processor_counts=tuple(params["processor_counts"]),
        rate_factor=params["rate_factor"],
        workers=spec.workers,
        context=context,
    )


@register_study("ablation",
                title="Section-4 ablation — legacy opcode vs coarse benchmarking",
                machine="opteron-gige", backend="predict",
                defaults={"table": "table2", "row_index": 0,
                          "max_iterations": 12, "simulate_measurement": True},
                smoke={"max_iterations": 1},
                tabulate=_tabulate_ablation, render=_render_ablation)
def _study_ablation(spec: StudySpec, context: StudyContext):
    from repro.experiments.ablation import _run_opcode_ablation_impl
    params = spec.resolved_params()
    table_name = params["table"]
    if table_name not in PAPER_TABLES:
        raise ExperimentError(
            f"unknown table {table_name!r}; expected one of {sorted(PAPER_TABLES)}")
    machine = context.machine(spec.machine or PAPER_TABLES[table_name]["machine"])
    return _run_opcode_ablation_impl(
        machine=machine,
        table_name=table_name,
        row_index=params["row_index"],
        max_iterations=params["max_iterations"],
        simulate_measurement=params["simulate_measurement"],
        context=context,
    )


@register_study("agreement",
                title="Section-6 agreement — PACE vs LogGP vs the Los Alamos model",
                machine="hypothetical-opteron-myrinet", backend="predict",
                defaults={"figure": "figure8",
                          "processor_counts": (16, 256, 1024, 8000)},
                smoke={"processor_counts": (16,)},
                tabulate=_tabulate_agreement)
def _study_agreement(spec: StudySpec, context: StudyContext):
    from repro.experiments.agreement import _run_model_agreement_impl
    params = spec.resolved_params()
    figure = params["figure"]
    if figure not in SPECULATIVE_STUDIES:
        raise ExperimentError(
            f"unknown speculative study {figure!r}; "
            f"known: {sorted(SPECULATIVE_STUDIES)}")
    machine_name = spec.machine or get_study(spec.study).default_machine
    return _run_model_agreement_impl(
        study=SPECULATIVE_STUDIES[figure],
        machine=context.machine(machine_name),
        processor_counts=list(params["processor_counts"]),
        workers=spec.workers,
        context=context,
    )


# ---------------------------------------------------------------------------
# Built-in analysis hooks
# ---------------------------------------------------------------------------


@register_analysis("weak-scaling")
def _analyze_weak_scaling(result: StudyResult):
    """Weak-scaling efficiency per series of a figure (or scaling) payload."""
    from repro.experiments.scaling import analyze_figure
    payload = result.payload
    if hasattr(payload, "series"):
        return {f"x{factor:g}": {
                    "final_efficiency": analysis.final_efficiency(),
                    "base_time_s": analysis.base_time,
                }
                for factor, analysis in analyze_figure(payload).items()}
    if hasattr(payload, "points") and payload.points and \
            hasattr(payload.points[0], "efficiency"):
        return {"final_efficiency": payload.final_efficiency()}
    raise ExperimentError(
        "the 'weak-scaling' analysis hook needs a figure or scaling payload")


@register_analysis("error-stats")
def _analyze_error_stats(result: StudyResult):
    """Error statistics of a validation-table payload."""
    payload = result.payload
    if not hasattr(payload, "max_abs_error"):
        raise ExperimentError(
            "the 'error-stats' analysis hook needs a validation-table payload")
    return {
        "max_abs_error_pct": payload.max_abs_error,
        "average_abs_error_pct": payload.average_abs_error,
        "error_variance": payload.error_variance,
    }
