"""The unified batch scenario runner.

Every experiment in this repository is ultimately a *scenario sweep*: a
grid of (problem size, blocking factor, processor array, hardware) points,
each evaluated by the PACE model.  The seed code hand-rolled that loop in
every experiment module; this module centralises it.

* :class:`Scenario` — one evaluation point: a label, the application
  object's externally modifiable variables, an optional per-scenario
  hardware model (for rate-factor/ablation sweeps) and free-form ``tags``
  carried through to the outcome.
* :class:`ScenarioSweep` — a declarative collection of scenarios, with a
  :meth:`ScenarioSweep.grid` constructor for cartesian parameter grids.
* :class:`SweepRunner` — executes an iterable of scenarios through the
  compiled evaluation pipeline.  The PSL model is compiled **once**; one
  :class:`~repro.core.evaluation.compiler.CompiledExecutor` is kept per
  distinct hardware fingerprint, so the cflow and subtask caches are shared
  across every point of the sweep.  With ``workers > 1`` the scenario list
  fans out over ``multiprocessing`` (results are returned in input order
  and are identical to a serial run).

Cache-hit accounting is aggregated into :attr:`SweepRunner.stats` after
every run.
"""

from __future__ import annotations

import itertools
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.core.evaluation import PredictionResult
from repro.core.evaluation.compiler import (
    CacheStats,
    CompiledExecutor,
    CompiledModel,
    hardware_fingerprint,
)
from repro.core.hmcl.model import HardwareModel
from repro.core.ir import ModelSet
from repro.errors import ExperimentError


@dataclass(frozen=True)
class Scenario:
    """One point of a scenario sweep.

    ``variables`` are passed to ``predict()`` verbatim; ``hardware``
    overrides the runner's default hardware for this point (e.g. one
    hardware object per rate factor in the speculative study); ``tags``
    are opaque experiment bookkeeping (the paper row, the (mk, mmi)
    combination, ...) echoed on the outcome.
    """

    label: str
    variables: Mapping[str, float | str]
    hardware: HardwareModel | None = None
    tags: Mapping[str, object] = field(default_factory=dict)


@dataclass
class SweepOutcome:
    """The prediction produced for one scenario."""

    scenario: Scenario
    prediction: PredictionResult

    @property
    def total_time(self) -> float:
        return self.prediction.total_time

    @property
    def tags(self) -> Mapping[str, object]:
        return self.scenario.tags


@dataclass
class ScenarioSweep:
    """A declarative collection of scenario points."""

    scenarios: list[Scenario] = field(default_factory=list)

    def __iter__(self):
        return iter(self.scenarios)

    def __len__(self) -> int:
        return len(self.scenarios)

    def add(self, scenario: Scenario) -> None:
        self.scenarios.append(scenario)

    @classmethod
    def grid(cls, axes: Mapping[str, Sequence[float]],
             base: Mapping[str, float | str] | None = None,
             hardware: HardwareModel | None = None) -> "ScenarioSweep":
        """Build the cartesian product of ``axes`` over ``base`` variables.

        >>> sweep = ScenarioSweep.grid({"mk": [1, 10], "mmi": [1, 3]},
        ...                            base={"kt": 100.0})
        >>> [s.label for s in sweep]
        ['mk=1 mmi=1', 'mk=1 mmi=3', 'mk=10 mmi=1', 'mk=10 mmi=3']
        """
        names = list(axes)
        sweep = cls()
        for values in itertools.product(*(axes[name] for name in names)):
            variables = dict(base or {})
            variables.update(zip(names, values))
            label = " ".join(f"{name}={value:g}" if isinstance(value, (int, float))
                             else f"{name}={value}"
                             for name, value in zip(names, values))
            sweep.add(Scenario(label=label, variables=variables,
                               hardware=hardware,
                               tags=dict(zip(names, values))))
        return sweep


def _run_chunk(payload) -> list:
    """Worker entry point: evaluate one contiguous chunk of scenarios.

    Each worker is simply an in-process runner over its chunk, so the
    serial and parallel paths share one prediction/caching implementation.
    """
    model, default_hardware, entry_proc, chunk = payload
    runner = SweepRunner(model=model, hardware=default_hardware,
                         entry_proc=entry_proc)
    results = [(index, runner._predict(scenario)) for index, scenario in chunk]
    return [results, runner._collect_stats()]


class SweepRunner:
    """Evaluates scenario sweeps through the compiled prediction pipeline.

    Parameters
    ----------
    model:
        The PSL model set (compiled once and shared by every point; defaults
        to the shipped SWEEP3D model).
    hardware:
        Default hardware for scenarios that do not carry their own.
    workers:
        Number of ``multiprocessing`` workers.  ``1`` (default) runs
        in-process; results are independent of the worker count.
    entry_proc:
        Application procedure evaluated per scenario.
    """

    def __init__(self, model: ModelSet | None = None,
                 hardware: HardwareModel | None = None,
                 workers: int = 1,
                 entry_proc: str = "init"):
        if model is None:
            from repro.core.workload import load_sweep3d_model
            model = load_sweep3d_model()
        if workers < 1:
            raise ExperimentError("SweepRunner needs at least one worker")
        self.model = model
        self.hardware = hardware
        self.workers = workers
        self.entry_proc = entry_proc
        self.compiled = CompiledModel(model)
        self._executors: dict[tuple, CompiledExecutor] = {}
        #: Cache accounting of the most recent :meth:`run` (or
        #: :meth:`predict_one`) call.  Predictions are identical whatever
        #: the worker count; the hit/miss split is not (parallel workers
        #: keep private caches, so fewer cross-point hits are observed).
        self.stats = CacheStats()

    # ------------------------------------------------------------------

    def run(self, scenarios: Iterable[Scenario] | ScenarioSweep) -> list[SweepOutcome]:
        """Evaluate every scenario, returning outcomes in input order."""
        points = list(scenarios)
        if not points:
            self.stats = CacheStats()
            return []
        if self.workers > 1 and len(points) > 1:
            predictions, self.stats = self._run_parallel(points)
        else:
            before = self._collect_stats()
            predictions = [self._predict(scenario) for scenario in points]
            self.stats = self._collect_stats().since(before)
        return [SweepOutcome(scenario=scenario, prediction=prediction)
                for scenario, prediction in zip(points, predictions)]

    def predict_one(self, scenario: Scenario) -> SweepOutcome:
        """Evaluate a single scenario in-process (shares the runner caches)."""
        before = self._collect_stats()
        outcome = SweepOutcome(scenario=scenario, prediction=self._predict(scenario))
        self.stats = self._collect_stats().since(before)
        return outcome

    # ------------------------------------------------------------------

    def _predict(self, scenario: Scenario) -> PredictionResult:
        hardware = scenario.hardware or self.hardware
        if hardware is None:
            raise ExperimentError(
                f"scenario {scenario.label!r} has no hardware model and the "
                "sweep runner was constructed without a default")
        token = hardware_fingerprint(hardware)
        executor = self._executors.get(token)
        if executor is None:
            executor = self._executors[token] = self.compiled.executor(hardware)
        return executor.predict(scenario.variables, self.entry_proc)

    def _collect_stats(self) -> CacheStats:
        stats = CacheStats()
        for executor in self._executors.values():
            stats = stats.merge(executor.stats)
        return stats

    def _run_parallel(self, points: list[Scenario]):
        workers = min(self.workers, len(points))
        chunk_size = -(-len(points) // workers)
        indexed = list(enumerate(points))
        chunks = [indexed[start:start + chunk_size]
                  for start in range(0, len(indexed), chunk_size)]
        payloads = [(self.model, self.hardware, self.entry_proc, chunk)
                    for chunk in chunks if chunk]
        predictions: dict[int, PredictionResult] = {}
        stats = CacheStats()
        with ProcessPoolExecutor(max_workers=len(payloads)) as pool:
            for results, chunk_stats in pool.map(_run_chunk, payloads):
                stats = stats.merge(chunk_stats)
                for index, prediction in results:
                    predictions[index] = prediction
        return [predictions[index] for index in range(len(points))], stats
