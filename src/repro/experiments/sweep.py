"""The unified batch scenario runner.

Every experiment in this repository is ultimately a *scenario sweep*: a
grid of (problem size, blocking factor, processor array, hardware) points,
each evaluated by some backend.  The seed code hand-rolled that loop in
every experiment module; this module centralises it.

* :class:`Scenario` — one evaluation point: a label, the application
  object's externally modifiable variables, an optional per-scenario
  hardware model (for rate-factor/ablation sweeps) and free-form ``tags``
  carried through to the outcome.
* :class:`ScenarioSweep` — a declarative collection of scenarios, with a
  :meth:`ScenarioSweep.grid` constructor for cartesian parameter grids.
* :class:`SweepRunner` — executes an iterable of scenarios through a
  scenario **backend** (:mod:`repro.experiments.backends`).  The backend is
  compiled **once** per runner — for the default ``"predict"`` backend that
  means one :class:`~repro.core.evaluation.compiler.CompiledModel` shared
  by every point, with one executor per distinct hardware fingerprint; for
  the ``"simulate"`` backend one reusable simulation plan per (deck, px,
  py) plus a sweep-wide compute cost table.  With ``workers > 1`` the
  scenario list fans out over ``multiprocessing`` (results are returned in
  input order and are identical to a serial run, for both backends).
* Optional **disk cache** (:mod:`repro.experiments.diskcache`): pass
  ``cache=`` a directory (or :class:`SweepDiskCache`) and every evaluated
  scenario is persisted keyed on the backend fingerprint; warm runs and
  worker processes are served from the shared store instead of rebuilding
  per-process caches.

Cache-hit accounting is aggregated into :attr:`SweepRunner.stats` (and
:attr:`SweepRunner.disk_stats`) after every run.
"""

from __future__ import annotations

import itertools
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from repro.core.evaluation.compiler import CacheStats
from repro.core.hmcl.model import HardwareModel
from repro.core.ir import ModelSet
from repro.errors import ExperimentError
from repro.experiments.backends import (
    Backend,
    PredictionBackend,
    create_backend,
)
from repro.experiments.diskcache import DiskCacheStats, SweepDiskCache
from repro.profiling.phases import merge_phases


@dataclass(frozen=True)
class Scenario:
    """One point of a scenario sweep.

    ``variables`` are interpreted by the backend: the prediction backend
    passes them to ``predict()`` verbatim; the simulation backend reads the
    processor array (``px``/``py``), optional deck overrides and an
    optional noise ``seed`` from them.  ``hardware`` overrides the runner's
    default hardware for this point (prediction backend only, e.g. one
    hardware object per rate factor in the speculative study); ``tags`` are
    opaque experiment bookkeeping (the paper row, the (mk, mmi)
    combination, ...) echoed on the outcome.
    """

    label: str
    variables: Mapping[str, float | str]
    hardware: HardwareModel | None = None
    tags: Mapping[str, object] = field(default_factory=dict)


@dataclass
class SweepOutcome:
    """The result produced for one scenario.

    ``result`` is backend-specific — a
    :class:`~repro.core.evaluation.result.PredictionResult` from the
    prediction backend, a
    :class:`~repro.experiments.backends.SimMeasurement` from the simulation
    backend — but always exposes ``total_time``.
    """

    scenario: Scenario
    result: Any

    @property
    def prediction(self):
        """Backward-compatible alias for :attr:`result`."""
        return self.result

    @property
    def total_time(self) -> float:
        return self.result.total_time

    @property
    def tags(self) -> Mapping[str, object]:
        return self.scenario.tags


@dataclass
class ScenarioSweep:
    """A declarative collection of scenario points."""

    scenarios: list[Scenario] = field(default_factory=list)

    def __iter__(self):
        return iter(self.scenarios)

    def __len__(self) -> int:
        return len(self.scenarios)

    def add(self, scenario: Scenario) -> None:
        self.scenarios.append(scenario)

    @classmethod
    def grid(cls, axes: Mapping[str, Sequence[float]],
             base: Mapping[str, float | str] | None = None,
             hardware: HardwareModel | None = None) -> "ScenarioSweep":
        """Build the cartesian product of ``axes`` over ``base`` variables.

        >>> sweep = ScenarioSweep.grid({"mk": [1, 10], "mmi": [1, 3]},
        ...                            base={"kt": 100.0})
        >>> [s.label for s in sweep]
        ['mk=1 mmi=1', 'mk=1 mmi=3', 'mk=10 mmi=1', 'mk=10 mmi=3']
        """
        names = list(axes)
        sweep = cls()
        for values in itertools.product(*(axes[name] for name in names)):
            variables = dict(base or {})
            variables.update(zip(names, values))
            label = " ".join(f"{name}={value:g}" if isinstance(value, (int, float))
                             else f"{name}={value}"
                             for name, value in zip(names, values))
            sweep.add(Scenario(label=label, variables=variables,
                               hardware=hardware,
                               tags=dict(zip(names, values))))
        return sweep


def _cached_evaluate(backend: Backend, executor, cache: SweepDiskCache | None,
                     scenario: Scenario):
    """Evaluate one scenario, serving/warming the disk cache when present."""
    if cache is None:
        return executor.evaluate(scenario)
    key = backend.fingerprint(scenario)
    cached = cache.get(key)
    if cached is not None:
        return cached
    result = executor.evaluate(scenario)
    cache.put(key, result)
    return result


def _run_chunk(payload) -> list:
    """Worker entry point: evaluate one contiguous chunk of scenarios.

    Each worker compiles the (pickled) backend into its own executor and —
    when a cache directory is configured — warms from and writes to the
    shared disk store, so the serial and parallel paths share one
    evaluation/caching implementation.
    """
    backend, cache_path, chunk = payload
    cache = SweepDiskCache(cache_path) if cache_path is not None else None
    executor = backend.compile()
    results = [(index, _cached_evaluate(backend, executor, cache, scenario))
               for index, scenario in chunk]
    disk_stats = cache.stats if cache is not None else DiskCacheStats()
    return [results, executor.collect_stats(), disk_stats]


class SweepRunner:
    """Evaluates scenario sweeps through a scenario backend.

    Parameters
    ----------
    model:
        The PSL model set for the default prediction backend (compiled once
        and shared by every point; defaults to the shipped SWEEP3D model).
        Ignored when an explicit ``backend`` instance is supplied.
    hardware:
        Default hardware for scenarios that do not carry their own
        (prediction backend).
    workers:
        Number of ``multiprocessing`` workers.  ``1`` (default) runs
        in-process; results are independent of the worker count.
    entry_proc:
        Application procedure evaluated per scenario (prediction backend).
    backend:
        Scenario backend: a registered name (``"predict"``, ``"simulate"``)
        or a :class:`~repro.experiments.backends.Backend` instance.  Named
        backends needing configuration (the simulation backend's machine)
        are built with :func:`~repro.experiments.backends.create_backend`
        and passed as instances.
    cache:
        Optional disk-backed sweep cache: a directory path or a
        :class:`~repro.experiments.diskcache.SweepDiskCache`.  Scenario
        results are persisted keyed on the backend fingerprint and shared
        across workers, runs and processes.
    pool:
        Optional externally owned :class:`~concurrent.futures.
        ProcessPoolExecutor` reused for the parallel fan-out (the study
        layer shares one pool across many sweeps).  The runner never shuts
        a supplied pool down; without one it creates a pool per run.
    """

    def __init__(self, model: ModelSet | None = None,
                 hardware: HardwareModel | None = None,
                 workers: int = 1,
                 entry_proc: str = "init",
                 backend: str | Backend = "predict",
                 cache: SweepDiskCache | str | None = None,
                 pool: ProcessPoolExecutor | None = None):
        if workers < 1:
            raise ExperimentError("SweepRunner needs at least one worker")
        if isinstance(backend, str):
            if backend == PredictionBackend.name:
                backend = PredictionBackend(model=model, hardware=hardware,
                                            entry_proc=entry_proc)
            else:
                backend = create_backend(backend)
        self.backend: Backend = backend
        self.model = getattr(backend, "model", model)
        self.hardware = getattr(backend, "hardware", hardware)
        self.workers = workers
        self.entry_proc = entry_proc
        if cache is not None and not isinstance(cache, SweepDiskCache):
            cache = SweepDiskCache(cache)
        self.cache: SweepDiskCache | None = cache
        if (cache is not None and getattr(backend, "trace_cache", "") is None):
            # A cached simulation sweep gets the persistent trace cache
            # for free, under the sweep cache's own directory: compiled
            # traces then survive across workers, runs and processes just
            # like scenario results do (the backend — and its attached
            # cache — is pickled to every worker).
            from repro.simmpi.tracecache import TraceDiskCache

            backend.trace_cache = TraceDiskCache(cache.path / "traces")
        self.pool = pool
        self._executor = None
        #: Cache accounting of the most recent :meth:`run` (or
        #: :meth:`predict_one`) call.  Results are identical whatever the
        #: worker count; the hit/miss split is not (parallel workers keep
        #: private in-memory caches, so fewer cross-point hits are
        #: observed — the disk cache closes exactly that gap).
        self.stats = CacheStats()
        #: Disk-cache accounting of the most recent run (zeros without a cache).
        self.disk_stats = DiskCacheStats()
        #: Cumulative count of scenario results per execution tier
        #: (``"engine"``/``"replay"``/``"steady"``), tallied from each
        #: result's ``execution_tier`` attribute.  Only the simulation
        #: backend stamps one; prediction results contribute nothing.
        #: Disk-cache hits keep the tier recorded when the entry was
        #: first computed, so the counts audit how every row was produced.
        self.execution_counts: dict[str, int] = {}
        #: Cumulative host seconds per execution phase (``"capture"``/
        #: ``"replay"``/``"steady"``/``"engine"``), tallied from each
        #: result's ``phase_seconds``.  Like the tier counts, disk-cache
        #: hits contribute the phases recorded when the entry was first
        #: computed.
        self.phase_seconds: dict[str, float] = {}

    # ------------------------------------------------------------------

    def run(self, scenarios: Iterable[Scenario] | ScenarioSweep) -> list[SweepOutcome]:
        """Evaluate every scenario, returning outcomes in input order."""
        points = list(scenarios)
        if not points:
            self.stats = CacheStats()
            self.disk_stats = DiskCacheStats()
            return []
        if self.workers > 1 and len(points) > 1:
            results, self.stats, self.disk_stats = self._run_parallel(points)
        else:
            results, self.stats, self.disk_stats = self._run_serial(points)
        self._tally_execution(results)
        return [SweepOutcome(scenario=scenario, result=result)
                for scenario, result in zip(points, results)]

    def predict_one(self, scenario: Scenario) -> SweepOutcome:
        """Evaluate a single scenario in-process (shares the runner caches)."""
        results, self.stats, self.disk_stats = self._run_serial([scenario])
        self._tally_execution(results)
        return SweepOutcome(scenario=scenario, result=results[0])

    def _tally_execution(self, results: Iterable[Any]) -> None:
        for result in results:
            tier = getattr(result, "execution_tier", "")
            if tier:
                self.execution_counts[tier] = (
                    self.execution_counts.get(tier, 0) + 1)
            merge_phases(self.phase_seconds,
                         getattr(result, "phase_seconds", {}))

    # ------------------------------------------------------------------

    def _ensure_executor(self):
        if self._executor is None:
            self._executor = self.backend.compile()
        return self._executor

    def _run_serial(self, points: list[Scenario]):
        executor = self._ensure_executor()
        stats_before = executor.collect_stats()
        if self.cache is not None:
            disk_before = self.cache.stats_snapshot()
        else:
            disk_before = DiskCacheStats()
        results = [_cached_evaluate(self.backend, executor, self.cache, scenario)
                   for scenario in points]
        stats = executor.collect_stats().since(stats_before)
        if self.cache is not None:
            after = self.cache.stats_snapshot()
            disk_stats = DiskCacheStats(hits=after.hits - disk_before.hits,
                                        misses=after.misses - disk_before.misses,
                                        stores=after.stores - disk_before.stores)
        else:
            disk_stats = DiskCacheStats()
        return results, stats, disk_stats

    def _run_parallel(self, points: list[Scenario]):
        workers = min(self.workers, len(points))
        chunk_size = -(-len(points) // workers)
        indexed = list(enumerate(points))
        chunks = [indexed[start:start + chunk_size]
                  for start in range(0, len(indexed), chunk_size)]
        cache_path = str(self.cache.path) if self.cache is not None else None
        payloads = [(self.backend, cache_path, chunk)
                    for chunk in chunks if chunk]
        results: dict[int, Any] = {}
        stats = CacheStats()
        disk_stats = DiskCacheStats()

        def consume(pool: ProcessPoolExecutor) -> None:
            nonlocal stats, disk_stats
            for chunk_results, chunk_stats, chunk_disk in pool.map(_run_chunk, payloads):
                stats = stats.merge(chunk_stats)
                disk_stats = disk_stats.merge(chunk_disk)
                for index, result in chunk_results:
                    results[index] = result

        if self.pool is not None:
            consume(self.pool)
        else:
            with ProcessPoolExecutor(max_workers=len(payloads)) as pool:
                consume(pool)
        return [results[index] for index in range(len(points))], stats, disk_stats
