"""Regeneration of the validation tables (Tables 1-3).

``run_table`` (and the per-table shims ``table1``/``table2``/``table3``)
are thin entrypoints over the declarative Study API: serializable
arguments are folded into a :class:`~repro.experiments.study.StudySpec`
("table1"/"table2"/"table3" are registered studies) and executed through
the shared :class:`~repro.experiments.study.StudyRunner` pipeline.
Non-serializable arguments — an explicit ``rows`` subset, a live
:class:`~repro.experiments.diskcache.SweepDiskCache` — fall back to the
direct implementation, which is also what the registry's executors call,
so both routes are bit-identical by construction.
"""

from __future__ import annotations

import os
from typing import Iterable, Sequence

from repro.errors import ExperimentError
from repro.experiments.diskcache import SweepDiskCache
from repro.experiments.paper_data import PAPER_TABLES, PaperValidationRow
from repro.experiments.runner import (
    ValidationTableResult,
    measure_rows,
    predict_rows,
)
from repro.machines.machine import Machine
from repro.machines.presets import get_machine


def _run_table_impl(table_name: str,
                    rows: Sequence[PaperValidationRow] | None = None,
                    simulate_measurement: bool = True,
                    max_iterations: int = 12,
                    max_pes: int | None = None,
                    workers: int = 1,
                    cache: SweepDiskCache | str | None = None,
                    machine: Machine | str | None = None,
                    context=None,
                    sim_execution: str = "auto",
                    samples: int = 0) -> ValidationTableResult:
    """The direct implementation behind the ``table1``-``table3`` studies."""
    if table_name not in PAPER_TABLES:
        raise ExperimentError(
            f"unknown table {table_name!r}; expected one of {sorted(PAPER_TABLES)}")
    spec = PAPER_TABLES[table_name]
    if machine is None:
        machine = get_machine(spec["machine"])
    elif isinstance(machine, str):
        machine = get_machine(machine)
    selected: Iterable[PaperValidationRow] = rows if rows is not None else spec["rows"]
    selected = [row for row in selected
                if max_pes is None or row.pes <= max_pes]
    if not selected:
        raise ExperimentError(f"no rows selected for {table_name}")

    result = ValidationTableResult(name=table_name, machine_name=machine.name)

    # The whole table is one declared scenario grid, twice over: the
    # prediction column runs through the batch sweep runner with the
    # compiled-prediction backend (hardware model and compiled PSL model
    # built once, exactly as the paper profiles once per problem size per
    # machine), and the "Measurement" column runs through the same runner
    # with the discrete-event simulation backend (simulation plans and the
    # compute cost table shared across rows).
    result.rows = predict_rows(machine, selected, max_iterations=max_iterations,
                               workers=workers, context=context)
    if simulate_measurement:
        result.rows = measure_rows(machine, result.rows,
                                   max_iterations=max_iterations,
                                   workers=workers, cache=cache,
                                   context=context, execution=sim_execution,
                                   samples=samples)
    return result


def run_table(table_name: str,
              rows: Sequence[PaperValidationRow] | None = None,
              simulate_measurement: bool = True,
              max_iterations: int = 12,
              max_pes: int | None = None,
              workers: int = 1,
              cache: SweepDiskCache | str | None = None,
              sim_execution: str = "auto",
              samples: int = 0) -> ValidationTableResult:
    """Reproduce one of the paper's validation tables.

    Parameters
    ----------
    table_name:
        ``"table1"``, ``"table2"`` or ``"table3"``.
    rows:
        Subset of rows to run (defaults to every row of the published table).
    simulate_measurement:
        Whether to run the discrete-event "measurement" for each row (the
        expensive part); with ``False`` only predictions are produced and
        compared against the paper's measured values.
    max_iterations:
        Number of source iterations (12 in the paper; smaller values are
        useful for quick tests, and scale both prediction and measurement).
    max_pes:
        Optional cap on the processor count of the rows to run (for quick
        smoke benchmarks).
    workers:
        Sweep workers for both the prediction grid and the batched
        measurement grid (see :class:`~repro.experiments.sweep.SweepRunner`).
    cache:
        Optional disk-backed sweep cache shared by the measurement grid
        (see :class:`~repro.experiments.diskcache.SweepDiskCache`).
    sim_execution:
        Simulation tier for the measurement grid: ``"auto"`` (trace
        replay for modelled runs), ``"engine"`` (the per-event reference)
        or ``"replay"``; all bit-identical.
    samples:
        When positive, replay each measurement under this many noise
        seeds in one batched pass and attach per-row uncertainty
        statistics (``measured_mean`` / ``measured_std`` /
        ``measured_ci95``); ``measured`` stays the sample-0 value.
    """
    if rows is None and (cache is None or isinstance(cache, (str, os.PathLike))):
        from repro.experiments.study import build_spec, run_study
        spec = build_spec(table_name, workers=workers,
                          cache_dir=str(cache) if cache is not None else None,
                          simulate_measurement=simulate_measurement,
                          max_iterations=max_iterations,
                          max_pes=max_pes,
                          sim_execution=sim_execution,
                          samples=samples)
        return run_study(spec).payload
    return _run_table_impl(table_name, rows=rows,
                           simulate_measurement=simulate_measurement,
                           max_iterations=max_iterations, max_pes=max_pes,
                           workers=workers, cache=cache,
                           sim_execution=sim_execution,
                           samples=samples)


def table1(simulate_measurement: bool = True,
           max_iterations: int = 12,
           max_pes: int | None = None,
           workers: int = 1,
           cache: SweepDiskCache | str | None = None) -> ValidationTableResult:
    """Reproduce Table 1 (Pentium-3 / Myrinet cluster).

    Deprecated shim over the Study API: prefer
    ``repro.api.run_study("table1")``.
    """
    return run_table("table1", simulate_measurement=simulate_measurement,
                     max_iterations=max_iterations, max_pes=max_pes,
                     workers=workers, cache=cache)


def table2(simulate_measurement: bool = True,
           max_iterations: int = 12,
           max_pes: int | None = None,
           workers: int = 1,
           cache: SweepDiskCache | str | None = None) -> ValidationTableResult:
    """Reproduce Table 2 (Opteron / Gigabit Ethernet cluster).

    Deprecated shim over the Study API: prefer
    ``repro.api.run_study("table2")``.
    """
    return run_table("table2", simulate_measurement=simulate_measurement,
                     max_iterations=max_iterations, max_pes=max_pes,
                     workers=workers, cache=cache)


def table3(simulate_measurement: bool = True,
           max_iterations: int = 12,
           max_pes: int | None = None,
           workers: int = 1,
           cache: SweepDiskCache | str | None = None) -> ValidationTableResult:
    """Reproduce Table 3 (SGI Altix Itanium-2 SMP).

    Deprecated shim over the Study API: prefer
    ``repro.api.run_study("table3")``.
    """
    return run_table("table3", simulate_measurement=simulate_measurement,
                     max_iterations=max_iterations, max_pes=max_pes,
                     workers=workers, cache=cache)


def rows_for_indices(table_name: str,
                     indices: Iterable[int]) -> list[PaperValidationRow]:
    """Resolve published-row indices (a table spec's ``rows`` parameter).

    Row indices are the table studies' shard axis: a
    :class:`~repro.experiments.sharding.ShardPlanner` assigns each shard a
    subset of indices into the published table, and this helper turns them
    back into :class:`PaperValidationRow` objects for the implementation.
    """
    if table_name not in PAPER_TABLES:
        raise ExperimentError(
            f"unknown table {table_name!r}; expected one of {sorted(PAPER_TABLES)}")
    published = PAPER_TABLES[table_name]["rows"]
    selected = []
    for index in indices:
        if not isinstance(index, int) or isinstance(index, bool) \
                or not 0 <= index < len(published):
            raise ExperimentError(
                f"{table_name} row index {index!r} out of range; the "
                f"published table has rows 0..{len(published) - 1}")
        selected.append(published[index])
    return selected


def validation_row_for(table_name: str, pes: int) -> PaperValidationRow:
    """Convenience lookup of a published row by processor count."""
    spec = PAPER_TABLES[table_name]
    for row in spec["rows"]:
        if row.pes == pes:
            return row
    raise ExperimentError(f"{table_name} has no row with {pes} processors")
