"""Regeneration of the validation tables (Tables 1-3)."""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import ExperimentError
from repro.experiments.diskcache import SweepDiskCache
from repro.experiments.paper_data import PAPER_TABLES, PaperValidationRow
from repro.experiments.runner import (
    ValidationTableResult,
    measure_rows,
    predict_rows,
)
from repro.machines.presets import get_machine


def run_table(table_name: str,
              rows: Sequence[PaperValidationRow] | None = None,
              simulate_measurement: bool = True,
              max_iterations: int = 12,
              max_pes: int | None = None,
              workers: int = 1,
              cache: SweepDiskCache | str | None = None) -> ValidationTableResult:
    """Reproduce one of the paper's validation tables.

    Parameters
    ----------
    table_name:
        ``"table1"``, ``"table2"`` or ``"table3"``.
    rows:
        Subset of rows to run (defaults to every row of the published table).
    simulate_measurement:
        Whether to run the discrete-event "measurement" for each row (the
        expensive part); with ``False`` only predictions are produced and
        compared against the paper's measured values.
    max_iterations:
        Number of source iterations (12 in the paper; smaller values are
        useful for quick tests, and scale both prediction and measurement).
    max_pes:
        Optional cap on the processor count of the rows to run (for quick
        smoke benchmarks).
    workers:
        Sweep workers for both the prediction grid and the batched
        measurement grid (see :class:`~repro.experiments.sweep.SweepRunner`).
    cache:
        Optional disk-backed sweep cache shared by the measurement grid
        (see :class:`~repro.experiments.diskcache.SweepDiskCache`).
    """
    if table_name not in PAPER_TABLES:
        raise ExperimentError(
            f"unknown table {table_name!r}; expected one of {sorted(PAPER_TABLES)}")
    spec = PAPER_TABLES[table_name]
    machine = get_machine(spec["machine"])
    selected: Iterable[PaperValidationRow] = rows if rows is not None else spec["rows"]
    selected = [row for row in selected
                if max_pes is None or row.pes <= max_pes]
    if not selected:
        raise ExperimentError(f"no rows selected for {table_name}")

    result = ValidationTableResult(name=table_name, machine_name=machine.name)

    # The whole table is one declared scenario grid, twice over: the
    # prediction column runs through the batch sweep runner with the
    # compiled-prediction backend (hardware model and compiled PSL model
    # built once, exactly as the paper profiles once per problem size per
    # machine), and the "Measurement" column runs through the same runner
    # with the discrete-event simulation backend (simulation plans and the
    # compute cost table shared across rows).
    result.rows = predict_rows(machine, selected, max_iterations=max_iterations,
                               workers=workers)
    if simulate_measurement:
        result.rows = measure_rows(machine, result.rows,
                                   max_iterations=max_iterations,
                                   workers=workers, cache=cache)
    return result


def table1(**kwargs) -> ValidationTableResult:
    """Reproduce Table 1 (Pentium-3 / Myrinet cluster)."""
    return run_table("table1", **kwargs)


def table2(**kwargs) -> ValidationTableResult:
    """Reproduce Table 2 (Opteron / Gigabit Ethernet cluster)."""
    return run_table("table2", **kwargs)


def table3(**kwargs) -> ValidationTableResult:
    """Reproduce Table 3 (SGI Altix Itanium-2 SMP)."""
    return run_table("table3", **kwargs)


def validation_row_for(table_name: str, pes: int) -> PaperValidationRow:
    """Convenience lookup of a published row by processor count."""
    spec = PAPER_TABLES[table_name]
    for row in spec["rows"]:
        if row.pes == pes:
            return row
    raise ExperimentError(f"{table_name} has no row with {pes} processors")
