"""Uncertainty quantification: multi-seed replay of the registered studies.

Every "measurement" this repository produces is one draw from the noise
model — one OS/network jitter stream applied to one simulated run.  The
batched trace replay (:meth:`repro.simmpi.trace.CompiledTrace.replay_batch`)
makes drawing *many* measurements nearly free: the event stream is
recorded once and ``S`` independently seeded noise streams advance through
one vectorised max-plus pass.  This module packages that capability as

* the registered ``noise-sensitivity`` study — re-runs the scenario grid
  of any (or every) registered study through the simulation backend at
  ``samples`` noise seeds and tabulates mean/std/CI95 per scenario, and
* :func:`calibrate_noise` — fits the noise model's jitter amplitudes
  against the residual spread of a published validation table
  (:mod:`repro.experiments.paper_data`) using the profiling toolbox's
  line fit (:mod:`repro.profiling.curvefit`).

Sample 0 of every scenario runs at the seed the target study itself would
use, so the headline ``elapsed_s`` column is bit-identical to the
single-run measurement and the uncertainty block is strictly additive.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass, field, replace
from typing import Any

from repro.errors import ExperimentError
from repro.experiments.backends import SimulationBackend
from repro.experiments.paper_data import PAPER_TABLES
from repro.experiments.sweep import Scenario, ScenarioSweep
from repro.profiling.curvefit import fit_single_line
from repro.simnet.noise import NoiseModel
from repro.sweep3d.input import Sweep3DInput

# ---------------------------------------------------------------------------
# Payload types
# ---------------------------------------------------------------------------


@dataclass
class ScenarioUncertainty:
    """Multi-seed statistics of one scenario of a target study.

    Scenarios above the study's ``max_processors`` cap are kept (so the
    table never silently shrinks) but carry ``samples == 0`` and ``None``
    statistics.
    """

    label: str
    px: int
    py: int
    samples: int
    elapsed: float | None = None
    elapsed_samples: tuple = ()
    mean: float | None = None
    std: float | None = None
    ci95: float | None = None

    @property
    def pes(self) -> int:
        return self.px * self.py

    @property
    def rel_std_pct(self) -> float | None:
        """Sample std as a percentage of the sample mean."""
        if not self.mean or self.std is None:
            return None
        return self.std / self.mean * 100.0


@dataclass
class StudyUncertainty:
    """The uncertainty table of one target study."""

    study: str
    machine_name: str
    scenarios: list[ScenarioUncertainty] = field(default_factory=list)

    def sampled(self) -> list[ScenarioUncertainty]:
        return [entry for entry in self.scenarios if entry.samples]

    @property
    def max_rel_std_pct(self) -> float:
        spreads = [entry.rel_std_pct for entry in self.sampled()
                   if entry.rel_std_pct is not None]
        return max(spreads) if spreads else 0.0


@dataclass
class NoiseSensitivityResult:
    """The ``noise-sensitivity`` study's payload: one block per target."""

    samples: int
    max_processors: int
    studies: list[StudyUncertainty] = field(default_factory=list)
    #: ``None``: the targets ran on their own (different) machines.
    machine_name: str | None = None

    def study_for(self, name: str) -> StudyUncertainty:
        for entry in self.studies:
            if entry.study == name:
                return entry
        raise ExperimentError(
            f"noise-sensitivity result has no target study {name!r}")

    def describe(self) -> str:
        lines = [f"noise sensitivity at {self.samples} sample(s) per scenario"]
        for entry in self.studies:
            sampled = entry.sampled()
            skipped = len(entry.scenarios) - len(sampled)
            line = (f"  {entry.study} on {entry.machine_name}: "
                    f"{len(sampled)} scenario(s), "
                    f"max spread {entry.max_rel_std_pct:.3f}% of mean")
            if skipped:
                line += (f" ({skipped} skipped by the max_processors/"
                         "max_scenarios caps)")
            lines.append(line)
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Target-study scenario derivation
# ---------------------------------------------------------------------------


def _deck_variables(deck: Sweep3DInput) -> dict[str, int]:
    """Scenario variables pinning every integer shape parameter of a deck.

    The simulation backend instantiates scenarios from a *named* standard
    deck; overriding all of ``it/jt/kt/mk/mmi/sn/max_iterations`` makes the
    base name irrelevant (the named decks only preset those same shape
    parameters; the physics scalars are the shared dataclass defaults).
    """
    return {"it": deck.it, "jt": deck.jt, "kt": deck.kt, "mk": deck.mk,
            "mmi": deck.mmi, "sn": deck.sn,
            "max_iterations": deck.max_iterations}


def _figure_scenarios(figure: str, counts) -> list[Scenario]:
    from repro.experiments.figures import _deck_for_processors
    from repro.experiments.study import SPECULATIVE_STUDIES
    if figure not in SPECULATIVE_STUDIES:
        raise ExperimentError(
            f"unknown speculative study {figure!r}; "
            f"known: {sorted(SPECULATIVE_STUDIES)}")
    study = SPECULATIVE_STUDIES[figure]
    scenarios = []
    for nranks in counts:
        deck, px, py = _deck_for_processors(study, int(nranks))
        variables: dict[str, Any] = {"px": px, "py": py}
        variables.update(_deck_variables(deck))
        scenarios.append(Scenario(label=f"{figure} @{int(nranks)}",
                                  variables=variables))
    return scenarios


def _table_scenarios(table_name: str, params) -> list[Scenario]:
    from repro.experiments.tables import rows_for_indices
    indices = params.get("rows")
    if indices is not None:
        rows = rows_for_indices(table_name, indices)
    else:
        rows = list(PAPER_TABLES[table_name]["rows"])
    max_pes = params.get("max_pes")
    rows = [row for row in rows if max_pes is None or row.pes <= max_pes]
    # Matching the measurement grid of the table studies exactly — the
    # validation deck, per-row seed ``row.pes`` — makes sample 0 of every
    # scenario bit-identical to the table's "Measurement" column.
    return [
        Scenario(label=f"{row.data_size} on {row.px}x{row.py}",
                 variables={"px": row.px, "py": row.py, "seed": row.pes,
                            "max_iterations": params["max_iterations"]})
        for row in rows
    ]


def _target_scenarios(target: str, params) -> list[Scenario]:
    """The simulation scenario grid of one target study's resolved params."""
    if target in PAPER_TABLES:
        return _table_scenarios(target, params)
    if target in ("figure8", "figure9"):
        # The published figures sweep achieved-rate factors too, but the
        # simulated measurement does not depend on the analytic flop-rate
        # override, so each processor count is sampled once.
        counts = params["processor_counts"]
        if counts is None:
            from repro.experiments.study import SPECULATIVE_STUDIES
            counts = SPECULATIVE_STUDIES[target].processor_counts
        return _figure_scenarios(target, counts)
    if target in ("scaling", "agreement"):
        return _figure_scenarios(params["figure"], params["processor_counts"])
    if target == "blocking":
        px, py = int(params["px"]), int(params["py"])
        nx, ny, nz = (int(value) for value in params["cells_per_processor"])
        scenarios = []
        for mk in params["mk_values"]:
            for mmi in params["mmi_values"]:
                deck = Sweep3DInput(it=nx * px, jt=ny * py, kt=nz,
                                    mk=int(mk), mmi=int(mmi), sn=6,
                                    max_iterations=params["max_iterations"],
                                    label="blocking-study")
                variables: dict[str, Any] = {"px": px, "py": py}
                variables.update(_deck_variables(deck))
                scenarios.append(Scenario(label=f"mk={int(mk)} mmi={int(mmi)}",
                                          variables=variables))
        return scenarios
    if target == "steady-scaling":
        from repro.experiments.steadyscale import steady_scaling_scenarios
        return steady_scaling_scenarios(params)
    if target == "ablation":
        table_name = params["table"]
        if table_name not in PAPER_TABLES:
            raise ExperimentError(
                f"unknown table {table_name!r}; "
                f"expected one of {sorted(PAPER_TABLES)}")
        table_params = {"rows": (params["row_index"],),
                        "max_pes": None,
                        "max_iterations": params["max_iterations"]}
        return _table_scenarios(table_name, table_params)
    raise ExperimentError(
        f"the noise-sensitivity study cannot derive scenarios for {target!r}")


def _target_machine(target: str, params) -> str:
    from repro.experiments.study import get_study
    if target == "ablation":
        return PAPER_TABLES[params["table"]]["machine"]
    machine = get_study(target).default_machine
    if machine is None:
        raise ExperimentError(
            f"target study {target!r} declares no default machine")
    return machine


def _scenario_cost(scenario) -> float:
    """A relative event-count proxy for one scenario (cheapest-first caps).

    The simulated event stream grows with the rank count, the source
    iterations and the pipeline stages per octant sweep (``kt/mk`` k-blocks
    times ``6/mmi`` angle blocks); absent overrides fall back to the
    validation deck's shape.
    """
    variables = scenario.variables
    ranks = int(variables["px"]) * int(variables["py"])
    iterations = int(variables.get("max_iterations", 12))
    kt = int(variables.get("kt", 50))
    mk = int(variables.get("mk", 10))
    mmi = int(variables.get("mmi", 3))
    return ranks * iterations * (kt / max(mk, 1)) * (6.0 / max(mmi, 1))


def _run_noise_sensitivity(spec, context) -> NoiseSensitivityResult:
    from repro.experiments.study import build_spec, get_study, study_names
    params = spec.resolved_params()
    samples = int(params["samples"])
    if samples < 1:
        raise ExperimentError("the noise-sensitivity study needs samples >= 1")
    max_processors = int(params["max_processors"])
    if max_processors < 1:
        raise ExperimentError("max_processors must be >= 1")
    iteration_cap = params["iteration_cap"]
    max_scenarios = params["max_scenarios"]
    if max_scenarios is not None and int(max_scenarios) < 1:
        raise ExperimentError("max_scenarios must be >= 1 (or unset)")
    target = params["target"]
    if target == "all":
        targets = [name for name in study_names() if name != spec.study]
    else:
        if target == spec.study:
            raise ExperimentError(
                "the noise-sensitivity study cannot target itself")
        get_study(target)
        targets = [target]

    result = NoiseSensitivityResult(samples=samples,
                                    max_processors=max_processors)
    for name in targets:
        target_spec = build_spec(name, machine=spec.machine)
        if params["target_smoke"]:
            target_spec = target_spec.smoke()
        target_params = target_spec.resolved_params()
        machine_name = spec.machine or _target_machine(name, target_params)
        machine = context.machine(machine_name)
        block = StudyUncertainty(study=name, machine_name=machine_name)
        scenarios = _target_scenarios(name, target_params)
        runnable = []
        seen = set()
        for scenario in scenarios:
            if iteration_cap is not None:
                iterations = int(scenario.variables.get("max_iterations", 12))
                scenario.variables["max_iterations"] = min(iterations,
                                                           int(iteration_cap))
            px = int(scenario.variables["px"])
            py = int(scenario.variables["py"])
            identity = tuple(sorted(scenario.variables.items()))
            if identity in seen:
                continue
            seen.add(identity)
            entry = ScenarioUncertainty(label=scenario.label, px=px, py=py,
                                        samples=0)
            block.scenarios.append(entry)
            if px * py <= max_processors:
                runnable.append((entry, scenario))
        if max_scenarios is not None and len(runnable) > int(max_scenarios):
            # Keep the cheapest scenarios (event-count proxy); the rest
            # stay listed with samples == 0 like the max_processors cap,
            # so the cap is never silent.
            runnable.sort(key=lambda pair: _scenario_cost(pair[1]))
            runnable = runnable[:int(max_scenarios)]
        if runnable:
            backend = SimulationBackend(machine, deck="validation",
                                        samples=samples)
            runner = context.backend_runner(backend, workers=spec.workers)
            sweep = ScenarioSweep([scenario for _, scenario in runnable])
            for (entry, _), outcome in zip(runnable, runner.run(sweep)):
                measurement = outcome.result
                entry.samples = measurement.n_samples
                entry.elapsed = measurement.elapsed_time
                entry.elapsed_samples = tuple(measurement.elapsed_samples)
                entry.mean = measurement.elapsed_mean
                entry.std = measurement.elapsed_std
                entry.ci95 = measurement.elapsed_ci95
        result.studies.append(block)
    if len({block.machine_name for block in result.studies}) == 1:
        result.machine_name = result.studies[0].machine_name
    return result


def _tabulate_noise(payload) -> tuple[list[str], list[dict[str, Any]]]:
    columns = ["study", "machine", "label", "px", "py", "pes", "samples",
               "elapsed_s", "elapsed_mean_s", "elapsed_std_s",
               "elapsed_ci95_s"]
    rows = [{
        "study": block.study,
        "machine": block.machine_name,
        "label": entry.label,
        "px": entry.px,
        "py": entry.py,
        "pes": entry.pes,
        "samples": entry.samples,
        "elapsed_s": entry.elapsed,
        "elapsed_mean_s": entry.mean,
        "elapsed_std_s": entry.std,
        "elapsed_ci95_s": entry.ci95,
    } for block in payload.studies for entry in block.scenarios]
    return columns, rows


def _register() -> None:
    from repro.experiments.study import register_study

    @register_study(
        "noise-sensitivity",
        title="Noise sensitivity — multi-seed uncertainty of every study",
        machine=None, backend="simulate",
        defaults={"target": "all", "samples": 16, "max_processors": 512,
                  "target_smoke": False, "iteration_cap": None,
                  "max_scenarios": None},
        smoke={"target_smoke": True, "samples": 2, "max_processors": 16,
               "iteration_cap": 1, "max_scenarios": 2},
        tabulate=_tabulate_noise,
    )
    def _study_noise_sensitivity(spec, context):
        return _run_noise_sensitivity(spec, context)


_register()


# ---------------------------------------------------------------------------
# Noise calibration against the published tables
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class NoiseCalibration:
    """Jitter amplitudes fitted to a published validation table.

    The paper attributes its residual prediction error "largely to
    background processes, network load and minor fluctuations" — this is
    the inverse problem: read the published measured/predicted columns,
    remove the systematic component with a least-squares line
    (:func:`repro.profiling.curvefit.fit_single_line`: measured as a
    linear function of predicted), and moment-match the noise model's
    log-normal jitter to the relative spread of what remains.  The split
    between compute and network jitter keeps the target machine's
    configured ratio, since a single table cannot separate the two.
    """

    table: str
    machine_name: str
    compute_jitter: float
    network_jitter: float
    #: Relative residual spread of the detrended measured column.
    residual_rel_std: float
    #: The systematic-trend line (measured ~ intercept + slope*predicted).
    intercept: float
    slope: float
    n_rows: int

    def noise_model(self, seed: int = 0,
                    base: NoiseModel | None = None) -> NoiseModel:
        """A noise model carrying the calibrated jitter amplitudes.

        ``base`` supplies the non-fitted parameters (daemon noise); by
        default they are the :class:`~repro.simnet.noise.NoiseModel`
        defaults.
        """
        model = base if base is not None else NoiseModel(seed=seed)
        return replace(model, seed=seed,
                       compute_jitter=self.compute_jitter,
                       network_jitter=self.network_jitter)

    def machine_overrides(self) -> dict[str, float]:
        """Keyword overrides for a machine preset factory."""
        return {"compute_jitter": self.compute_jitter,
                "network_jitter": self.network_jitter}


def calibrate_noise(table_name: str, machine=None) -> NoiseCalibration:
    """Fit jitter amplitudes to one published validation table.

    ``machine`` (a :class:`~repro.machines.machine.Machine` or preset
    name) defaults to the table's own machine and only contributes the
    compute/network jitter *ratio* the calibrated amplitudes preserve.
    """
    if table_name not in PAPER_TABLES:
        raise ExperimentError(
            f"unknown table {table_name!r}; expected one of {sorted(PAPER_TABLES)}")
    spec = PAPER_TABLES[table_name]
    rows = [row for row in spec["rows"] if row.measured > 0]
    if len(rows) < 2:
        raise ExperimentError(
            f"{table_name} has too few measured rows to calibrate noise")
    from repro.machines.presets import get_machine
    if machine is None:
        machine = get_machine(spec["machine"])
    elif isinstance(machine, str):
        machine = get_machine(machine)

    predicted = [row.predicted for row in rows]
    measured = [row.measured for row in rows]
    trend = fit_single_line(predicted, measured)
    residual_rel = [
        (value - trend.evaluate(pred)) / value
        for pred, value in zip(predicted, measured)
    ]
    rel_std = statistics.stdev(residual_rel)
    # Moment match: a run is a chain of log-normally jittered segments, so
    # to first order the relative spread of the total equals the per-site
    # sigma scale.  One table cannot separate compute from network noise;
    # keep the machine's configured ratio between the two amplitudes.
    base_compute = machine.compute_jitter
    base_network = machine.network_jitter
    if base_compute > 0:
        ratio = base_network / base_compute
    else:
        ratio = 1.0 if base_network == 0 else math.inf
    if math.isinf(ratio):
        compute_jitter = 0.0
        network_jitter = rel_std
    else:
        compute_jitter = rel_std
        network_jitter = rel_std * ratio
    return NoiseCalibration(
        table=table_name,
        machine_name=machine.name,
        compute_jitter=float(compute_jitter),
        network_jitter=float(network_jitter),
        residual_rel_std=float(rel_std),
        intercept=float(trend.B),
        slope=float(trend.C),
        n_rows=len(rows),
    )
