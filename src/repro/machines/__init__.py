"""Machine definitions: the clusters of the paper as simulated systems.

A :class:`~repro.machines.machine.Machine` bundles a processor model, a
cluster topology and a noise model, and knows how to

* derive its HMCL hardware object by running the PAPI-substitute profiler
  and the MPI micro-benchmarks against its own simulated hardware
  (:meth:`~repro.machines.machine.Machine.hardware_model`), and
* produce a "measured" run time by executing the parallel sweep on the
  discrete-event cluster simulator
  (:meth:`~repro.machines.machine.Machine.simulate`).

Four machines are registered, mirroring Section 5 and Section 6 of the
paper: the Pentium-3/Myrinet cluster, the Opteron/Gigabit-Ethernet cluster,
the SGI Altix, and the hypothetical 8000-processor Opteron/Myrinet system
of the speculative study.
"""

from repro.machines.machine import Machine
from repro.machines.presets import (
    MACHINE_PRESETS,
    altix_itanium2,
    get_machine,
    hypothetical_opteron_myrinet,
    opteron_gige,
    pentium3_myrinet,
)

__all__ = [
    "Machine",
    "MACHINE_PRESETS",
    "get_machine",
    "pentium3_myrinet",
    "opteron_gige",
    "altix_itanium2",
    "hypothetical_opteron_myrinet",
]
