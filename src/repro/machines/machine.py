"""The :class:`Machine` abstraction: one simulated cluster system."""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace

from repro import units
from repro.core.hmcl.model import CpuCostModel, HardwareModel, MpiCostModel
from repro.profiling.mpibench import MpiBenchmark
from repro.profiling.papi import FlopProfile, FlopProfiler
from repro.simnet.link import LinkModel, QuantizedLink
from repro.simnet.noise import NoiseModel
from repro.simnet.topology import ClusterTopology
from repro.simproc.processor import ProcessorModel, QuantizedProcessor
from repro.sweep3d.driver import SimulationPlan, Sweep3DRunResult, run_parallel_sweep
from repro.sweep3d.input import Sweep3DInput
from repro.sweep3d.parallel import SweepCostTable


@dataclass
class Machine:
    """A complete simulated cluster: processors + interconnect + noise.

    Parameters
    ----------
    name:
        Registry name (e.g. ``"pentium3-myrinet"``).
    description:
        Human readable description used in reports.
    processor:
        Single-processor performance model.
    topology:
        Node/interconnect layout.
    paper_flop_rate_mflops:
        The achieved rate the paper reports for this machine (for
        side-by-side comparison in EXPERIMENTS.md); not used in computations.
    fixed_flop_rate_mflops:
        When set, the HMCL cpu section uses this rate instead of the
        profiled one.  The speculative study uses 340 MFLOPS, following the
        paper.
    noise_seed:
        Base seed for the measurement noise; each simulated run offsets it
        so different configurations see independent noise.
    """

    name: str
    description: str
    processor: ProcessorModel
    topology: ClusterTopology
    paper_flop_rate_mflops: float | None = None
    fixed_flop_rate_mflops: float | None = None
    noise_seed: int = 2006
    compute_jitter: float = 0.008
    network_jitter: float = 0.02
    #: Mean interval between background-daemon interruptions (seconds of
    #: virtual time) and their mean duration; together they impose the
    #: ~1-3 % background-load overhead the paper attributes its residual
    #: errors to.
    daemon_interval: float = 0.06
    daemon_duration: float = 1.2e-3

    _benchmark_cache: dict[bool, MpiCostModel] = field(default_factory=dict, repr=False)
    _profile_cache: dict[tuple[int, int, int], FlopProfile] = field(default_factory=dict,
                                                                    repr=False)
    #: Plans memoised by :meth:`simulate` for the replay tiers, so repeated
    #: calls for one configuration reuse the compiled trace instead of
    #: re-recording it per call.
    _plan_cache: dict[tuple, SimulationPlan] = field(default_factory=dict, repr=False)

    def __getstate__(self):
        # Machines travel to multiprocessing workers inside a pickled
        # SimulationBackend; memoised plans (and their compiled traces)
        # are cheap to rebuild and would only bloat that payload.
        state = dict(self.__dict__)
        state["_plan_cache"] = {}
        return state

    # ------------------------------------------------------------------
    # Hardware-layer measurement campaigns
    # ------------------------------------------------------------------

    def profile_flop_rate(self, deck: Sweep3DInput, px: int, py: int) -> FlopProfile:
        """Profile the achieved flop rate for the per-processor sub-domain."""
        nx, ny = -(-deck.it // px), -(-deck.jt // py)
        key = (nx, ny, deck.kt)
        if key not in self._profile_cache:
            self._profile_cache[key] = FlopProfiler(self.processor).profile(
                deck, nx=nx, ny=ny)
        return self._profile_cache[key]

    def mpi_cost_model(self, inter_node: bool = True) -> MpiCostModel:
        """Fit the A-E communication parameters from simulated micro-benchmarks."""
        if inter_node not in self._benchmark_cache:
            benchmark = MpiBenchmark(self.topology, noise=NoiseModel.disabled())
            data = benchmark.run(inter_node=inter_node)
            fits = data.fit()
            self._benchmark_cache[inter_node] = MpiCostModel(
                send=fits["send"], recv=fits["recv"], pingpong=fits["pingpong"])
        return self._benchmark_cache[inter_node]

    def hardware_model(self, deck: Sweep3DInput, px: int, py: int,
                       legacy_cpu: bool = False,
                       flop_rate_override: float | None = None) -> HardwareModel:
        """Build the HMCL hardware object for a given workload.

        Parameters
        ----------
        deck, px, py:
            Workload whose per-processor problem size determines the
            profiled achieved rate (the paper re-profiles per problem size).
        legacy_cpu:
            Use the legacy per-opcode benchmark cpu section instead of the
            coarse achieved-rate section (the ablation of Section 4).
        flop_rate_override:
            Use an explicit achieved rate in flop/s (the speculative study's
            340 MFLOPS and its +25 %/+50 % variants).
        """
        if legacy_cpu:
            cpu = CpuCostModel.from_opcode_benchmark(self.processor.opcode_benchmark())
        elif flop_rate_override is not None:
            cpu = CpuCostModel.from_achieved_rate(flop_rate_override)
        elif self.fixed_flop_rate_mflops is not None:
            cpu = CpuCostModel.from_achieved_rate(
                self.fixed_flop_rate_mflops * units.MFLOPS)
        else:
            profile = self.profile_flop_rate(deck, px, py)
            cpu = CpuCostModel.from_achieved_rate(profile.achieved_flop_rate)
        return HardwareModel(
            name=self.name,
            cpu=cpu,
            mpi=self.mpi_cost_model(inter_node=True),
            processors_per_node=self.topology.processors_per_node,
            description=self.description,
        )

    # ------------------------------------------------------------------
    # Simulated measurement
    # ------------------------------------------------------------------

    def noise_model(self, seed_offset: int = 0) -> NoiseModel:
        """Noise model for one simulated run (seeded, reproducible)."""
        return NoiseModel(seed=self.noise_seed + seed_offset,
                          compute_jitter=self.compute_jitter,
                          network_jitter=self.network_jitter,
                          daemon_interval=self.daemon_interval,
                          daemon_duration=self.daemon_duration)

    def simulate(self, deck: Sweep3DInput, px: int, py: int,
                 numeric: bool = False, seed_offset: int = 0,
                 with_noise: bool = True,
                 execution: str = "engine",
                 samples: int | None = None,
                 trace_cache=None) -> Sweep3DRunResult:
        """Execute the parallel sweep on the discrete-event simulator.

        This produces the "Measurement" column of the validation tables.
        ``execution`` selects the tier: ``"engine"`` (default) is the
        per-point reference path; ``"replay"``/``"auto"`` lower the
        configuration into a :class:`~repro.sweep3d.driver.SimulationPlan`
        and resolve the run from its compiled trace
        (:mod:`repro.simmpi.trace`), bit-identically.  ``samples`` (with a
        replay-capable ``execution``) draws that many noise seeds in one
        batched replay and returns a
        :class:`~repro.sweep3d.driver.Sweep3DSampleSet` instead; sample 0
        uses ``seed_offset``'s own noise stream, so its run is
        bit-identical to the single-run path.
        """
        noise = self.noise_model(seed_offset) if with_noise else NoiseModel.disabled()
        if execution != "engine" or samples:
            key = (deck, px, py, numeric)
            plan = self._plan_cache.get(key)
            if plan is None:
                plan = self._plan_cache[key] = self.simulation_plan(
                    deck, px, py, numeric=numeric, trace_cache=trace_cache)
            elif plan.trace_cache is None and trace_cache is not None:
                # A cached plan built without a trace cache can still adopt
                # one — the cache only affects where the trace comes from.
                plan.trace_cache = trace_cache
            return plan.run(noise=noise, mode=execution, samples=samples)
        return run_parallel_sweep(deck, px, py, topology=self.topology,
                                  processor=self.processor, noise=noise,
                                  numeric=numeric)

    def simulation_plan(self, deck: Sweep3DInput, px: int, py: int,
                        numeric: bool = False,
                        charge_compute: bool = True,
                        convergence_collectives: bool = True,
                        cost_table: SweepCostTable | None = None,
                        trace_cache=None) -> SimulationPlan:
        """Lower one configuration into a reusable :class:`SimulationPlan`.

        The plan re-executes across noise seeds without rebuilding the
        engine, decomposition or compute cost table;
        ``plan.run(noise=self.noise_model(offset))`` is bit-identical to
        :meth:`simulate` with the same ``seed_offset``.  ``trace_cache``
        (a :class:`~repro.simmpi.tracecache.TraceDiskCache`) lets the
        plan serve/persist its compiled trace across processes.
        """
        return SimulationPlan(deck, px, py, topology=self.topology,
                              processor=self.processor, numeric=numeric,
                              charge_compute=charge_compute,
                              convergence_collectives=convergence_collectives,
                              cost_table=cost_table, trace_cache=trace_cache)

    def quantized(self, time_quantum: float = 2.0 ** -30,
                  name: str | None = None,
                  description: str | None = None) -> "Machine":
        """A copy of this machine on a dyadic time grid of ``time_quantum``.

        Every component that prices a duration is wrapped in its quantized
        variant (:class:`~repro.simproc.processor.QuantizedProcessor` for
        compute charges, :class:`~repro.simnet.link.QuantizedLink` for
        wire times, CPU overheads and collective costs), so every modelled
        event duration becomes an exact binary multiple of the quantum.
        That is the exactness precondition of the steady-state execution
        tier (:mod:`repro.simmpi.steady`): on a quantized machine the
        max-plus replay is exact integer arithmetic and periodic traces
        can be extrapolated bit-identically in O(period).

        The default quantum ``2**-30`` s (≈ 0.93 ns) is orders of
        magnitude below every modelled latency and compute charge, so
        results differ from the continuous parent only below the physical
        fidelity of the model.  The returned machine has fresh caches and
        a distinct name/fingerprint, so disk-cache entries never cross
        between the continuous and quantized variants.
        """

        def quantize_link(link: LinkModel | None) -> LinkModel | None:
            if link is None:
                return None
            if isinstance(link, QuantizedLink):
                return replace(link, time_quantum=time_quantum)
            values = {f.name: getattr(link, f.name) for f in fields(LinkModel)}
            return QuantizedLink(time_quantum=time_quantum, **values)

        processor = self.processor
        if isinstance(processor, QuantizedProcessor):
            processor = replace(processor, time_quantum=time_quantum)
        else:
            values = {f.name: getattr(processor, f.name)
                      for f in fields(ProcessorModel)}
            processor = QuantizedProcessor(time_quantum=time_quantum, **values)
        topology = replace(
            self.topology,
            inter_node=quantize_link(self.topology.inter_node),
            intra_node=quantize_link(self.topology.intra_node))
        return replace(
            self,
            name=name or f"{self.name}-quantized",
            description=description or (f"{self.description} "
                                        f"[tick-quantized, {time_quantum:g}s grid]"),
            processor=processor,
            topology=topology,
            _benchmark_cache={}, _profile_cache={}, _plan_cache={})

    def can_host(self, nranks: int) -> bool:
        """Whether the physical machine has at least ``nranks`` processors."""
        limit = self.topology.rank_limit
        return limit is None or nranks <= limit

    def describe(self) -> str:
        return (f"{self.name}: {self.description}\n"
                f"  processor: {self.processor.describe()}\n"
                f"  network:   {self.topology.describe()}")
