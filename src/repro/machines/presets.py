"""The four machines of the paper, as a registry of :class:`Machine` presets."""

from __future__ import annotations

from typing import Callable

from repro.errors import MachineNotFoundError
from repro.machines.machine import Machine
from repro.simnet.presets import (
    altix_topology,
    hypothetical_cluster_topology,
    opteron_cluster_topology,
    pentium3_cluster_topology,
)
from repro.simproc.presets import itanium2_1600, opteron_2000, pentium3_1400


def pentium3_myrinet() -> Machine:
    """The Intel Pentium-3 / Myrinet 2000 validation cluster (Table 1).

    64 dual-processor nodes, 1.4 GHz Pentium III, GNU C 2.96 ``-O1``,
    x87 floating point; the paper measures 110 MFLOPS achieved for the
    50x50x50 cells-per-processor problem.
    """
    return Machine(
        name="pentium3-myrinet",
        description="64 x dual Intel Pentium III 1.4GHz, Myrinet 2000 (Table 1)",
        processor=pentium3_1400(),
        topology=pentium3_cluster_topology(),
        paper_flop_rate_mflops=110.0,
        noise_seed=101,
    )


def opteron_gige() -> Machine:
    """The AMD Opteron / Gigabit Ethernet validation cluster (Table 2).

    16 dual-processor nodes, 2 GHz Opteron, GNU C 3.4.4 ``-O1
    -mfpmath=387``; the paper measures 350 MFLOPS achieved.
    """
    return Machine(
        name="opteron-gige",
        description="16 x dual AMD Opteron 2GHz, Gigabit Ethernet (Table 2)",
        processor=opteron_2000(),
        topology=opteron_cluster_topology(),
        paper_flop_rate_mflops=350.0,
        noise_seed=202,
    )


def altix_itanium2() -> Machine:
    """The SGI Altix 56-way Itanium-2 shared-memory system (Table 3).

    A single 56-processor node with the NUMAlink-4 interconnect, Intel C
    8.1 ``-O1``; the paper measures 225 MFLOPS achieved.
    """
    return Machine(
        name="altix-itanium2",
        description="SGI Altix, 56 x Intel Itanium-2 1.6GHz, NUMAlink 4 (Table 3)",
        processor=itanium2_1600(),
        topology=altix_topology(),
        paper_flop_rate_mflops=225.0,
        noise_seed=303,
        # The single shared-memory node shows slightly larger run-to-run
        # variation in the paper (positive errors up to 8%).
        compute_jitter=0.012,
        network_jitter=0.03,
    )


def hypothetical_opteron_myrinet() -> Machine:
    """The hypothetical system of the speculative study (Figures 8-9).

    The 2-way Opteron SMP node architecture combined with the Myrinet 2000
    communication model, scaled to 8000 processors; the paper evaluates it
    at a fixed achieved rate of 340 MFLOPS (and +25 %/+50 % upgrades).
    """
    return Machine(
        name="hypothetical-opteron-myrinet",
        description="Hypothetical 8000-processor 2-way Opteron SMP cluster "
                    "with the Myrinet 2000 communication model (Section 6)",
        processor=opteron_2000(),
        topology=hypothetical_cluster_topology(),
        paper_flop_rate_mflops=340.0,
        fixed_flop_rate_mflops=340.0,
        noise_seed=404,
    )


def hypothetical_opteron_myrinet_1ns() -> Machine:
    """The hypothetical cluster on a ~1 ns dyadic time grid.

    The same 8000-processor Opteron/Myrinet system as
    :func:`hypothetical_opteron_myrinet`, but with every modelled duration
    (compute charges, wire times, CPU overheads, collective costs) snapped
    to an exact binary multiple of ``2**-30`` s (≈ 0.93 ns) via
    :meth:`~repro.machines.machine.Machine.quantized`.  The tick is far
    below every modelled cost, so run times are physically
    indistinguishable from the continuous parent — but the shared dyadic
    timebase makes the max-plus replay exact integer arithmetic, which is
    what lets the steady-state tier (:mod:`repro.simmpi.steady`) resolve
    long periodic pipelines in O(period) with a bit-identical guarantee.
    The huge-N ``steady-scaling`` study runs on this machine.
    """
    machine = hypothetical_opteron_myrinet().quantized(
        time_quantum=2.0 ** -30,
        name="hypothetical-opteron-myrinet-1ns",
        description="Hypothetical 8000-processor 2-way Opteron SMP cluster "
                    "with the Myrinet 2000 communication model, on a 2^-30 s "
                    "(~1ns) dyadic time grid (steady-state tier)")
    machine.noise_seed = 505
    return machine


#: Registry of machine presets keyed by name.
MACHINE_PRESETS: dict[str, Callable[[], Machine]] = {
    "pentium3-myrinet": pentium3_myrinet,
    "opteron-gige": opteron_gige,
    "altix-itanium2": altix_itanium2,
    "hypothetical-opteron-myrinet": hypothetical_opteron_myrinet,
    "hypothetical-opteron-myrinet-1ns": hypothetical_opteron_myrinet_1ns,
}

#: Short aliases accepted by :func:`get_machine` and the CLI.
MACHINE_ALIASES: dict[str, str] = {
    "pentium3": "pentium3-myrinet",
    "p3": "pentium3-myrinet",
    "table1": "pentium3-myrinet",
    "opteron": "opteron-gige",
    "table2": "opteron-gige",
    "altix": "altix-itanium2",
    "itanium2": "altix-itanium2",
    "table3": "altix-itanium2",
    "hypothetical": "hypothetical-opteron-myrinet",
    "speculative": "hypothetical-opteron-myrinet",
    "hypothetical-1ns": "hypothetical-opteron-myrinet-1ns",
    "steady": "hypothetical-opteron-myrinet-1ns",
}


def get_machine(name: str) -> Machine:
    """Instantiate a machine preset by name or alias."""
    key = name.lower()
    key = MACHINE_ALIASES.get(key, key)
    try:
        factory = MACHINE_PRESETS[key]
    except KeyError:
        raise MachineNotFoundError(
            f"unknown machine {name!r}; available: {sorted(MACHINE_PRESETS)} "
            f"(aliases: {sorted(MACHINE_ALIASES)})") from None
    return factory()
