"""Profiling and benchmarking substitutes.

The paper's hardware layer is populated from two measurement campaigns:

* **PAPI profiling** of the serial kernel, yielding the achieved floating
  point operation rate for the target per-processor problem size
  (:mod:`repro.profiling.papi`), and
* **MPI micro-benchmarks** (timed sends, receives and ping-pongs over a
  range of message sizes) whose results are fitted with the piece-wise
  linear model of equation (3) (:mod:`repro.profiling.mpibench` and
  :mod:`repro.profiling.curvefit`).

Both campaigns run against the simulated processor/network models, so the
derived hardware parameters carry genuine measurement/fitting error into
the PACE predictions — exactly as in the paper's methodology.
"""

from repro.profiling.papi import FlopProfile, FlopProfiler
from repro.profiling.mpibench import CommBenchmarkData, MpiBenchmark
from repro.profiling.curvefit import PiecewiseLinearModel, fit_piecewise_linear

__all__ = [
    "FlopProfile",
    "FlopProfiler",
    "CommBenchmarkData",
    "MpiBenchmark",
    "PiecewiseLinearModel",
    "fit_piecewise_linear",
]
