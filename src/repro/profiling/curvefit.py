"""Piece-wise linear fitting of communication benchmark data.

Section 4.4 of the paper models the time to transfer ``x`` bytes as

.. math::

    T(x) = \\begin{cases} B + C x, & x \\le A \\\\ D + E x, & x \\ge A \\end{cases}

"simply a curve fit for a set of data points" gathered by an MPI benchmark.
:func:`fit_piecewise_linear` performs that fit: for every candidate break
point ``A`` (taken from the measured sizes) it solves two least-squares
lines and keeps the break point with the smallest total squared error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ModelError


@dataclass(frozen=True)
class PiecewiseLinearModel:
    """The fitted A-E parameters of the paper's equation (3).

    ``evaluate(x)`` returns the modelled transfer time for ``x`` bytes.
    """

    A: float
    B: float
    C: float
    D: float
    E: float

    def evaluate(self, nbytes: float) -> float:
        """Modelled time for a message of ``nbytes``."""
        if nbytes <= self.A:
            return self.B + self.C * nbytes
        return self.D + self.E * nbytes

    def evaluate_many(self, nbytes: Sequence[float]) -> np.ndarray:
        """Vectorised :meth:`evaluate`."""
        x = np.asarray(nbytes, dtype=float)
        return np.where(x <= self.A, self.B + self.C * x, self.D + self.E * x)

    def as_dict(self) -> dict[str, float]:
        """The parameters keyed ``A``..``E`` (the HMCL representation)."""
        return {"A": self.A, "B": self.B, "C": self.C, "D": self.D, "E": self.E}

    @classmethod
    def from_dict(cls, values: dict[str, float]) -> "PiecewiseLinearModel":
        try:
            return cls(A=float(values["A"]), B=float(values["B"]), C=float(values["C"]),
                       D=float(values["D"]), E=float(values["E"]))
        except KeyError as exc:
            raise ModelError(f"piecewise model missing parameter {exc}") from exc

    def describe(self) -> str:
        return (f"T(x) = {self.B * 1e6:.2f}us + {self.C * 1e9:.3f}ns/B (x <= {self.A:.0f}B); "
                f"{self.D * 1e6:.2f}us + {self.E * 1e9:.3f}ns/B (x > {self.A:.0f}B)")


def _linear_fit(x: np.ndarray, y: np.ndarray) -> tuple[float, float, float]:
    """Least-squares line fit returning (intercept, slope, sse)."""
    if len(x) == 1:
        return float(y[0]), 0.0, 0.0
    design = np.vstack([np.ones_like(x), x]).T
    coeffs, *_ = np.linalg.lstsq(design, y, rcond=None)
    intercept, slope = float(coeffs[0]), float(coeffs[1])
    residual = y - (intercept + slope * x)
    return intercept, slope, float(residual @ residual)


def fit_piecewise_linear(sizes: Sequence[float], times: Sequence[float],
                         min_points_per_segment: int = 2) -> PiecewiseLinearModel:
    """Fit the two-segment model of equation (3) to benchmark data.

    Parameters
    ----------
    sizes, times:
        Measured message sizes (bytes) and transfer times (seconds).
    min_points_per_segment:
        Minimum number of samples each segment must contain.

    Raises
    ------
    ModelError
        If fewer than ``2 * min_points_per_segment`` samples are supplied.
    """
    x = np.asarray(sizes, dtype=float)
    y = np.asarray(times, dtype=float)
    if x.shape != y.shape or x.ndim != 1:
        raise ModelError("sizes and times must be 1-D sequences of equal length")
    if len(x) < 2 * min_points_per_segment:
        raise ModelError(
            f"need at least {2 * min_points_per_segment} samples for a two-segment fit "
            f"(got {len(x)})")
    order = np.argsort(x)
    x, y = x[order], y[order]

    best: tuple[float, PiecewiseLinearModel] | None = None
    for split in range(min_points_per_segment, len(x) - min_points_per_segment + 1):
        b, c, sse_low = _linear_fit(x[:split], y[:split])
        d, e, sse_high = _linear_fit(x[split:], y[split:])
        sse = sse_low + sse_high
        breakpoint_size = float(x[split - 1])
        model = PiecewiseLinearModel(A=breakpoint_size, B=b, C=c, D=d, E=e)
        if best is None or sse < best[0]:
            best = (sse, model)
    assert best is not None
    return best[1]


def fit_single_line(sizes: Sequence[float], times: Sequence[float]) -> PiecewiseLinearModel:
    """Degenerate single-segment fit (both halves identical).

    Useful when a link shows no protocol switch over the measured range.
    """
    x = np.asarray(sizes, dtype=float)
    y = np.asarray(times, dtype=float)
    intercept, slope, _ = _linear_fit(x, y)
    return PiecewiseLinearModel(A=float(x.max()), B=intercept, C=slope,
                                D=intercept, E=slope)
