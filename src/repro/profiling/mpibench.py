"""MPI micro-benchmark substitute.

Runs timed sends, receives and ping-pongs for increasing message sizes on
the *simulated* cluster (two ranks, the same discrete-event engine the
application uses) and fits each data set with the piece-wise linear model of
equation (3).  The three fitted A-E parameter sets — send, receive and
ping-pong — populate the ``mpi`` section of the HMCL hardware object
(Figure 7 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.profiling.curvefit import PiecewiseLinearModel, fit_piecewise_linear
from repro.simmpi.engine import ClusterEngine
from repro.simnet.noise import NoiseModel
from repro.simnet.topology import ClusterTopology

#: Default message sizes benchmarked, in bytes (mirrors a typical ping-pong
#: sweep: a few words up to half a megabyte).
DEFAULT_SIZES: tuple[int, ...] = (
    8, 64, 256, 1024, 2048, 4096, 8192, 12288, 16384,
    24576, 32768, 65536, 131072, 262144, 524288,
)

_TAG_BENCH = 900
_TAG_BACK = 901


@dataclass
class CommBenchmarkData:
    """Raw measurements and fitted models of one benchmark campaign."""

    sizes: list[float] = field(default_factory=list)
    send_times: list[float] = field(default_factory=list)
    recv_times: list[float] = field(default_factory=list)
    pingpong_times: list[float] = field(default_factory=list)

    def fit(self) -> dict[str, PiecewiseLinearModel]:
        """Fit the three A-E parameter sets (send, recv, pingpong)."""
        return {
            "send": fit_piecewise_linear(self.sizes, self.send_times),
            "recv": fit_piecewise_linear(self.sizes, self.recv_times),
            "pingpong": fit_piecewise_linear(self.sizes, self.pingpong_times),
        }

    def one_way_model(self) -> PiecewiseLinearModel:
        """Fitted model of the one-way delivery time (half the ping-pong time)."""
        halves = [t / 2.0 for t in self.pingpong_times]
        return fit_piecewise_linear(self.sizes, halves)


def _benchmark_program(comm, sizes: Sequence[int], repetitions: int, inter_rank: int):
    """Two-rank benchmark program: rank 0 drives, rank ``inter_rank`` echoes.

    Ranks other than 0 and ``inter_rank`` idle (they exist only when the
    benchmark is placed across nodes of an SMP cluster).
    """
    peer = inter_rank
    results = {"sizes": [], "send": [], "recv": [], "pingpong": []}
    if comm.rank not in (0, peer):
        # Idle placeholder ranks (present only to force an inter-node pairing).
        yield comm.compute(0.0)
        return results

    for nbytes in sizes:
        payload = None  # timing-only: the byte count is what matters
        # --- ping-pong ---------------------------------------------------
        pingpong_total = 0.0
        for _ in range(repetitions):
            if comm.rank == 0:
                start = yield comm.now()
                yield comm.send(payload, dest=peer, tag=_TAG_BENCH, nbytes=nbytes)
                yield comm.recv(source=peer, tag=_TAG_BACK)
                stop = yield comm.now()
                pingpong_total += stop - start
            else:
                yield comm.recv(source=0, tag=_TAG_BENCH)
                yield comm.send(payload, dest=0, tag=_TAG_BACK, nbytes=nbytes)
        # --- send (sender-side return time) -------------------------------
        send_total = 0.0
        for _ in range(repetitions):
            if comm.rank == 0:
                start = yield comm.now()
                yield comm.send(payload, dest=peer, tag=_TAG_BENCH, nbytes=nbytes)
                stop = yield comm.now()
                send_total += stop - start
            else:
                yield comm.recv(source=0, tag=_TAG_BENCH)
        # --- recv (receiver arrives late, message already delivered) --------
        recv_total = 0.0
        settle_delay = 10e-3  # generous delay so eager messages have landed
        for _ in range(repetitions):
            if comm.rank == 0:
                yield comm.send(payload, dest=peer, tag=_TAG_BENCH, nbytes=nbytes)
                yield comm.compute(settle_delay)
            else:
                yield comm.compute(settle_delay)
                start = yield comm.now()
                yield comm.recv(source=0, tag=_TAG_BENCH)
                stop = yield comm.now()
                recv_total += stop - start
        if comm.rank == 0:
            results["sizes"].append(float(nbytes))
            results["send"].append(send_total / repetitions)
            results["pingpong"].append(pingpong_total / repetitions)
        else:
            results["sizes"].append(float(nbytes))
            results["recv"].append(recv_total / repetitions)
    return results


class MpiBenchmark:
    """Runs the communication benchmark campaign on a simulated cluster."""

    def __init__(self, topology: ClusterTopology, noise: NoiseModel | None = None,
                 repetitions: int = 5):
        self.topology = topology
        self.noise = noise if noise is not None else NoiseModel.disabled()
        self.repetitions = repetitions

    def run(self, sizes: Sequence[int] = DEFAULT_SIZES,
            inter_node: bool = True) -> CommBenchmarkData:
        """Benchmark messages between two ranks.

        ``inter_node=True`` places the two ranks on different SMP nodes (the
        configuration that matters for the pipeline's east-west/north-south
        messages); ``False`` benchmarks the intra-node shared-memory path.
        """
        if inter_node:
            peer = self.topology.processors_per_node
            nranks = peer + 1
        else:
            peer, nranks = 1, 2
        limit = self.topology.rank_limit
        if limit is not None and nranks > limit:
            peer, nranks = 1, 2
        engine = ClusterEngine(self.topology, noise=self.noise)
        result = engine.run(_benchmark_program, nranks=nranks,
                            program_args=(tuple(sizes), self.repetitions, peer))
        driver = result.return_values[0]
        echo = result.return_values[peer]
        data = CommBenchmarkData(
            sizes=list(driver["sizes"]),
            send_times=list(driver["send"]),
            recv_times=list(echo["recv"]),
            pingpong_times=list(driver["pingpong"]),
        )
        if not (len(data.sizes) == len(data.send_times)
                == len(data.recv_times) == len(data.pingpong_times)):
            raise AssertionError("benchmark bookkeeping mismatch")
        return data

    def effective_bandwidth(self, data: CommBenchmarkData) -> float:
        """Asymptotic bandwidth (bytes/s) implied by the largest ping-pong sample."""
        largest = int(np.argmax(data.sizes))
        one_way = data.pingpong_times[largest] / 2.0
        return data.sizes[largest] / one_way
