"""PAPI-substitute flop profiling of the serial SWEEP3D kernel.

The paper (Section 4.3) profiles the application with PAPI hardware
counters to obtain the *achieved* floating point operation rate for the
per-processor problem size of interest, on one or two processors.  That
single rate — not per-opcode micro-benchmark times — drives the computation
term of the model, which is what makes the approach robust to superscalar
hardware, memory hierarchies and optimising compilers.

Here the profiler "runs" the serial kernel on a simulated
:class:`~repro.simproc.processor.ProcessorModel`: it builds the kernel's
per-iteration operation mix for the requested sub-domain and asks the
processor model for the achieved execution behaviour.  It also verifies the
static (capp-style) operation counts against the kernel's own tally, the
role run-time profiling plays in the paper's combined static + dynamic
characterisation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import units
from repro.simproc.opcodes import OperationMix
from repro.simproc.processor import ProcessorModel
from repro.sweep3d.input import Sweep3DInput
from repro.sweep3d.kernel import SweepKernel


@dataclass(frozen=True)
class FlopProfile:
    """Result of profiling the serial kernel on a simulated processor.

    Attributes
    ----------
    processor_name:
        The profiled processor.
    cells:
        Per-processor sub-domain shape (nx, ny, nz).
    flops:
        Floating point operations executed per source iteration.
    execute_time:
        Seconds per source iteration on the simulated processor.
    achieved_flop_rate:
        Achieved rate in flop/s — the paper's headline quantity (e.g.
        110 MFLOPS on the Pentium-3 cluster for the 50^3 problem).
    peak_flop_rate:
        Peak rate of the processor, for efficiency reporting.
    legacy_time:
        The per-iteration time the legacy per-opcode summation would
        predict (used by the ablation experiment).
    """

    processor_name: str
    cells: tuple[int, int, int]
    flops: float
    execute_time: float
    achieved_flop_rate: float
    peak_flop_rate: float
    legacy_time: float

    @property
    def achieved_mflops(self) -> float:
        """Achieved rate in MFLOP/s."""
        return self.achieved_flop_rate / units.MFLOPS

    @property
    def seconds_per_flop(self) -> float:
        """Cost of one floating point operation — the HMCL ``MFDG``/``AFDG`` value."""
        return 1.0 / self.achieved_flop_rate

    @property
    def efficiency(self) -> float:
        """Achieved fraction of the processor's peak floating point rate."""
        return self.achieved_flop_rate / self.peak_flop_rate

    @property
    def legacy_flop_rate(self) -> float:
        """The flop rate implied by the legacy per-opcode prediction."""
        return self.flops / self.legacy_time

    def describe(self) -> str:
        nx, ny, nz = self.cells
        return (f"{self.processor_name}: {nx}x{ny}x{nz} cells/proc -> "
                f"{self.achieved_mflops:.0f} MFLOPS achieved "
                f"({self.efficiency * 100:.1f}% of peak)")


class FlopProfiler:
    """Profiles the SWEEP3D serial kernel on a simulated processor."""

    def __init__(self, processor: ProcessorModel):
        self.processor = processor

    def profile(self, deck: Sweep3DInput, nx: int | None = None,
                ny: int | None = None) -> FlopProfile:
        """Profile one source iteration over an ``nx x ny x kt`` sub-domain.

        ``nx``/``ny`` default to the deck's full horizontal extent (a 1x1
        decomposition, as in the paper's single-processor profiling runs).
        """
        nx = deck.it if nx is None else nx
        ny = deck.jt if ny is None else ny
        kernel = SweepKernel(deck)
        mix = kernel.local_sweep_mix(nx, ny)
        return self.profile_mix(mix, cells=(nx, ny, deck.kt))

    def profile_mix(self, mix: OperationMix,
                    cells: tuple[int, int, int] = (0, 0, 0)) -> FlopProfile:
        """Profile an explicit operation mix (used by tests and the ablation)."""
        execute_time = self.processor.execute_time(mix)
        return FlopProfile(
            processor_name=self.processor.name,
            cells=cells,
            flops=mix.flops,
            execute_time=execute_time,
            achieved_flop_rate=mix.flops / execute_time,
            peak_flop_rate=self.processor.peak_flop_rate,
            legacy_time=self.processor.legacy_opcode_time(mix),
        )

    def profile_cells_per_processor(self, deck: Sweep3DInput, px: int,
                                    py: int) -> FlopProfile:
        """Profile the sub-domain a single processor owns in a ``px x py`` run."""
        nx = -(-deck.it // px)
        ny = -(-deck.jt // py)
        return self.profile(deck, nx=nx, ny=ny)

    # ------------------------------------------------------------------

    def verify_static_counts(self, static_mix: OperationMix,
                             reference_mix: OperationMix,
                             tolerance: float = 0.05) -> bool:
        """Check a static (capp) operation count against the profiled tally.

        Returns ``True`` when the floating point totals agree within
        ``tolerance`` (relative).  The paper uses run-time profiling in this
        role: "any unforeseen operation counts can be included into the
        floating-point operation flow manually if their significance becomes
        apparent".
        """
        if reference_mix.flops == 0:
            return static_mix.flops == 0
        relative = abs(static_mix.flops - reference_mix.flops) / reference_mix.flops
        return relative <= tolerance
