"""Wall-clock phase accounting for the execution tiers.

The simulation pipeline spends its host-side wall-clock in a handful of
distinct phases — capturing a trace, replaying it, attempting the steady
tier, or driving the reference engine — and knowing *where* a study's
time went is what directs the next optimisation (trace capture was found
to dominate cold sweeps exactly this way).  :class:`PhaseTimer` is the
tiny shared accumulator: each :class:`~repro.sweep3d.driver.
SimulationPlan` owns one, the scenario executor snapshots it around
every evaluation, and the per-phase seconds flow through
:class:`~repro.experiments.backends.SimMeasurement` into study results
and ``manifest.json``.
"""

from __future__ import annotations

import time
from contextlib import contextmanager


class PhaseTimer:
    """Accumulates wall-clock seconds per named phase.

    Not thread-safe — each timer belongs to one plan evaluated by one
    worker at a time (the multiprocessing fan-out gives every worker its
    own plans).
    """

    __slots__ = ("seconds",)

    def __init__(self) -> None:
        self.seconds: dict[str, float] = {}

    @contextmanager
    def phase(self, name: str):
        """Context manager adding the elapsed wall-clock to ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - start)

    def add(self, name: str, elapsed: float) -> None:
        self.seconds[name] = self.seconds.get(name, 0.0) + elapsed

    def snapshot(self) -> dict[str, float]:
        """A copy of the per-phase totals so far."""
        return dict(self.seconds)

    def since(self, before: dict[str, float]) -> dict[str, float]:
        """Per-phase seconds accumulated after ``before`` was snapshotted."""
        return {name: total - before.get(name, 0.0)
                for name, total in self.seconds.items()
                if total - before.get(name, 0.0) > 0.0}


def merge_phases(into: dict[str, float],
                 extra: dict[str, float]) -> dict[str, float]:
    """Accumulate ``extra``'s per-phase seconds into ``into`` (returned)."""
    for name, value in extra.items():
        if value:
            into[name] = into.get(name, 0.0) + float(value)
    return into
