"""The always-on prediction service.

A long-running :mod:`asyncio` server that keeps the expensive state of
the reproduction — the parsed+compiled PSL model, machine presets with
their simulation-plan/trace caches, and the disk-backed sweep cache —
warm across network callers, so none of it is rebuilt per request.

Layers (stdlib only — the repo's runtime deps are numpy-only, so there
is no web framework):

* :mod:`repro.service.protocol` — typed request/response messages with a
  versioned JSON wire form;
* :mod:`repro.service.http` — a minimal HTTP/1.1 layer over
  ``asyncio.start_server``;
* :mod:`repro.service.batching` — the request coalescer: concurrent
  predict/simulate requests inside a small window are deduplicated by
  scenario fingerprint and micro-batched into one sweep-runner call;
* :mod:`repro.service.core` — :class:`PredictionService`: shared warm
  state, the in-memory result LRU (tier order: memory-LRU → disk cache →
  compute) and the HTTP routing; :func:`run_server` and
  :class:`BackgroundServer` run it;
* :mod:`repro.service.jobs` — study submissions as background jobs with
  status polling, cancellation and artifact retrieval;
* :mod:`repro.service.client` — a stdlib synchronous client.

Every response is bit-identical to the corresponding direct
``api.predict`` / ``api.simulate`` / ``StudyRunner.run`` call: the
service only shares compile/plan steps and caches results keyed on the
full scenario identity, never approximates.
"""

from repro.service.client import ServiceClient
from repro.service.core import BackgroundServer, PredictionService, run_server

__all__ = [
    "BackgroundServer",
    "PredictionService",
    "ServiceClient",
    "run_server",
]
