"""The request coalescer: dedup + micro-batch concurrent requests.

Concurrent predict/simulate requests arriving within a small window are

* **deduplicated** — requests with the same scenario key share one
  evaluation and one future (N callers, one compute), and
* **micro-batched** — distinct keys of the same *group* (same backend
  configuration: machine, deck, iteration count, ...) are evaluated in
  one sweep-runner call, sharing the runner's compiled model / plan
  caches across the batch.

Semantics are strictly value-preserving: a batch evaluates exactly the
scenarios a sequence of direct calls would, through the same backend, so
results are bit-identical to unbatched execution — the window only
changes *when* work starts, never what it computes.

One batch per group is open at a time; it closes (and executes) when
its window elapses or it reaches ``max_batch`` keys.  Batches of the
same group are serialised by the executor callback (sweep runners keep
per-run stats), batches of different groups run concurrently.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable, Hashable


@dataclass
class CoalescerStats:
    """Accounting across the coalescer's lifetime."""

    #: Requests submitted.
    requests: int = 0
    #: Distinct scenario keys evaluated (requests - deduplicated shares).
    unique: int = 0
    #: Batches executed.
    batches: int = 0

    @property
    def coalesced(self) -> int:
        """Requests served by sharing another request's evaluation."""
        return self.requests - self.unique

    def as_dict(self) -> dict[str, int]:
        return {"requests": self.requests, "unique": self.unique,
                "batches": self.batches, "coalesced": self.coalesced}


@dataclass
class _Batch:
    keys: list = field(default_factory=list)
    items: list = field(default_factory=list)
    futures: dict = field(default_factory=dict)
    timer: asyncio.Task | None = None


class RequestCoalescer:
    """Groups concurrent submissions into deduplicated micro-batches.

    Parameters
    ----------
    execute:
        ``await execute(group, keys, items) -> results`` — evaluates one
        batch, returning one result per key, in key order.  Called from
        the event loop; it is the callback's job to off-load blocking
        work and to serialise access to any per-group shared state.
    window_s:
        How long the first submission of a batch waits for company.
        ``0`` still coalesces submissions of the same event-loop tick.
    max_batch:
        A batch reaching this many distinct keys executes immediately.
    """

    def __init__(self,
                 execute: Callable[[Hashable, list, list], Awaitable[list]],
                 window_s: float = 0.002, max_batch: int = 32):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self._execute = execute
        self.window_s = window_s
        self.max_batch = max_batch
        self.stats = CoalescerStats()
        self._open: dict[Hashable, _Batch] = {}
        self._tasks: set[asyncio.Task] = set()

    async def submit(self, group: Hashable, key: Hashable, item: Any) -> Any:
        """The result for ``key``, joining or opening ``group``'s batch."""
        self.stats.requests += 1
        batch = self._open.get(group)
        if batch is not None and key in batch.futures:
            return await batch.futures[key]

        loop = asyncio.get_running_loop()
        if batch is None:
            batch = _Batch()
            self._open[group] = batch
            batch.timer = loop.create_task(self._window(group, batch))
        future: asyncio.Future = loop.create_future()
        batch.keys.append(key)
        batch.items.append(item)
        batch.futures[key] = future
        self.stats.unique += 1
        if len(batch.keys) >= self.max_batch:
            self._close(group, batch)
        return await future

    def pending(self) -> int:
        """Batches currently open or executing."""
        return len(self._open) + len(self._tasks)

    # ------------------------------------------------------------------

    async def _window(self, group: Hashable, batch: _Batch) -> None:
        try:
            await asyncio.sleep(self.window_s)
        except asyncio.CancelledError:
            return
        if self._open.get(group) is batch:
            batch.timer = None
            self._close(group, batch)

    def _close(self, group: Hashable, batch: _Batch) -> None:
        del self._open[group]
        if batch.timer is not None:
            batch.timer.cancel()
            batch.timer = None
        task = asyncio.get_running_loop().create_task(self._run(group, batch))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _run(self, group: Hashable, batch: _Batch) -> None:
        self.stats.batches += 1
        try:
            results = await self._execute(group, batch.keys, batch.items)
        except Exception as exc:  # noqa: BLE001 — delivered to every waiter
            for future in batch.futures.values():
                if not future.done():
                    future.set_exception(exc)
            return
        if len(results) != len(batch.keys):
            error = RuntimeError(
                f"coalescer executor returned {len(results)} result(s) "
                f"for {len(batch.keys)} key(s)")
            for future in batch.futures.values():
                if not future.done():
                    future.set_exception(error)
            return
        for key, result in zip(batch.keys, results):
            future = batch.futures[key]
            if not future.done():
                future.set_result(result)
