"""A stdlib synchronous client for the prediction service.

One :class:`ServiceClient` per server address; each call opens a short
``http.client`` connection, sends the typed wire message and returns the
decoded typed response.  Server-reported failures re-raise as
:class:`~repro.errors.ServiceError` carrying the server's status code;
transport failures raise :class:`ServiceError` with status 503.

The client is thread-safe by construction (no connection state is
shared between calls), so event-loop tests can drive it through
``run_in_executor`` against an in-process server.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Mapping

from repro.errors import ProtocolError, ServiceError
from repro.service.protocol import (
    ErrorResponse,
    HealthResponse,
    JobArtifactsResponse,
    JobCancelResponse,
    JobListResponse,
    JobResultResponse,
    JobStatusResponse,
    PredictRequest,
    PredictResponse,
    SimulateRequest,
    SimulateResponse,
    StatsResponse,
    StudySubmitRequest,
    decode_response,
    encode,
)
from repro.service.jobs import TERMINAL_STATES


class ServiceClient:
    """Typed access to a running prediction service."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8642,
                 timeout: float = 120.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------

    def _request(self, method: str, path: str, message=None):
        connection = http.client.HTTPConnection(self.host, self.port,
                                                timeout=self.timeout)
        try:
            body = None
            headers = {}
            if message is not None:
                body = json.dumps(encode(message)).encode("utf-8")
                headers["Content-Type"] = "application/json"
            try:
                connection.request(method, path, body=body, headers=headers)
                response = connection.getresponse()
                payload = response.read()
            except (OSError, http.client.HTTPException) as exc:
                raise ServiceError(
                    f"cannot reach service at {self.host}:{self.port}: {exc}",
                    status=503) from exc
        finally:
            connection.close()
        try:
            decoded = decode_response(json.loads(payload))
        except (ValueError, ProtocolError) as exc:
            raise ServiceError(
                f"service returned an unreadable response: {exc}",
                status=502) from exc
        if isinstance(decoded, ErrorResponse):
            raise ServiceError(decoded.error, status=decoded.status)
        return decoded

    # ------------------------------------------------------------------

    def predict(self, machine: str, px: int, py: int,
                deck: str = "validation",
                iterations: int = 12) -> PredictResponse:
        return self._request("POST", "/v1/predict",
                             PredictRequest(machine=machine, px=px, py=py,
                                            deck=deck, iterations=iterations))

    def simulate(self, machine: str, px: int, py: int,
                 deck: str = "validation", iterations: int = 12,
                 with_noise: bool = True, seed: int = 0,
                 execution: str = "auto",
                 samples: int = 0) -> SimulateResponse:
        return self._request(
            "POST", "/v1/simulate",
            SimulateRequest(machine=machine, px=px, py=py, deck=deck,
                            iterations=iterations, with_noise=with_noise,
                            seed=seed, execution=execution, samples=samples))

    def submit_study(self, spec: Any, smoke: bool = False) -> JobStatusResponse:
        """Submit a study name, spec mapping or ``StudySpec``."""
        if hasattr(spec, "to_dict"):
            spec = spec.to_dict()
        if not isinstance(spec, (str, Mapping)):
            raise ServiceError(
                "'spec' must be a study name, a spec mapping or a StudySpec")
        return self._request("POST", "/v1/studies",
                             StudySubmitRequest(spec=spec, smoke=smoke))

    def status(self, job_id: str) -> JobStatusResponse:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def jobs(self) -> JobListResponse:
        return self._request("GET", "/v1/jobs")

    def result(self, job_id: str) -> JobResultResponse:
        return self._request("GET", f"/v1/jobs/{job_id}/result")

    def artifacts(self, job_id: str) -> JobArtifactsResponse:
        return self._request("GET", f"/v1/jobs/{job_id}/artifacts")

    def cancel(self, job_id: str) -> JobCancelResponse:
        return self._request("POST", f"/v1/jobs/{job_id}/cancel")

    def health(self) -> HealthResponse:
        return self._request("GET", "/v1/health")

    def stats(self) -> StatsResponse:
        return self._request("GET", "/v1/stats")

    def wait(self, job_id: str, timeout: float = 600.0,
             poll_s: float = 0.1) -> JobStatusResponse:
        """Poll until the job reaches a terminal state (or raise on timeout)."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status.state in TERMINAL_STATES:
                return status
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {status.state} after {timeout} s",
                    status=504)
            time.sleep(poll_s)
