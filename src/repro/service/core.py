"""The prediction service: warm shared state, tiered caching, routing.

:class:`PredictionService` owns one :class:`~repro.experiments.study.
StudyContext` — the PSL model is parsed and compiled once for the life
of the process, machine presets (with their simulation-plan and trace
caches) are instantiated once, and an optional
:class:`~repro.experiments.diskcache.SweepDiskCache` persists scenario
results across restarts.  On top of that sit

* an in-memory **result LRU** (:class:`ResultLRU`) keyed on the full
  scenario identity, making the serving tiers *memory-LRU → disk cache
  → compute*;
* the **request coalescer** (:mod:`repro.service.batching`): concurrent
  predict/simulate requests are deduplicated and micro-batched into one
  :class:`~repro.experiments.sweep.SweepRunner` call per backend group;
* the **job manager** (:mod:`repro.service.jobs`) for background study
  runs.

Every served number is bit-identical to the direct ``api.predict`` /
``api.simulate`` / ``StudyRunner.run`` call: caches are keyed on the
complete value identity (the same fingerprints the disk cache uses), and
the compute path *is* the library path — the service only amortises the
compile/plan steps, which are value-preserving by construction.

Blocking compute runs on a small thread pool; batches of the same
backend group are serialised (sweep runners keep per-run state), batches
of different groups run concurrently — the disk cache's accounting is
lock-guarded for exactly this access pattern.
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Any, Hashable, Mapping

from repro._version import __version__
from repro.errors import ProtocolError, ReproError, ServiceError
from repro.service import protocol
from repro.service.batching import RequestCoalescer
from repro.service.http import (
    HttpError,
    HttpRequest,
    format_response,
    read_request,
)
from repro.service.jobs import JobManager, JobRecord
from repro.service.protocol import (
    ErrorResponse,
    HealthRequest,
    HealthResponse,
    JobArtifactsRequest,
    JobArtifactsResponse,
    JobCancelRequest,
    JobCancelResponse,
    JobListRequest,
    JobListResponse,
    JobResultRequest,
    JobResultResponse,
    JobStatusRequest,
    JobStatusResponse,
    PredictRequest,
    PredictResponse,
    SimulateRequest,
    SimulateResponse,
    StatsRequest,
    StatsResponse,
    StudySubmitRequest,
)

_EXECUTION_MODES = ("auto", "engine", "replay", "steady")


class ResultLRU:
    """A bounded least-recently-used map over scenario results.

    Keys are full scenario identities (the same information the disk
    cache fingerprints), values are the immutable result objects
    (``PredictionResult`` / ``SimMeasurement``).  Thread-safe;
    ``maxsize=0`` disables the tier entirely.
    """

    def __init__(self, maxsize: int = 256):
        if maxsize < 0:
            raise ServiceError("LRU maxsize must be >= 0")
        self.maxsize = maxsize
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: Hashable) -> Any | None:
        with self._lock:
            if key not in self._entries:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return self._entries[key]

    def put(self, key: Hashable, value: Any) -> None:
        if self.maxsize == 0:
            return
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def as_dict(self) -> dict[str, int]:
        with self._lock:
            return {"size": len(self._entries), "maxsize": self.maxsize,
                    "hits": self.hits, "misses": self.misses,
                    "evictions": self.evictions}


class PredictionService:
    """One warm service instance: state, caches, coalescer, jobs, routes.

    Parameters
    ----------
    context:
        An externally owned :class:`StudyContext`; by default the
        process-wide ``api.default_context()`` is used, so in-process
        callers and the service share one compiled model.
    cache_dir:
        Disk-backed sweep cache directory (the persistent tier); also
        becomes the context's default cache, so background study jobs
        inherit it.  ``None`` leaves the disk tier off.
    workers:
        Threads evaluating coalesced batches (distinct backend groups
        in parallel; one group is always serialised).
    lru_size:
        Entries held by the in-memory result tier (0 disables it).
    window_s:
        Coalescing window — how long the first request of a batch waits
        for mergeable company.
    artifact_dir:
        Where finished study jobs write the standard artifact layout
        (one sub-directory per job); ``None`` keeps results in memory
        only.
    job_fleet_workers:
        When > 0, study jobs front an in-process elastic fleet with
        this many workers (:func:`~repro.experiments.fleet.
        run_local_fleet`) instead of running inline — bit-identical
        results, grid units executed in parallel.
    """

    def __init__(self, context=None, cache_dir: str | Path | None = None,
                 workers: int = 2, lru_size: int = 256,
                 window_s: float = 0.002, max_batch: int = 32,
                 artifact_dir: str | Path | None = None,
                 job_concurrency: int = 1,
                 job_fleet_workers: int = 0):
        if context is None:
            from repro.api import default_context
            context = default_context()
        self.context = context
        self.cache = None
        if cache_dir is not None:
            self.cache = context.cache_for(cache_dir)
            context.cache = self.cache
        self.lru = ResultLRU(lru_size)
        self.pool = ThreadPoolExecutor(max_workers=max(1, workers),
                                       thread_name_prefix="repro-svc")
        self.coalescer = RequestCoalescer(self._execute_batch,
                                          window_s=window_s,
                                          max_batch=max_batch)
        self.jobs = JobManager(context=context, artifact_root=artifact_dir,
                               max_concurrent=job_concurrency,
                               fleet_workers=job_fleet_workers)
        #: One sweep runner and one asyncio lock per backend group; the
        #: lock serialises batches of a group, so each runner is only
        #: ever driven by one thread at a time.
        self._runners: dict[tuple, Any] = {}
        self._group_locks: dict[tuple, asyncio.Lock] = {}
        #: Hardware models memoised by value identity — ``Machine.
        #: hardware_model`` re-profiles per call, which predict batches
        #: would otherwise repeat for every request.
        self._hardware: dict[tuple, Any] = {}
        self._hardware_lock = threading.Lock()
        self._requests: dict[str, int] = {}
        self._started = time.monotonic()

    # -- request handlers ----------------------------------------------------

    async def predict(self, request: PredictRequest) -> PredictResponse:
        machine = self._machine(request.machine)
        self._check_geometry(request.px, request.py, request.iterations)
        self._check_deck(request.deck, request.px, request.py,
                         request.iterations)
        group = ("predict", machine.name, request.deck, request.iterations)
        key = group + (request.px, request.py)
        cached = self.lru.get(key)
        if cached is not None:
            return self._predict_response(cached, source="memory")
        result = await self.coalescer.submit(group, key, request)
        return self._predict_response(result, source="computed")

    async def simulate(self, request: SimulateRequest) -> SimulateResponse:
        machine = self._machine(request.machine)
        self._check_geometry(request.px, request.py, request.iterations)
        self._check_deck(request.deck, request.px, request.py,
                         request.iterations)
        execution = request.execution
        if execution not in _EXECUTION_MODES:
            raise ServiceError(
                f"unknown execution mode {execution!r}; expected one of "
                f"{list(_EXECUTION_MODES)}")
        if request.samples < 0:
            raise ServiceError("samples must be >= 0")
        if request.samples and execution == "engine":
            # Mirrors api.simulate: sampled runs are replay-resolved.
            execution = "auto"
        group = ("simulate", machine.name, request.deck, request.iterations,
                 request.with_noise, execution, request.samples)
        key = group + (request.px, request.py, request.seed)
        cached = self.lru.get(key)
        if cached is not None:
            return self._simulate_response(cached, request.seed,
                                           source="memory")
        result = await self.coalescer.submit(group, key, request)
        return self._simulate_response(result, request.seed,
                                       source="computed")

    async def submit_study(self, request: StudySubmitRequest) -> JobStatusResponse:
        spec = self._resolve_spec(request.spec)
        record = await self.jobs.submit(spec, smoke=request.smoke)
        return self._job_status(record)

    async def job_status(self, request: JobStatusRequest) -> JobStatusResponse:
        return self._job_status(self.jobs.get(request.job_id))

    async def job_list(self, request: JobListRequest) -> JobListResponse:
        return JobListResponse(jobs=tuple((record.job_id, record.state)
                                          for record in self.jobs.records()))

    async def job_result(self, request: JobResultRequest) -> JobResultResponse:
        record = self.jobs.get(request.job_id)
        result = record.result.to_dict() if record.result is not None else None
        return JobResultResponse(job_id=record.job_id, state=record.state,
                                 result=result, error=record.error)

    async def job_artifacts(self, request: JobArtifactsRequest) -> JobArtifactsResponse:
        record = self.jobs.get(request.job_id)
        path, files, manifest = self.jobs.artifacts(record)
        return JobArtifactsResponse(job_id=record.job_id, path=path,
                                    files=tuple(files), manifest=manifest)

    async def job_cancel(self, request: JobCancelRequest) -> JobCancelResponse:
        record, honoured = await self.jobs.cancel(request.job_id)
        return JobCancelResponse(job_id=record.job_id, state=record.state,
                                 cancelled=honoured)

    async def health(self, request: HealthRequest) -> HealthResponse:
        from repro.experiments.study import study_names
        from repro.machines.presets import MACHINE_PRESETS
        return HealthResponse(status="ok", version=__version__,
                              studies=tuple(study_names()),
                              machines=tuple(sorted(MACHINE_PRESETS)))

    async def stats(self, request: StatsRequest) -> StatsResponse:
        disk = (self.cache.stats_snapshot() if self.cache is not None
                else None)
        return StatsResponse(
            uptime_s=time.monotonic() - self._started,
            requests=dict(self._requests),
            coalescer=self.coalescer.stats.as_dict(),
            lru=self.lru.as_dict(),
            disk=({"hits": disk.hits, "misses": disk.misses,
                   "stores": disk.stores} if disk is not None else {}),
            jobs=self.jobs.counts(),
        )

    # -- validation / shared lookups -----------------------------------------

    def _machine(self, name: Any):
        if not isinstance(name, str) or not name:
            raise ServiceError("'machine' must be a machine preset name")
        return self.context.machine(name)

    @staticmethod
    def _check_geometry(px: Any, py: Any, iterations: Any) -> None:
        for label, value in (("px", px), ("py", py),
                             ("iterations", iterations)):
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value < 1:
                raise ServiceError(f"'{label}' must be a positive integer")

    @staticmethod
    def _check_deck(deck: Any, px: int, py: int, iterations: int) -> None:
        if not isinstance(deck, str):
            raise ServiceError("'deck' must be a standard deck name")
        from repro.sweep3d.input import standard_deck
        # Builds (and discards) the deck so an unknown name or an invalid
        # geometry fails this request alone, never a shared batch.
        standard_deck(deck, px=px, py=py, max_iterations=iterations)

    def _resolve_spec(self, spec: Any):
        from repro.experiments.study import StudySpec, build_spec
        if isinstance(spec, str):
            return build_spec(spec)
        if isinstance(spec, Mapping):
            return StudySpec.from_dict(spec)
        raise ServiceError(
            "'spec' must be a registered study name or a spec object")

    def _hardware_for(self, machine, deck, px: int, py: int):
        key = (machine.name, deck.it, deck.jt, deck.kt, deck.mk, deck.mmi,
               deck.sn, deck.max_iterations, px, py)
        with self._hardware_lock:
            hardware = self._hardware.get(key)
        if hardware is None:
            hardware = machine.hardware_model(deck, px, py)
            with self._hardware_lock:
                hardware = self._hardware.setdefault(key, hardware)
        return hardware

    # -- the compute path ----------------------------------------------------

    async def _execute_batch(self, group: tuple, keys: list,
                             items: list) -> list:
        lock = self._group_locks.setdefault(group, asyncio.Lock())
        async with lock:
            loop = asyncio.get_running_loop()
            results = await loop.run_in_executor(
                self.pool, self._compute_batch, group, items)
        for key, result in zip(keys, results):
            self.lru.put(key, result)
        return results

    def _compute_batch(self, group: tuple, items: list) -> list:
        """Evaluate one batch on a worker thread (one thread per group)."""
        from repro.experiments.sweep import Scenario
        kind = group[0]
        runner = self._runner_for(group)
        if kind == "predict":
            from repro.core.workload import SweepWorkload
            from repro.sweep3d.input import standard_deck
            machine = self.context.machine(group[1])
            scenarios = []
            for request in items:
                deck = standard_deck(request.deck, px=request.px,
                                     py=request.py,
                                     max_iterations=request.iterations)
                scenarios.append(Scenario(
                    label=f"{request.px}x{request.py}",
                    variables=SweepWorkload(deck, request.px,
                                            request.py).model_variables(),
                    hardware=self._hardware_for(machine, deck,
                                                request.px, request.py)))
        else:
            scenarios = [Scenario(label=f"{request.px}x{request.py}",
                                  variables={"px": request.px,
                                             "py": request.py,
                                             "seed": request.seed})
                         for request in items]
        return [outcome.result for outcome in runner.run(scenarios)]

    def _runner_for(self, group: tuple):
        """The group's memoised sweep runner (built under the group lock)."""
        runner = self._runners.get(group)
        if runner is not None:
            return runner
        from repro.experiments.backends import (
            PredictionBackend,
            SimulationBackend,
        )
        from repro.experiments.sweep import SweepRunner
        if group[0] == "predict":
            backend = PredictionBackend(compiled=self.context.compiled_model())
        else:
            _, machine_name, deck, iterations, with_noise, execution, \
                samples = group
            backend = SimulationBackend(
                machine=self.context.machine(machine_name), deck=deck,
                max_iterations=iterations, with_noise=with_noise,
                execution=execution, samples=samples)
        runner = SweepRunner(backend=backend, workers=1, cache=self.cache)
        self._runners[group] = runner
        return runner

    # -- response shaping ----------------------------------------------------

    @staticmethod
    def _predict_response(result, source: str) -> PredictResponse:
        return PredictResponse(
            total_time=result.total_time,
            compute_time=result.compute_time,
            communication_time=result.communication_time,
            hardware_name=result.hardware_name or "",
            application_name=result.application_name or "",
            source=source)

    @staticmethod
    def _simulate_response(measurement, seed: int,
                           source: str) -> SimulateResponse:
        return SimulateResponse(
            machine=measurement.machine_name,
            px=measurement.px, py=measurement.py,
            elapsed_time=measurement.elapsed_time,
            seed=seed,
            iterations=measurement.iterations,
            total_messages=measurement.total_messages,
            total_bytes=measurement.total_bytes,
            compute_fraction=measurement.compute_fraction,
            execution_tier=measurement.execution_tier,
            elapsed_samples=tuple(measurement.elapsed_samples),
            elapsed_mean=measurement.elapsed_mean,
            elapsed_std=measurement.elapsed_std,
            elapsed_ci95=measurement.elapsed_ci95,
            source=source)

    def _job_status(self, record: JobRecord) -> JobStatusResponse:
        rows = len(record.result.rows) if record.result is not None else None
        return JobStatusResponse(job_id=record.job_id, state=record.state,
                                 study=record.spec.study,
                                 spec_hash=record.spec.spec_hash(),
                                 error=record.error, rows=rows,
                                 elapsed_s=record.elapsed_s)

    # -- HTTP routing --------------------------------------------------------

    async def dispatch(self, request: HttpRequest) -> tuple[int, dict]:
        """Route one HTTP request to (status, wire response)."""
        try:
            response = await self._route(request)
        except HttpError as exc:
            return self._error(exc.status, str(exc))
        except ProtocolError as exc:
            return self._error(400, str(exc))
        except ServiceError as exc:
            return self._error(exc.status, str(exc))
        except ReproError as exc:
            # Invalid machine/deck/spec/parameters from the library layers.
            return self._error(400, str(exc))
        except Exception as exc:  # noqa: BLE001 — never kill the connection
            return self._error(500, f"{type(exc).__name__}: {exc}")
        status = 202 if isinstance(response, JobStatusResponse) \
            and response.state in ("queued", "running") else 200
        return status, protocol.encode(response)

    def _error(self, status: int, message: str) -> tuple[int, dict]:
        self._requests["errors"] = self._requests.get("errors", 0) + 1
        return status, protocol.encode(ErrorResponse(error=message,
                                                     status=status))

    async def _route(self, request: HttpRequest):
        method, path = request.method, request.path.rstrip("/")
        parts = [part for part in path.split("/") if part]
        if not parts or parts[0] != "v1":
            raise HttpError(f"unknown path {request.path!r}; the API lives "
                            "under /v1", status=404)
        parts = parts[1:]
        self._count(parts[0] if parts else "")

        if method == "GET":
            if parts == ["health"]:
                return await self.health(HealthRequest())
            if parts == ["stats"]:
                return await self.stats(StatsRequest())
            if parts == ["jobs"]:
                return await self.job_list(JobListRequest())
            if len(parts) == 2 and parts[0] == "jobs":
                return await self.job_status(JobStatusRequest(job_id=parts[1]))
            if len(parts) == 3 and parts[0] == "jobs" \
                    and parts[2] == "result":
                return await self.job_result(JobResultRequest(job_id=parts[1]))
            if len(parts) == 3 and parts[0] == "jobs" \
                    and parts[2] == "artifacts":
                return await self.job_artifacts(
                    JobArtifactsRequest(job_id=parts[1]))
            raise HttpError(f"no GET route {request.path!r}", status=404)

        if method == "POST":
            if len(parts) == 3 and parts[0] == "jobs" \
                    and parts[2] == "cancel":
                return await self.job_cancel(JobCancelRequest(job_id=parts[1]))
            handlers = {("predict",): (PredictRequest, self.predict),
                        ("simulate",): (SimulateRequest, self.simulate),
                        ("studies",): (StudySubmitRequest, self.submit_study)}
            handler = handlers.get(tuple(parts))
            if handler is None:
                raise HttpError(f"no POST route {request.path!r}", status=404)
            expected, fn = handler
            message = protocol.decode_request(request.json())
            if not isinstance(message, expected):
                raise HttpError(
                    f"endpoint {request.path!r} expects a "
                    f"{expected.type!r} request, got {message.type!r}",
                    status=400)
            return await fn(message)

        raise HttpError(f"method {method} not supported", status=405)

    def _count(self, endpoint: str) -> None:
        if endpoint:
            self._requests[endpoint] = self._requests.get(endpoint, 0) + 1

    # -- connection handling / lifecycle -------------------------------------

    async def handle_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HttpError as exc:
                    writer.write(format_response(
                        exc.status,
                        protocol.encode(ErrorResponse(error=str(exc),
                                                      status=exc.status)),
                        close=True))
                    await writer.drain()
                    break
                if request is None:
                    break
                status, payload = await self.dispatch(request)
                close = not request.keep_alive
                writer.write(format_response(status, payload, close=close))
                await writer.drain()
                if close:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Event-loop teardown cancels live connection handlers; ending
            # normally here keeps shutdown quiet (nothing awaits this task).
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def start(self, host: str = "127.0.0.1",
                    port: int = 8642) -> asyncio.base_events.Server:
        """Bind and return the listening ``asyncio.Server``."""
        return await asyncio.start_server(self.handle_connection, host, port)

    def close(self) -> None:
        self.jobs.close()
        self.pool.shutdown(wait=False)


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def run_server(host: str = "127.0.0.1", port: int = 8642,
               cache_dir: str | None = None, workers: int = 2,
               lru_size: int = 256, window_s: float = 0.002,
               artifact_dir: str | None = None,
               job_fleet_workers: int = 0) -> int:
    """Run the service in the foreground until interrupted (CLI `serve`)."""

    async def _serve() -> None:
        service = PredictionService(cache_dir=cache_dir, workers=workers,
                                    lru_size=lru_size, window_s=window_s,
                                    artifact_dir=artifact_dir,
                                    job_fleet_workers=job_fleet_workers)
        server = await service.start(host, port)
        address = server.sockets[0].getsockname()
        print(f"repro-sweep3d service listening on "
              f"http://{address[0]}:{address[1]}")
        try:
            async with server:
                await server.serve_forever()
        finally:
            service.close()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("service stopped")
    return 0


class BackgroundServer:
    """A real-socket service in a daemon thread (tests, bench, smoke).

    Context manager: entering starts the event loop, binds an ephemeral
    port (``port=0``) and waits for readiness; ``host``/``port`` then
    address the live server.  Exiting stops the loop and joins the
    thread.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 **service_kwargs):
        self.host = host
        self.port = port
        self.service: PredictionService | None = None
        self._kwargs = service_kwargs
        self._ready = threading.Event()
        self._error: BaseException | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-service")

    def __enter__(self) -> "BackgroundServer":
        self._thread.start()
        if not self._ready.wait(timeout=60):
            raise ServiceError("service failed to start within 60 s",
                               status=503)
        if self._error is not None:
            raise ServiceError(f"service failed to start: {self._error}",
                               status=503)
        return self

    def __exit__(self, *exc_info) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=30)

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # noqa: BLE001 — surfaced in __enter__
            self._error = exc
        finally:
            self._ready.set()

    async def _main(self) -> None:
        self.service = PredictionService(**self._kwargs)
        server = await self.service.start(self.host, self.port)
        self.port = server.sockets[0].getsockname()[1]
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._ready.set()
        try:
            async with server:
                await self._stop.wait()
        finally:
            self.service.close()
