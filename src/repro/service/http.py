"""A minimal HTTP/1.1 JSON layer over ``asyncio`` streams.

The repository's runtime dependencies are numpy-only, so the service
speaks a deliberately small slice of HTTP/1.1 by hand: request line +
headers + ``Content-Length`` body, JSON in both directions, keep-alive
connections.  No chunked transfer, no multipart, no TLS — callers
needing those should front the service with a real proxy.

:func:`read_request` parses one request from a stream (returning
``None`` at end-of-stream), :func:`format_response` renders one JSON
response.  Malformed input raises :class:`HttpError`, whose ``status``
the server maps onto the response.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ServiceError

#: Longest accepted request line / single header line (bytes).
MAX_LINE = 8192
#: Most headers accepted on one request.
MAX_HEADERS = 64
#: Largest accepted request body (bytes) — study specs are tiny.
MAX_BODY = 4 * 1024 * 1024

STATUS_PHRASES = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(ServiceError):
    """A request the HTTP layer rejects; ``status`` is the response code."""


@dataclass
class HttpRequest:
    """One parsed request: method, target path and raw body."""

    method: str
    target: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def path(self) -> str:
        return self.target.split("?", 1)[0]

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"

    def json(self) -> Any:
        """The body parsed as JSON (:class:`HttpError` 400 on failure)."""
        if not self.body:
            raise HttpError("request body is empty; expected a JSON object",
                            status=400)
        try:
            return json.loads(self.body)
        except (ValueError, UnicodeDecodeError) as exc:
            raise HttpError(f"request body is not valid JSON: {exc}",
                            status=400) from exc


async def _read_line(reader) -> bytes:
    try:
        line = await reader.readline()
    except (ValueError, OverflowError) as exc:
        # StreamReader raises when a line exceeds its buffer limit.
        raise HttpError("header line too long", status=400) from exc
    if len(line) > MAX_LINE:
        raise HttpError("header line too long", status=400)
    return line


async def read_request(reader) -> HttpRequest | None:
    """Parse one HTTP request from ``reader``; ``None`` at end-of-stream."""
    line = await _read_line(reader)
    if not line:
        return None
    try:
        method, target, version = line.decode("ascii").split()
    except (UnicodeDecodeError, ValueError) as exc:
        raise HttpError("malformed request line", status=400) from exc
    if not version.startswith("HTTP/1."):
        raise HttpError(f"unsupported protocol {version!r}", status=400)

    headers: dict[str, str] = {}
    while True:
        line = await _read_line(reader)
        if line in (b"\r\n", b"\n", b""):
            break
        if len(headers) >= MAX_HEADERS:
            raise HttpError("too many headers", status=400)
        try:
            name, _, value = line.decode("latin-1").partition(":")
        except UnicodeDecodeError as exc:
            raise HttpError("malformed header", status=400) from exc
        if not _:
            raise HttpError("malformed header (no colon)", status=400)
        headers[name.strip().lower()] = value.strip()

    body = b""
    length_text = headers.get("content-length")
    if length_text is not None:
        try:
            length = int(length_text)
        except ValueError as exc:
            raise HttpError("malformed Content-Length", status=400) from exc
        if length < 0:
            raise HttpError("malformed Content-Length", status=400)
        if length > MAX_BODY:
            raise HttpError(f"request body exceeds {MAX_BODY} bytes",
                            status=413)
        if length:
            try:
                body = await reader.readexactly(length)
            except Exception as exc:  # IncompleteReadError, ConnectionError
                raise HttpError("request body truncated", status=400) from exc
    return HttpRequest(method=method.upper(), target=target,
                       headers=headers, body=body)


def format_response(status: int, payload: Any, *, close: bool = False) -> bytes:
    """Render one JSON response (headers + body) as bytes."""
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    phrase = STATUS_PHRASES.get(status, "Unknown")
    connection = "close" if close else "keep-alive"
    head = (f"HTTP/1.1 {status} {phrase}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {connection}\r\n"
            f"\r\n")
    return head.encode("ascii") + body
