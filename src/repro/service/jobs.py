"""Background study jobs: submit, poll, cancel, fetch artifacts.

A study submission becomes a :class:`JobRecord` driven by an asyncio
task: the task waits its turn on a semaphore (studies swap the shared
context's cache binding, so they run one at a time by default), executes
``StudyRunner.run`` on a dedicated worker thread — results bit-identical
to a direct call, it *is* a direct call — and writes the standard
artifact layout (:mod:`repro.experiments.artifacts`) under the job's
directory.

States: ``queued → running → done | failed``, plus ``cancelled``.  A
queued job cancels immediately; a running job cannot be interrupted
(its compute is a thread) — cancellation is recorded and reported as
not honoured.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.errors import ServiceError
from repro.experiments.artifacts import read_manifest, write_study_artifacts
from repro.experiments.study import (
    StudyContext,
    StudyResult,
    StudyRunner,
    StudySpec,
)

JOB_STATES = ("queued", "running", "done", "failed", "cancelled")
TERMINAL_STATES = ("done", "failed", "cancelled")


@dataclass
class JobRecord:
    """One submitted study and its lifecycle state."""

    job_id: str
    spec: StudySpec
    state: str = "queued"
    error: str | None = None
    result: StudyResult | None = None
    artifact_dir: Path | None = None
    elapsed_s: float = 0.0
    cancel_requested: bool = False
    task: asyncio.Task | None = field(default=None, repr=False)

    @property
    def done(self) -> bool:
        return self.state in TERMINAL_STATES


class JobManager:
    """Owns every job of one service instance.

    Parameters
    ----------
    context:
        The service's shared :class:`StudyContext` (compiled model,
        machines, caches) every job executes against.
    artifact_root:
        Directory receiving one artifact sub-directory per finished job.
        ``None`` disables artifact writing (the result stays retrievable
        in memory).
    max_concurrent:
        Jobs running at once.  The default 1 matches the study runner's
        contract: ``_run_one`` rebinds the shared context's cache for
        the duration of a study, which two concurrent studies would race.
    fleet_workers:
        When > 0, each study job fronts an in-process elastic fleet
        (:func:`~repro.experiments.fleet.run_local_fleet`) with this
        many workers instead of one inline ``StudyRunner.run`` — the
        study's grid units execute in parallel under the leased-unit
        protocol, and the merged result is bit-identical to the inline
        path.  Shard specs (a single already-planned slice) always run
        inline: the fleet would re-decompose their parent.
    """

    def __init__(self, context: StudyContext,
                 artifact_root: str | Path | None = None,
                 max_concurrent: int = 1,
                 fleet_workers: int = 0):
        if fleet_workers < 0:
            raise ServiceError("fleet_workers must be >= 0")
        self._context = context
        self._artifact_root = (Path(artifact_root)
                               if artifact_root is not None else None)
        self._fleet_workers = fleet_workers
        self._semaphore = asyncio.Semaphore(max_concurrent)
        #: One thread: job compute must never starve the predict/simulate
        #: pool, and a single lane matches the semaphore default.
        self._executor = ThreadPoolExecutor(max_workers=1,
                                            thread_name_prefix="repro-job")
        self._jobs: dict[str, JobRecord] = {}
        self._sequence = 0

    # ------------------------------------------------------------------

    async def submit(self, spec: StudySpec, smoke: bool = False) -> JobRecord:
        """Queue one study; returns its record immediately."""
        if smoke:
            spec = spec.smoke()
        self._sequence += 1
        job_id = f"job-{self._sequence:04d}-{spec.spec_hash()[:8]}"
        record = JobRecord(job_id=job_id, spec=spec)
        self._jobs[job_id] = record
        record.task = asyncio.get_running_loop().create_task(self._run(record))
        return record

    def get(self, job_id: str) -> JobRecord:
        record = self._jobs.get(job_id)
        if record is None:
            raise ServiceError(f"unknown job {job_id!r}", status=404)
        return record

    def records(self) -> list[JobRecord]:
        """Every job in submission order."""
        return list(self._jobs.values())

    def counts(self) -> dict[str, int]:
        """How many jobs sit in each state (zero states omitted)."""
        counts: dict[str, int] = {}
        for record in self._jobs.values():
            counts[record.state] = counts.get(record.state, 0) + 1
        return counts

    async def cancel(self, job_id: str) -> tuple[JobRecord, bool]:
        """Request cancellation; returns (record, honoured).

        Only a still-queued job can be stopped; the check-and-cancel is
        atomic because this coroutine does not yield before ``cancel()``.
        """
        record = self.get(job_id)
        record.cancel_requested = True
        if record.state == "queued" and record.task is not None:
            record.task.cancel()
            try:
                await record.task
            except asyncio.CancelledError:
                pass
            record.state = "cancelled"
            return record, True
        return record, record.state == "cancelled"

    def close(self) -> None:
        for record in self._jobs.values():
            if record.task is not None and not record.task.done():
                record.task.cancel()
        self._executor.shutdown(wait=False)

    # ------------------------------------------------------------------

    async def _run(self, record: JobRecord) -> None:
        try:
            async with self._semaphore:
                if record.cancel_requested:
                    record.state = "cancelled"
                    return
                record.state = "running"
                started = time.perf_counter()
                loop = asyncio.get_running_loop()
                try:
                    result, artifact_dir = await loop.run_in_executor(
                        self._executor, self._execute, record)
                except Exception as exc:  # noqa: BLE001 — reported to pollers
                    record.state = "failed"
                    record.error = f"{type(exc).__name__}: {exc}"
                else:
                    record.result = result
                    record.artifact_dir = artifact_dir
                    record.state = "done"
                record.elapsed_s = time.perf_counter() - started
        except asyncio.CancelledError:
            if not record.done:
                record.state = "cancelled"
            raise

    def _execute(self, record: JobRecord) -> tuple[StudyResult, Path | None]:
        result = self._run_spec(record.spec)
        artifact_dir = None
        if self._artifact_root is not None:
            artifact_dir = self._artifact_root / record.job_id
            write_study_artifacts([result], artifact_dir)
        return result, artifact_dir

    def _run_spec(self, spec: StudySpec) -> StudyResult:
        if self._fleet_workers > 0:
            from repro.experiments.fleet import run_local_fleet
            from repro.experiments.sharding import is_shard_spec
            if not is_shard_spec(spec):
                outcome = run_local_fleet(
                    [spec], n_workers=self._fleet_workers,
                    context=self._context if self._fleet_workers == 1
                    else None)
                return outcome.results[0]
        return StudyRunner(context=self._context).run(spec)

    # ------------------------------------------------------------------

    @staticmethod
    def artifacts(record: JobRecord) -> tuple[str, list[str], Any]:
        """(directory, file names, manifest) of a finished job's artifacts."""
        if record.state != "done":
            raise ServiceError(
                f"job {record.job_id} is {record.state}; artifacts exist "
                "only for done jobs", status=409)
        if record.artifact_dir is None:
            raise ServiceError(
                "the service was started without an artifact directory",
                status=409)
        directory = record.artifact_dir
        files = sorted(item.name for item in directory.iterdir()
                       if item.is_file())
        try:
            manifest = read_manifest(directory)
        except Exception:  # noqa: BLE001 — manifest is best-effort here
            manifest = None
        return str(directory), files, manifest
