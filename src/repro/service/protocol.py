"""Typed wire messages of the prediction service.

Every request and response is a frozen dataclass with a class-level
``type`` tag.  The JSON wire form is a flat object carrying the protocol
version, the type tag and the dataclass fields::

    {"v": 1, "type": "predict", "machine": "pentium3-myrinet",
     "px": 2, "py": 2, "deck": "validation", "iterations": 12}

:func:`encode` produces that form; :func:`decode_request` /
:func:`decode_response` rebuild the dataclass, rejecting unknown
versions, unknown types and unexpected or missing fields with
:class:`~repro.errors.ProtocolError`.  Tuples are rendered as JSON
arrays and restored on decode (each class lists its tuple-typed fields
in ``_TUPLE_FIELDS``), so ``decode(json.loads(json.dumps(encode(m))))``
round-trips to an equal message.

The version is bumped whenever a field changes meaning or shape; adding
a new message type or a new defaulted field is backward compatible and
keeps the version.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, ClassVar, Mapping

from repro.errors import ProtocolError

#: Wire-format version spoken by this build (the ``"v"`` envelope field).
PROTOCOL_VERSION = 1

_REQUEST_TYPES: dict[str, type] = {}
_RESPONSE_TYPES: dict[str, type] = {}


def _register(registry: dict[str, type]):
    def decorator(cls):
        registry[cls.type] = cls
        return cls
    return decorator


# ---------------------------------------------------------------------------
# Requests
# ---------------------------------------------------------------------------


@_register(_REQUEST_TYPES)
@dataclass(frozen=True)
class PredictRequest:
    """One analytic prediction (mirrors ``api.predict``)."""

    type: ClassVar[str] = "predict"
    _TUPLE_FIELDS: ClassVar[tuple[str, ...]] = ()

    machine: str
    px: int
    py: int
    deck: str = "validation"
    iterations: int = 12


@_register(_REQUEST_TYPES)
@dataclass(frozen=True)
class SimulateRequest:
    """One discrete-event simulation run (mirrors ``api.simulate``).

    ``seed`` is the noise-seed offset (``api.simulate``'s
    ``seed_offset``).  Numeric-mode runs are not servable — their flux
    fields are not JSON-friendly — so there is no ``numeric`` field.
    """

    type: ClassVar[str] = "simulate"
    _TUPLE_FIELDS: ClassVar[tuple[str, ...]] = ()

    machine: str
    px: int
    py: int
    deck: str = "validation"
    iterations: int = 12
    with_noise: bool = True
    seed: int = 0
    execution: str = "auto"
    samples: int = 0


@_register(_REQUEST_TYPES)
@dataclass(frozen=True)
class StudySubmitRequest:
    """Submit a study as a background job.

    ``spec`` is either a registered study name (its default spec) or a
    ``StudySpec.to_dict()`` mapping; ``smoke`` runs the reduced grid.
    """

    type: ClassVar[str] = "study_submit"
    _TUPLE_FIELDS: ClassVar[tuple[str, ...]] = ()

    spec: Any
    smoke: bool = False


@_register(_REQUEST_TYPES)
@dataclass(frozen=True)
class JobStatusRequest:
    type: ClassVar[str] = "job_status"
    _TUPLE_FIELDS: ClassVar[tuple[str, ...]] = ()

    job_id: str


@_register(_REQUEST_TYPES)
@dataclass(frozen=True)
class JobResultRequest:
    type: ClassVar[str] = "job_result"
    _TUPLE_FIELDS: ClassVar[tuple[str, ...]] = ()

    job_id: str


@_register(_REQUEST_TYPES)
@dataclass(frozen=True)
class JobArtifactsRequest:
    type: ClassVar[str] = "job_artifacts"
    _TUPLE_FIELDS: ClassVar[tuple[str, ...]] = ()

    job_id: str


@_register(_REQUEST_TYPES)
@dataclass(frozen=True)
class JobCancelRequest:
    type: ClassVar[str] = "job_cancel"
    _TUPLE_FIELDS: ClassVar[tuple[str, ...]] = ()

    job_id: str


@_register(_REQUEST_TYPES)
@dataclass(frozen=True)
class JobListRequest:
    type: ClassVar[str] = "job_list"
    _TUPLE_FIELDS: ClassVar[tuple[str, ...]] = ()


@_register(_REQUEST_TYPES)
@dataclass(frozen=True)
class HealthRequest:
    type: ClassVar[str] = "health"
    _TUPLE_FIELDS: ClassVar[tuple[str, ...]] = ()


@_register(_REQUEST_TYPES)
@dataclass(frozen=True)
class StatsRequest:
    type: ClassVar[str] = "stats"
    _TUPLE_FIELDS: ClassVar[tuple[str, ...]] = ()


# ---------------------------------------------------------------------------
# Responses
# ---------------------------------------------------------------------------


@_register(_RESPONSE_TYPES)
@dataclass(frozen=True)
class PredictResponse:
    """An analytic prediction; numbers bit-identical to ``api.predict``.

    ``source`` records the serving tier: ``"memory"`` (the in-process
    LRU) or ``"computed"`` (a sweep-runner evaluation, itself possibly
    warmed from the disk cache — see ``/v1/stats`` for that split).
    """

    type: ClassVar[str] = "predict_result"
    _TUPLE_FIELDS: ClassVar[tuple[str, ...]] = ()

    total_time: float
    compute_time: float
    communication_time: float
    hardware_name: str = ""
    application_name: str = ""
    source: str = "computed"


@_register(_RESPONSE_TYPES)
@dataclass(frozen=True)
class SimulateResponse:
    """A simulated measurement; numbers bit-identical to ``api.simulate``."""

    type: ClassVar[str] = "simulate_result"
    _TUPLE_FIELDS: ClassVar[tuple[str, ...]] = ("elapsed_samples",)

    machine: str
    px: int
    py: int
    elapsed_time: float
    seed: int = 0
    iterations: int = 0
    total_messages: int = 0
    total_bytes: float = 0.0
    compute_fraction: float = 0.0
    execution_tier: str = ""
    elapsed_samples: tuple = ()
    elapsed_mean: float | None = None
    elapsed_std: float | None = None
    elapsed_ci95: float | None = None
    source: str = "computed"


@_register(_RESPONSE_TYPES)
@dataclass(frozen=True)
class JobStatusResponse:
    """One background job's lifecycle state.

    ``state`` is one of ``queued`` / ``running`` / ``done`` / ``failed``
    / ``cancelled``; ``rows`` is the result's row count once done.
    """

    type: ClassVar[str] = "job_status"
    _TUPLE_FIELDS: ClassVar[tuple[str, ...]] = ()

    job_id: str
    state: str
    study: str = ""
    spec_hash: str = ""
    error: str | None = None
    rows: int | None = None
    elapsed_s: float = 0.0


@_register(_RESPONSE_TYPES)
@dataclass(frozen=True)
class JobListResponse:
    """Every known job as ``(job_id, state)`` pairs, submission order."""

    type: ClassVar[str] = "job_list"
    _TUPLE_FIELDS: ClassVar[tuple[str, ...]] = ("jobs",)

    jobs: tuple = ()


@_register(_RESPONSE_TYPES)
@dataclass(frozen=True)
class JobResultResponse:
    """A finished job's full ``StudyResult.to_dict()`` artifact."""

    type: ClassVar[str] = "job_result"
    _TUPLE_FIELDS: ClassVar[tuple[str, ...]] = ()

    job_id: str
    state: str
    result: Any = None
    error: str | None = None


@_register(_RESPONSE_TYPES)
@dataclass(frozen=True)
class JobArtifactsResponse:
    """Where a finished job's artifact files live (server-side paths)."""

    type: ClassVar[str] = "job_artifacts"
    _TUPLE_FIELDS: ClassVar[tuple[str, ...]] = ("files",)

    job_id: str
    path: str = ""
    files: tuple = ()
    manifest: Any = None


@_register(_RESPONSE_TYPES)
@dataclass(frozen=True)
class JobCancelResponse:
    """Outcome of a cancellation attempt.

    ``cancelled`` is True only when the job was stopped before running;
    a job already in flight keeps running (its threads cannot be
    interrupted) and only records the request.
    """

    type: ClassVar[str] = "job_cancel"
    _TUPLE_FIELDS: ClassVar[tuple[str, ...]] = ()

    job_id: str
    state: str
    cancelled: bool = False


@_register(_RESPONSE_TYPES)
@dataclass(frozen=True)
class HealthResponse:
    type: ClassVar[str] = "health"
    _TUPLE_FIELDS: ClassVar[tuple[str, ...]] = ("studies", "machines")

    status: str = "ok"
    version: str = ""
    studies: tuple = ()
    machines: tuple = ()


@_register(_RESPONSE_TYPES)
@dataclass(frozen=True)
class StatsResponse:
    """Service counters: per-endpoint requests, cache tiers, jobs."""

    type: ClassVar[str] = "stats"
    _TUPLE_FIELDS: ClassVar[tuple[str, ...]] = ()

    uptime_s: float = 0.0
    requests: dict = field(default_factory=dict)
    coalescer: dict = field(default_factory=dict)
    lru: dict = field(default_factory=dict)
    disk: dict = field(default_factory=dict)
    jobs: dict = field(default_factory=dict)


@_register(_RESPONSE_TYPES)
@dataclass(frozen=True)
class ErrorResponse:
    """Any failure; ``status`` doubles as the HTTP status code."""

    type: ClassVar[str] = "error"
    _TUPLE_FIELDS: ClassVar[tuple[str, ...]] = ()

    error: str
    status: int = 400


# ---------------------------------------------------------------------------
# Wire form
# ---------------------------------------------------------------------------


def _to_wire(value: Any) -> Any:
    if isinstance(value, tuple):
        return [_to_wire(item) for item in value]
    if isinstance(value, list):
        return [_to_wire(item) for item in value]
    if isinstance(value, dict):
        return {key: _to_wire(item) for key, item in value.items()}
    return value


def _to_tuple(value: Any) -> Any:
    if isinstance(value, (list, tuple)):
        return tuple(_to_tuple(item) for item in value)
    return value


def encode(message) -> dict[str, Any]:
    """The JSON-object wire form of a message (any registered dataclass)."""
    payload: dict[str, Any] = {"v": PROTOCOL_VERSION, "type": message.type}
    for info in fields(message):
        payload[info.name] = _to_wire(getattr(message, info.name))
    return payload


def _decode(payload: Any, registry: dict[str, type], kind: str):
    if not isinstance(payload, Mapping):
        raise ProtocolError(f"service {kind} must be a JSON object, "
                            f"got {type(payload).__name__}")
    version = payload.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported protocol version {version!r}; this build speaks "
            f"v{PROTOCOL_VERSION}")
    type_name = payload.get("type")
    cls = registry.get(type_name)
    if cls is None:
        raise ProtocolError(
            f"unknown service {kind} type {type_name!r}; "
            f"known: {sorted(registry)}")
    data = {key: value for key, value in payload.items()
            if key not in ("v", "type")}
    known = {info.name for info in fields(cls)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise ProtocolError(f"{type_name}: unexpected field(s) {unknown}")
    for name in cls._TUPLE_FIELDS:
        if name in data:
            data[name] = _to_tuple(data[name])
    try:
        return cls(**data)
    except TypeError as exc:
        raise ProtocolError(f"{type_name}: {exc}") from exc


def decode_request(payload: Any):
    """Rebuild a request message from its wire form (strictly validated)."""
    return _decode(payload, _REQUEST_TYPES, "request")


def decode_response(payload: Any):
    """Rebuild a response message from its wire form (strictly validated)."""
    return _decode(payload, _RESPONSE_TYPES, "response")


def request_types() -> list[str]:
    return sorted(_REQUEST_TYPES)


def response_types() -> list[str]:
    return sorted(_RESPONSE_TYPES)
