"""End-to-end service smoke: start, drive, assert bit-identity, stop.

``python -m repro.service.smoke`` boots a real server on an ephemeral
port, exercises the client surface (health, predict twice, simulate,
study submit → wait → result) and asserts every served number is
**bit-identical** to the corresponding direct library call.  Exit code 0
on success; any mismatch or failure prints a diagnostic and exits 1.

This is the CI service-smoke gate; it doubles as a quick local sanity
check after service changes.
"""

from __future__ import annotations

import sys
import tempfile

MACHINE = "pentium3-myrinet"
PX, PY, ITERATIONS = 2, 2, 2


def _fail(message: str) -> int:
    print(f"FAIL: {message}")
    return 1


def main() -> int:
    import repro.api as api
    from repro.service.core import BackgroundServer
    from repro.service.client import ServiceClient

    with tempfile.TemporaryDirectory(prefix="repro-service-smoke-") as tmp, \
            BackgroundServer(cache_dir=f"{tmp}/cache",
                             artifact_dir=f"{tmp}/artifacts") as server:
        client = ServiceClient(server.host, server.port)

        health = client.health()
        if health.status != "ok" or not health.studies:
            return _fail(f"unhealthy service: {health}")
        print(f"PASS health: v{health.version}, "
              f"{len(health.studies)} studies, "
              f"{len(health.machines)} machines")

        # -- predict: served numbers == api.predict, exactly ---------------
        direct = api.predict(MACHINE, PX, PY, iterations=ITERATIONS)
        served = client.predict(MACHINE, PX, PY, iterations=ITERATIONS)
        for name in ("total_time", "compute_time", "communication_time"):
            if getattr(served, name) != getattr(direct, name):
                return _fail(f"predict {name}: service "
                             f"{getattr(served, name)!r} != direct "
                             f"{getattr(direct, name)!r}")
        again = client.predict(MACHINE, PX, PY, iterations=ITERATIONS)
        if again.source != "memory" or again.total_time != direct.total_time:
            return _fail(f"warm predict not memory-identical: {again}")
        print(f"PASS predict: {served.total_time} s bit-identical "
              f"(cold source={served.source}, warm source={again.source})")

        # -- simulate: served numbers == api.simulate, exactly -------------
        direct_sim = api.simulate(MACHINE, PX, PY, iterations=1)
        served_sim = client.simulate(MACHINE, PX, PY, iterations=1)
        checks = (("elapsed_time", direct_sim.elapsed_time),
                  ("total_messages", direct_sim.total_messages),
                  ("iterations", direct_sim.iterations))
        for name, expected in checks:
            if getattr(served_sim, name) != expected:
                return _fail(f"simulate {name}: service "
                             f"{getattr(served_sim, name)!r} != direct "
                             f"{expected!r}")
        print(f"PASS simulate: {served_sim.elapsed_time} s bit-identical "
              f"(tier={served_sim.execution_tier})")

        # -- study job: result rows == StudyRunner.run, exactly ------------
        spec = api.build_spec("table1", max_pes=4, max_iterations=1)
        direct_study = api.run_study(spec).to_dict()
        submitted = client.submit_study(spec)
        final = client.wait(submitted.job_id)
        if final.state != "done":
            return _fail(f"job {submitted.job_id} ended {final.state}: "
                         f"{final.error}")
        remote = client.result(submitted.job_id).result
        for field in ("spec_hash", "columns", "rows"):
            if remote[field] != direct_study[field]:
                return _fail(f"study {field}: service != direct\n"
                             f"  service: {remote[field]!r}\n"
                             f"  direct:  {direct_study[field]!r}")
        artifacts = client.artifacts(submitted.job_id)
        if "manifest.json" not in artifacts.files:
            return _fail(f"job artifacts missing manifest: {artifacts.files}")
        print(f"PASS study: {len(remote['rows'])} row(s) bit-identical, "
              f"{len(artifacts.files)} artifact file(s)")

        stats = client.stats()
        print(f"PASS stats: requests={stats.requests} "
              f"coalescer={stats.coalescer} lru={stats.lru}")
    print("service smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
