"""A discrete-event MPI simulator for single-process cluster simulation.

The paper validates its performance model against SWEEP3D runs on real MPI
clusters.  Those machines are not available here, so this package provides a
*virtual cluster*: rank programs are ordinary Python generator functions
that ``yield`` MPI-like operations (send, recv, allreduce, compute, ...) to
a scheduling engine.  The engine

* moves real payloads between ranks (numeric application runs produce
  bit-correct results),
* advances per-rank virtual clocks using the
  :mod:`repro.simnet` link/topology cost models and the
  :mod:`repro.simproc` processor model,
* injects seeded OS/network noise, and
* reports per-rank timing breakdowns.

A minimal rank program::

    def program(comm):
        if comm.rank == 0:
            yield comm.send(payload, dest=1, tag=0)
        else:
            msg = yield comm.recv(source=0, tag=0)
        yield comm.compute(1.5e-3)           # charge 1.5 ms of CPU time
        total = yield comm.allreduce(1.0, op="sum")
        return total

    engine = ClusterEngine(topology)
    result = engine.run(program, nranks=2)
    print(result.elapsed_time)
"""

from repro.simmpi.operations import (
    Compute,
    ExecuteMix,
    Send,
    Recv,
    Isend,
    Irecv,
    Wait,
    WaitAll,
    AllReduce,
    Barrier,
    Bcast,
    Now,
    ReduceOp,
)
from repro.simmpi.request import Request
from repro.simmpi.communicator import SimComm
from repro.simmpi.engine import ClusterEngine, RankResult, SimulationResult
from repro.simmpi.trace import CompiledTrace, TraceRecorder
from repro.simmpi.cart import Cart2D

__all__ = [
    "Compute",
    "ExecuteMix",
    "Send",
    "Recv",
    "Isend",
    "Irecv",
    "Wait",
    "WaitAll",
    "AllReduce",
    "Barrier",
    "Bcast",
    "Now",
    "ReduceOp",
    "Request",
    "SimComm",
    "ClusterEngine",
    "RankResult",
    "SimulationResult",
    "CompiledTrace",
    "TraceRecorder",
    "Cart2D",
]
