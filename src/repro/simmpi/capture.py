"""Periodic trace capture: record one period, tile the rest.

Recording a modelled run's event stream (:class:`~repro.simmpi.trace.
TraceRecorder`) is O(events) pure Python — at 64 ranks x 100 iterations
it dominates a cold sweep even though replay and the steady tier are
fast.  But the recorder is *timing-free*: the event order is a pure
function of the rank programs' op streams and the FIFO/matching
discipline, so a run of ``m`` iterations records exactly the first
``n_m`` events of a run of ``T > m`` iterations (the generators yield
identical op sequences through iteration ``m``; afterwards the short
program simply stops).  And the sweep's stream is eventually periodic —
the steady detector (:func:`repro.simmpi.steady.detect_period`) proves
after the fact the repetition a full capture spells out event by event.

This module exploits that structure *during* capture: given a short
capture that already exhibits warm-up + a few whole periods + drain,
:func:`tile_trace` synthesizes the full :class:`~repro.simmpi.trace.
CompiledTrace` by tiling the last recorded period's event columns —
vectorised numpy concatenation, with send-slot indices advanced by the
per-period send count on each tile (the advance the detector verified) —
and scaling the per-rank/traffic statistics by exact integer arithmetic.

The contract is the steady tier's: **bit-identical to full capture or
refuse loudly**.  Every structural precondition is re-checked on the
synthesized table (slot sequentiality, matches referencing earlier
sends, integer byte sizes within the float53 exact range), and callers
(:meth:`~repro.sweep3d.driver.SimulationPlan.compile_trace`) re-run the
period detector over the tiled result, anchor the iteration count on
the per-period collective count, and cross-check the synthesized return
values against the recorded prefix — any failure raises
:class:`~repro.errors.TraceError` and the caller falls back to the full
recorder.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.errors import TraceError
from repro.simmpi.steady import PeriodInfo, _signatures
from repro.simmpi.trace import (
    EV_COLLECTIVE,
    EV_MATCH,
    EV_SEND,
    CompiledTrace,
)
from repro.simnet.topology import ClusterTopology, LinkUsageStats

#: Largest float64 value that is still exactly an integer grid point;
#: byte totals at or above this bound would round and break bit-identity.
_MAX_EXACT_BYTES = float(2 ** 53)


@dataclass
class CaptureInfo:
    """How one :meth:`SimulationPlan.compile_trace` produced its trace.

    ``mode`` is ``"periodic"`` (short capture + tiling), ``"full"`` (the
    O(events) recorder; ``reason`` says why periodic capture was not
    used), or ``"cache"`` (served from a :class:`~repro.simmpi.tracecache.
    TraceDiskCache`).  Event counts describe the *short* capture's
    structure; ``capture_s`` is the wall-clock the capture cost.
    """

    mode: str
    total_iterations: int = 0
    short_iterations: int = 0
    tiles: int = 0
    warmup: int = 0
    period: int = 0
    drain: int = 0
    sends_per_period: int = 0
    iterations_per_period: int = 0
    reason: str = ""
    capture_s: float = 0.0

    def describe(self) -> str:
        if self.mode == "cache":
            return (f"capture: trace-cache hit "
                    f"({self.total_iterations} iteration(s))")
        if self.mode == "full":
            suffix = f" ({self.reason})" if self.reason else ""
            return (f"capture: full recorder, "
                    f"{self.total_iterations} iteration(s){suffix}")
        return (f"capture: periodic, recorded {self.short_iterations} of "
                f"{self.total_iterations} iteration(s) and tiled "
                f"{self.tiles} period(s) "
                f"(warm-up {self.warmup} + period {self.period} x "
                f"{self.iterations_per_period} iteration(s)/period + drain "
                f"{self.drain}, {self.sends_per_period} send(s)/period)")


def collectives_per_period(trace: CompiledTrace, info: PeriodInfo) -> int:
    """Number of collective events inside one detected period."""
    end = info.warmup + info.repeats * info.period
    segment = trace.event_kind[end - info.period:end]
    return int(np.count_nonzero(segment == EV_COLLECTIVE))


def verify_extension(trace: CompiledTrace, info: PeriodInfo,
                     expected_repeats: int) -> str:
    """Check that ``trace`` repeats ``info``'s period ``expected_repeats`` times.

    The targeted equivalent of re-running the period detector over a
    tiled trace: with the period already known there is no candidate
    search, so the check is one vectorised signature pass — event
    signatures must repeat at exactly ``info.period`` from exactly
    ``info.warmup`` on, leaving ``info.drain`` trailing events.  (The
    detector's remaining condition, send-slot advance, is re-checked
    structurally by :func:`tile_trace`'s slot-sequentiality assertions.)
    Returns ``""`` when the structure holds, else the failure reason.
    """
    sig = _signatures(trace)
    n = len(sig)
    period = info.period
    if period < 1 or n <= period:
        return "tiled trace holds less than one period"
    mismatch = np.flatnonzero(sig[period:] != sig[:-period])
    warmup = int(mismatch[-1]) + 1 if len(mismatch) else 0
    if warmup != info.warmup:
        return f"warm-up moved ({info.warmup} -> {warmup} event(s))"
    repeats = (n - warmup) // period
    if repeats != expected_repeats:
        return f"period repeats {repeats} time(s), expected {expected_repeats}"
    if (n - warmup) - repeats * period != info.drain:
        return (f"drain moved ({info.drain} -> "
                f"{(n - warmup) - repeats * period} event(s))")
    return ""


def _check_exact_bytes(trace: CompiledTrace, tiles: int,
                       d_bytes_sent: np.ndarray, d_bytes_recv: np.ndarray,
                       d_traffic_bytes: float) -> None:
    """Refuse unless every tiled byte total is exact float64 arithmetic.

    The full recorder accumulates byte counters one message at a time;
    the tiled trace reconstructs them as ``short + tiles * delta``.  The
    two agree bit for bit iff every addition is exact — guaranteed when
    all message sizes are non-negative integers and every total stays
    below 2**53 (integer-grid float64 arithmetic is exact and
    associative there).  The sweep's sizes are products of cell counts
    times 8 bytes, so real decks always pass; the guard keeps the
    bit-identity contract honest for arbitrary programs.
    """
    nbytes = trace.event_nbytes
    if len(nbytes) and (np.any(nbytes < 0.0)
                        or np.any(np.floor(nbytes) != nbytes)):
        raise TraceError(
            "periodic capture refused: message sizes are not non-negative "
            "integers, so tiled byte totals could round")
    projected = [trace._traffic.bytes + tiles * d_traffic_bytes]
    for short_totals, deltas in ((trace._bytes_sent, d_bytes_sent),
                                 (trace._bytes_received, d_bytes_recv)):
        for rank, total in enumerate(short_totals):
            projected.append(total + tiles * float(deltas[rank]))
    if projected and max(projected) >= _MAX_EXACT_BYTES:
        raise TraceError(
            "periodic capture refused: tiled byte totals exceed the exact "
            "float64 integer range (2**53)")


def tile_trace(short: CompiledTrace, info: PeriodInfo, tiles: int,
               return_values: list[Any],
               topology: ClusterTopology) -> CompiledTrace:
    """Synthesize the trace of ``tiles`` extra periods appended to ``short``.

    ``short`` must be periodic per ``info`` (its own
    :func:`~repro.simmpi.steady.detect_period` outcome).  The result has
    ``info.repeats + tiles`` whole periods between the same warm-up and
    drain, with send-slot indices advanced by ``info.sends_per_period``
    per tile, statistics scaled exactly, and ``return_values`` attached
    (the caller synthesizes and cross-checks them).  Raises
    :class:`~repro.errors.TraceError` — never returns a wrong trace —
    when any structural precondition fails.
    """
    if not info.periodic:
        raise TraceError(f"periodic capture refused: {info.reason}")
    if tiles < 1:
        raise TraceError("tile_trace needs at least one tile")
    nranks = short.nranks
    n = short.n_events
    warmup, period, sends = info.warmup, info.period, info.sends_per_period
    boundary = warmup + info.repeats * period
    seg = slice(boundary - period, boundary)

    kind = short.event_kind
    seg_kind = kind[seg]
    seg_rank = short.event_rank[seg]
    seg_nbytes = short.event_nbytes[seg]
    send_mask = seg_kind == EV_SEND
    match_mask = seg_kind == EV_MATCH

    # Per-rank statistics deltas of one period (exact integer arithmetic).
    d_msgs_sent = np.bincount(seg_rank[send_mask], minlength=nranks)
    d_bytes_sent = np.bincount(seg_rank[send_mask],
                               weights=seg_nbytes[send_mask],
                               minlength=nranks)
    d_msgs_recv = np.bincount(seg_rank[match_mask], minlength=nranks)
    d_bytes_recv = np.bincount(seg_rank[match_mask],
                               weights=seg_nbytes[match_mask],
                               minlength=nranks)

    # Traffic delta: re-record one period's sends through the same
    # LinkUsageStats.record the recorder uses (O(period), cheap).
    delta_traffic = LinkUsageStats()
    seg_peer = short.event_peer[seg]
    seg_tag = short.event_tag[seg]
    for row in np.flatnonzero(send_mask):
        delta_traffic.record(topology, int(seg_rank[row]),
                             int(seg_peer[row]), float(seg_nbytes[row]),
                             int(seg_tag[row]))
    if any(tag not in short._traffic.by_tag for tag in delta_traffic.by_tag):
        raise TraceError(
            "periodic capture refused: period traffic uses a tag the "
            "recorded prefix never saw")
    _check_exact_bytes(short, tiles, d_bytes_sent, d_bytes_recv,
                       delta_traffic.bytes)

    def tiled(column: np.ndarray) -> np.ndarray:
        return np.concatenate(
            [column[:boundary], np.tile(column[seg], tiles), column[boundary:]])

    # Slot column: send/match rows advance by `sends` per tile; the drain
    # (already verified by the detector's slot-advance check to repeat
    # the period's slot pattern) shifts by the full `tiles * sends`.
    seg_slot = short.event_slot[seg].astype(np.int64)
    seg_shift = (send_mask | match_mask).astype(np.int64)
    offsets = (np.arange(1, tiles + 1, dtype=np.int64) * sends)[:, None]
    tiled_seg_slots = (seg_slot[None, :] + offsets * seg_shift[None, :])
    drain_kind = kind[boundary:]
    drain_shift = ((drain_kind == EV_SEND)
                   | (drain_kind == EV_MATCH)).astype(np.int64)
    new_slot = np.concatenate([
        short.event_slot[:boundary].astype(np.int64),
        tiled_seg_slots.reshape(-1),
        short.event_slot[boundary:].astype(np.int64)
        + tiles * sends * drain_shift,
    ])

    new_kind = tiled(kind)
    new_rank = tiled(short.event_rank)
    n_messages = short.n_messages + tiles * sends
    if n_messages >= 2 ** 31:
        raise TraceError(
            "periodic capture refused: tiled trace exceeds the int32 "
            "send-slot range")

    # Structural re-checks on the synthesized table: send slots must be
    # sequential in event order (the recorder's allocation invariant) and
    # every match must reference an earlier send.
    new_send_rows = np.flatnonzero(new_kind == EV_SEND)
    if not np.array_equal(new_slot[new_send_rows],
                          np.arange(n_messages, dtype=np.int64)):
        raise TraceError(
            "periodic capture refused: tiled send slots are not sequential "
            "(slot-advance structure does not extend)")
    new_match_rows = np.flatnonzero(new_kind == EV_MATCH)
    if len(new_match_rows) and not np.all(
            new_send_rows[new_slot[new_match_rows]] < new_match_rows):
        raise TraceError(
            "periodic capture refused: a tiled match precedes its send")

    # Send tables, rebuilt from the per-event eager flags (tiled verbatim:
    # the protocol depends only on the link and message size, which repeat).
    ev_eager = np.zeros(n, dtype=bool)
    slot_rows = (kind == EV_SEND) | (kind == EV_MATCH)
    ev_eager[slot_rows] = short._send_eager_arr[short.event_slot[slot_rows]]
    new_send_eager = tiled(ev_eager)[new_send_rows]
    new_send_rank = new_rank[new_send_rows].astype(np.int32)

    new_traffic = LinkUsageStats(
        messages=short._traffic.messages + tiles * delta_traffic.messages,
        bytes=short._traffic.bytes + tiles * delta_traffic.bytes,
        intra_node_messages=(short._traffic.intra_node_messages
                             + tiles * delta_traffic.intra_node_messages),
        inter_node_messages=(short._traffic.inter_node_messages
                             + tiles * delta_traffic.inter_node_messages),
        by_tag={tag: count + tiles * delta_traffic.by_tag.get(tag, 0)
                for tag, count in short._traffic.by_tag.items()},
    )

    return CompiledTrace(
        nranks=nranks,
        event_kind=new_kind,
        event_rank=new_rank,
        event_slot=new_slot.astype(np.int32),
        event_aux=tiled(short.event_aux),
        base=tiled(short._base),
        noise_kind=tiled(short._noise_kind),
        send_eager=new_send_eager,
        send_rank=new_send_rank,
        event_peer=tiled(short.event_peer),
        event_tag=tiled(short.event_tag),
        event_nbytes=tiled(short.event_nbytes),
        messages_sent=[int(count + tiles * d_msgs_sent[rank])
                       for rank, count in enumerate(short._messages_sent)],
        bytes_sent=[float(total + tiles * d_bytes_sent[rank])
                    for rank, total in enumerate(short._bytes_sent)],
        messages_received=[int(count + tiles * d_msgs_recv[rank])
                           for rank, count in
                           enumerate(short._messages_received)],
        bytes_received=[float(total + tiles * d_bytes_recv[rank])
                        for rank, total in
                        enumerate(short._bytes_received)],
        traffic=new_traffic,
        return_values=return_values,
    )
