"""Two-dimensional Cartesian process decomposition helpers.

SWEEP3D maps its spatial grid onto a logical ``Px x Py`` processor array
(Figure 1 of the paper).  :class:`Cart2D` provides the rank/coordinate
mapping and neighbour lookup used by both the parallel application and the
PACE pipeline parallel template, guaranteeing that they agree on the
communication structure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DecompositionError


@dataclass(frozen=True)
class Cart2D:
    """A ``Px x Py`` logical processor array with row-major rank numbering.

    The *i* direction (first index, size ``px``) corresponds to the paper's
    east-west pipeline direction; the *j* direction (second index, size
    ``py``) to north-south.  Rank ``r`` maps to coordinates
    ``(r // py, r % py)`` so that ranks in the same row are contiguous.
    """

    px: int
    py: int

    def __post_init__(self) -> None:
        if self.px < 1 or self.py < 1:
            raise DecompositionError(
                f"processor array dimensions must be >= 1 (got {self.px}x{self.py})")

    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """Total number of ranks in the array."""
        return self.px * self.py

    def coords(self, rank: int) -> tuple[int, int]:
        """The ``(i, j)`` coordinates of ``rank``."""
        if not 0 <= rank < self.size:
            raise DecompositionError(
                f"rank {rank} outside {self.px}x{self.py} processor array")
        return rank // self.py, rank % self.py

    def rank(self, i: int, j: int) -> int:
        """The rank at coordinates ``(i, j)``."""
        if not (0 <= i < self.px and 0 <= j < self.py):
            raise DecompositionError(
                f"coordinates ({i}, {j}) outside {self.px}x{self.py} processor array")
        return i * self.py + j

    def contains(self, i: int, j: int) -> bool:
        """Whether ``(i, j)`` lies inside the array."""
        return 0 <= i < self.px and 0 <= j < self.py

    # -- neighbours ----------------------------------------------------------

    def neighbour(self, rank: int, di: int, dj: int) -> int | None:
        """Rank offset by ``(di, dj)`` from ``rank``, or ``None`` at the boundary."""
        i, j = self.coords(rank)
        ni, nj = i + di, j + dj
        if not self.contains(ni, nj):
            return None
        return self.rank(ni, nj)

    def east(self, rank: int) -> int | None:
        """Neighbour in the +i direction."""
        return self.neighbour(rank, +1, 0)

    def west(self, rank: int) -> int | None:
        """Neighbour in the -i direction."""
        return self.neighbour(rank, -1, 0)

    def north(self, rank: int) -> int | None:
        """Neighbour in the +j direction."""
        return self.neighbour(rank, 0, +1)

    def south(self, rank: int) -> int | None:
        """Neighbour in the -j direction."""
        return self.neighbour(rank, 0, -1)

    # -- sweep support ---------------------------------------------------------

    def upstream(self, rank: int, idir: int, jdir: int) -> tuple[int | None, int | None]:
        """Upstream neighbours of ``rank`` for a sweep travelling (idir, jdir).

        ``idir``/``jdir`` are +1 or -1: the direction of particle travel.  A
        sweep travelling in +i receives its inflow from the -i neighbour.
        Returns ``(upstream_i, upstream_j)`` ranks (``None`` at the corner
        where the sweep originates).
        """
        self._check_direction(idir, jdir)
        return (self.neighbour(rank, -idir, 0), self.neighbour(rank, 0, -jdir))

    def downstream(self, rank: int, idir: int, jdir: int) -> tuple[int | None, int | None]:
        """Downstream neighbours of ``rank`` for a sweep travelling (idir, jdir)."""
        self._check_direction(idir, jdir)
        return (self.neighbour(rank, +idir, 0), self.neighbour(rank, 0, +jdir))

    def corner_rank(self, idir: int, jdir: int) -> int:
        """The rank at which a sweep travelling ``(idir, jdir)`` originates."""
        self._check_direction(idir, jdir)
        i = 0 if idir > 0 else self.px - 1
        j = 0 if jdir > 0 else self.py - 1
        return self.rank(i, j)

    def sweep_depth(self, rank: int, idir: int, jdir: int) -> int:
        """Number of pipeline hops between the origin corner and ``rank``."""
        self._check_direction(idir, jdir)
        i, j = self.coords(rank)
        di = i if idir > 0 else self.px - 1 - i
        dj = j if jdir > 0 else self.py - 1 - j
        return di + dj

    @staticmethod
    def _check_direction(idir: int, jdir: int) -> None:
        if idir not in (-1, 1) or jdir not in (-1, 1):
            raise DecompositionError(
                f"sweep directions must be +1/-1 (got idir={idir}, jdir={jdir})")

    # -- factory ----------------------------------------------------------------

    @classmethod
    def for_size(cls, nranks: int, prefer_square: bool = True) -> "Cart2D":
        """Choose a near-square ``Px x Py`` factorisation of ``nranks``.

        Mirrors the usual ``MPI_Dims_create`` behaviour: the factor pair
        with the smallest difference, with ``px <= py`` (the paper's tables
        also list the smaller dimension first).
        """
        if nranks < 1:
            raise DecompositionError("nranks must be >= 1")
        best: tuple[int, int] | None = None
        for px in range(1, int(nranks ** 0.5) + 1):
            if nranks % px == 0:
                best = (px, nranks // px)
        if best is None or not prefer_square:
            best = (1, nranks)
        return cls(*best)
