"""Rank-side facade used by simulated programs to build MPI operations.

A :class:`SimComm` is handed to every rank program.  Its methods *construct*
operation descriptors; the program must ``yield`` them to the engine, which
performs the operation and sends the result back into the generator::

    def program(comm):
        right = (comm.rank + 1) % comm.size
        yield comm.send(np.arange(4.0), dest=right, tag=1)
        data = yield comm.recv(source=comm.ANY_SOURCE, tag=1)
        total = yield comm.allreduce(float(data.sum()), op="sum")
        return total
"""

from __future__ import annotations

import sys
from typing import Any, Sequence

import numpy as np

from repro.errors import CommunicatorError
from repro.simnet.message import ANY_SOURCE, ANY_TAG
from repro.simmpi.operations import (
    AllReduce,
    Barrier,
    Bcast,
    Compute,
    ExecuteMix,
    Irecv,
    Isend,
    Now,
    Recv,
    ReduceOp,
    Send,
    Wait,
    WaitAll,
)


def payload_nbytes(payload: Any) -> float:
    """Estimate the on-the-wire size in bytes of a payload object.

    numpy arrays report their true buffer size; scalars count as one double;
    flat sequences of numbers count 8 bytes per element; anything else falls
    back to ``sys.getsizeof``.
    """
    if payload is None:
        return 0.0
    if isinstance(payload, np.ndarray):
        return float(payload.nbytes)
    if isinstance(payload, (bool, int, float, np.generic)):
        return 8.0
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return float(len(payload))
    if isinstance(payload, (list, tuple)) and all(
            isinstance(item, (bool, int, float, np.generic)) for item in payload):
        return 8.0 * len(payload)
    return float(sys.getsizeof(payload))


class SimComm:
    """Communicator handle for one simulated rank.

    Instances are created by the :class:`~repro.simmpi.engine.ClusterEngine`;
    user code receives one as the first argument of its rank program.
    """

    #: Wildcard source, mirroring ``MPI_ANY_SOURCE``.
    ANY_SOURCE = ANY_SOURCE
    #: Wildcard tag, mirroring ``MPI_ANY_TAG``.
    ANY_TAG = ANY_TAG

    def __init__(self, rank: int, size: int):
        if size < 1:
            raise CommunicatorError("communicator size must be >= 1")
        if not 0 <= rank < size:
            raise CommunicatorError(f"rank {rank} outside communicator of size {size}")
        self._rank = rank
        self._size = size

    # -- introspection -------------------------------------------------------

    @property
    def rank(self) -> int:
        """This process's rank in the communicator (0-based)."""
        return self._rank

    @property
    def size(self) -> int:
        """Number of ranks in the communicator."""
        return self._size

    def __repr__(self) -> str:
        return f"SimComm(rank={self._rank}, size={self._size})"

    # -- timing --------------------------------------------------------------

    def now(self) -> Now:
        """Read this rank's virtual clock (the simulated ``MPI_Wtime``)."""
        return Now()

    # -- computation ---------------------------------------------------------

    def compute(self, seconds: float) -> Compute:
        """Charge ``seconds`` of CPU time to this rank."""
        return Compute(float(seconds))

    def execute(self, mix: Any) -> ExecuteMix:
        """Charge the execution time of an :class:`~repro.simproc.OperationMix`."""
        return ExecuteMix(mix)

    # -- point to point ------------------------------------------------------

    def _check_peer(self, peer: int, allow_any: bool = False) -> None:
        if allow_any and peer == ANY_SOURCE:
            return
        if not 0 <= peer < self._size:
            raise CommunicatorError(
                f"peer rank {peer} outside communicator of size {self._size}")

    def send(self, payload: Any, dest: int, tag: int = 0,
             nbytes: float | None = None) -> Send:
        """Blocking standard-mode send."""
        self._check_peer(dest)
        size = payload_nbytes(payload) if nbytes is None else float(nbytes)
        return Send(dest=dest, payload=payload, nbytes=size, tag=tag)

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Recv:
        """Blocking receive; yields the received payload."""
        self._check_peer(source, allow_any=True)
        return Recv(source=source, tag=tag)

    def isend(self, payload: Any, dest: int, tag: int = 0,
              nbytes: float | None = None) -> Isend:
        """Non-blocking send; yields a :class:`~repro.simmpi.request.Request`."""
        self._check_peer(dest)
        size = payload_nbytes(payload) if nbytes is None else float(nbytes)
        return Isend(dest=dest, payload=payload, nbytes=size, tag=tag)

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Irecv:
        """Non-blocking receive; yields a :class:`~repro.simmpi.request.Request`."""
        self._check_peer(source, allow_any=True)
        return Irecv(source=source, tag=tag)

    def wait(self, request: Any) -> Wait:
        """Block until ``request`` completes; yields the payload for receives."""
        return Wait(request)

    def waitall(self, requests: Sequence[Any]) -> WaitAll:
        """Block until every request completes; yields a list of payloads."""
        return WaitAll(list(requests))

    # -- collectives ---------------------------------------------------------

    def allreduce(self, value: Any, op: ReduceOp | str = ReduceOp.SUM,
                  nbytes: float | None = None) -> AllReduce:
        """Reduce ``value`` across all ranks; every rank yields the result."""
        size = payload_nbytes(value) if nbytes is None else float(nbytes)
        return AllReduce(value=value, op=ReduceOp.coerce(op), nbytes=size)

    def barrier(self) -> Barrier:
        """Synchronise all ranks."""
        return Barrier()

    def bcast(self, value: Any, root: int = 0, nbytes: float | None = None) -> Bcast:
        """Broadcast ``value`` from ``root``; every rank yields the root's value."""
        self._check_peer(root)
        size = payload_nbytes(value) if nbytes is None else float(nbytes)
        return Bcast(value=value, root=root, nbytes=size)
