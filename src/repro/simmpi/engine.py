"""The discrete-event scheduling engine of the simulated cluster.

The engine advances every rank program (a generator) until it blocks on a
communication operation, computes virtual completion times from the
:mod:`repro.simnet` cost models and wakes blocked ranks when their
operations complete.  Because every completion time is a pure function of
the *posting* times of the participating ranks (``max`` of post times plus
link costs), the wall-clock order in which the engine happens to advance
ranks does not affect the virtual-time result — the simulation is
deterministic for deterministic programs.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.errors import (
    CommunicatorError,
    DeadlockError,
    RankFailureError,
    SimulationError,
)
from repro.simnet.message import ANY_SOURCE, ANY_TAG, Message
from repro.simnet.noise import NoiseModel
from repro.simnet.topology import ClusterTopology, LinkUsageStats
from repro.simmpi.communicator import SimComm
from repro.simmpi.operations import (
    AllReduce,
    Barrier,
    Bcast,
    Compute,
    ExecuteMix,
    Irecv,
    Isend,
    Now,
    Recv,
    Send,
    Wait,
    WaitAll,
)
from repro.simmpi.request import Request
from repro.units import snap_to_grid

_READY = "ready"
_BLOCKED = "blocked"
_DONE = "done"
_FAILED = "failed"


def collective_cost(kind: str, nbytes: float, nranks: int, link) -> float:
    """Base (noise-free) cost of one collective over ``nranks`` ranks.

    ``kind`` is the operation class name (``"AllReduce"``, ``"Bcast"``,
    ``"Barrier"``); ``link`` is the inter-node
    :class:`~repro.simnet.link.LinkModel`.  Shared by the engine's
    completion-time computation and the trace recorder
    (:mod:`repro.simmpi.trace`), so both price collectives identically.

    Collective costs are computed from the link's fitted parameters, not
    through its per-message methods, so a tick-quantized link
    (:class:`~repro.simnet.link.QuantizedLink`) exposes its
    ``time_quantum`` here and the aggregate cost snaps to the same dyadic
    grid as every point-to-point duration.
    """
    if nranks <= 1:
        return 0.0
    rounds = math.ceil(math.log2(nranks))
    per_hop = (link.latency + link.send_overhead + link.recv_overhead
               + nbytes / link.bandwidth)
    if kind == "AllReduce":
        cost = 2.0 * rounds * per_hop
    elif kind == "Bcast":
        cost = rounds * per_hop
    else:  # Barrier
        cost = 2.0 * rounds * (link.latency + link.send_overhead
                               + link.recv_overhead)
    quantum = getattr(link, "time_quantum", 0.0)
    if quantum:
        cost = snap_to_grid(cost, quantum)
    return cost


@dataclass
class RankResult:
    """Per-rank outcome of a simulated run."""

    rank: int
    finish_time: float
    return_value: Any = None
    compute_time: float = 0.0
    comm_time: float = 0.0
    messages_sent: int = 0
    bytes_sent: float = 0.0
    messages_received: int = 0
    bytes_received: float = 0.0

    @property
    def comm_fraction(self) -> float:
        """Fraction of the rank's finish time spent in communication."""
        if self.finish_time <= 0:
            return 0.0
        return self.comm_time / self.finish_time


@dataclass
class SimulationResult:
    """Outcome of one simulated parallel run."""

    nranks: int
    ranks: list[RankResult]
    elapsed_time: float
    traffic: LinkUsageStats

    @property
    def return_values(self) -> list[Any]:
        """Per-rank return values in rank order."""
        return [r.return_value for r in self.ranks]

    @property
    def total_compute_time(self) -> float:
        return sum(r.compute_time for r in self.ranks)

    @property
    def total_comm_time(self) -> float:
        return sum(r.comm_time for r in self.ranks)

    @property
    def max_comm_fraction(self) -> float:
        return max((r.comm_fraction for r in self.ranks), default=0.0)

    def rank_result(self, rank: int) -> RankResult:
        return self.ranks[rank]


# ---------------------------------------------------------------------------
# Internal bookkeeping records
# ---------------------------------------------------------------------------


@dataclass
class _PendingSend:
    """A send whose message has not yet been matched by a receive."""

    message: Message
    eager: bool
    sender_ready_time: float   # sender post + sender cpu overhead
    request: Request


@dataclass
class _PostedRecv:
    """A receive posted before its matching message was available."""

    rank: int
    source: int
    tag: int
    post_time: float
    request: Request


@dataclass
class _CollectiveSlot:
    """Per-index collective rendez-vous point across the communicator."""

    kind: str = ""
    posts: dict[int, tuple[float, Any]] = field(default_factory=dict)
    nbytes: float = 0.0
    op: Any = None
    root: int = 0


@dataclass
class _RankState:
    rank: int
    gen: Any
    clock: float = 0.0
    status: str = _READY
    resume_value: Any = None
    blocked_since: float = 0.0
    waiting_requests: list[Request] = field(default_factory=list)
    waiting_collective: int | None = None
    collective_counter: int = 0
    result: RankResult | None = None
    # statistics
    compute_time: float = 0.0
    comm_time: float = 0.0
    messages_sent: int = 0
    bytes_sent: float = 0.0
    messages_received: int = 0
    bytes_received: float = 0.0
    return_value: Any = None


class ClusterEngine:
    """Runs rank programs on a simulated cluster.

    Parameters
    ----------
    topology:
        Node layout and link cost models.
    processor:
        Optional :class:`~repro.simproc.ProcessorModel`; required only when
        rank programs charge compute time through
        :meth:`SimComm.execute` (an operation mix) rather than explicit
        seconds.
    noise:
        OS/network noise model; defaults to no noise (deterministic runs).
    max_operations:
        Safety valve: abort with :class:`SimulationError` if a single run
        executes more than this many operations (guards against unbounded
        loops in rank programs).

    .. note::
       Trace replay (:mod:`repro.simmpi.trace`) reproduces this engine's
       scheduling discipline, matching rules, noise-draw sites and
       floating-point accounting **by construction, in a separate lean
       pass** — any change to those semantics here must be mirrored in
       :class:`~repro.simmpi.trace.TraceRecorder`/
       :class:`~repro.simmpi.trace.CompiledTrace`.  The property-based
       replay==engine test (``tests/test_property_based.py``) and the
       ``bench_trace_speed`` gates exist to catch a desynchronisation.
    """

    def __init__(self, topology: ClusterTopology,
                 processor: Any = None,
                 noise: NoiseModel | None = None,
                 max_operations: int = 200_000_000):
        self.topology = topology
        self.processor = processor
        self.noise = noise if noise is not None else NoiseModel.disabled()
        self.max_operations = max_operations
        self._running = False
        self._reset([])

    # ------------------------------------------------------------------

    def _reset(self, states: list[_RankState]) -> None:
        """Install fresh per-run state.

        The engine is reusable across :meth:`run` invocations (a simulation
        plan keeps one engine alive for a whole scenario grid), so every
        piece of per-run bookkeeping — pending sends, posted receives,
        collective slots, traffic counters — is rebuilt here rather than
        carried over from the previous grid point.
        """
        nranks = len(states)
        self._states = states
        self._nranks = nranks
        self._run_noise = self.noise
        #: Unmatched sends per destination rank, indexed by (source, tag).
        #: Each deque is in send (seq) order, so the FIFO head is always the
        #: MPI non-overtaking match for a specific-source receive.
        self._unexpected: list[dict[tuple[int, int], deque[_PendingSend]]] = [
            {} for _ in range(nranks)]
        self._posted_recvs: list[list[_PostedRecv]] = [[] for _ in range(nranks)]
        self._collectives: dict[int, _CollectiveSlot] = {}
        self._request_waiters: dict[int, int] = {}
        self._ready: deque[int] = deque(range(nranks))
        self._traffic = LinkUsageStats()
        self._operations = 0

    def run(self, program: Callable[..., Any], nranks: int,
            program_args: Iterable[Any] = (),
            program_kwargs: dict[str, Any] | None = None,
            noise: NoiseModel | None = None) -> SimulationResult:
        """Execute ``program`` on ``nranks`` simulated ranks.

        ``program`` is called as ``program(comm, *program_args,
        **program_kwargs)`` for each rank and must return a generator
        (i.e. contain at least one ``yield``).

        ``noise`` overrides the engine's default noise model for this run
        only, so callers sharing one engine (a
        :class:`~repro.sweep3d.driver.SimulationPlan` re-executed across
        seeds) carry no cross-run mutable state; ``None`` uses the model
        the engine was constructed with.

        The engine may be reused: every invocation starts from a clean
        slate (no ``_PendingSend``/``_PostedRecv``/collective state leaks
        between runs, even when a previous run failed), and a re-entrant
        call from inside a rank program is rejected.
        """
        if self._running:
            raise SimulationError(
                "ClusterEngine.run() is not re-entrant; use a separate engine "
                "for nested simulations")
        if nranks < 1:
            raise SimulationError("nranks must be >= 1")
        self.topology.validate_rank_count(nranks)
        program_kwargs = dict(program_kwargs or {})

        states: list[_RankState] = []
        for rank in range(nranks):
            comm = SimComm(rank, nranks)
            gen = program(comm, *program_args, **program_kwargs)
            if not hasattr(gen, "send"):
                raise SimulationError(
                    "rank program must be a generator function (use 'yield')")
            states.append(_RankState(rank=rank, gen=gen))

        self._running = True
        self._reset(states)
        if noise is not None:
            self._run_noise = noise
        try:
            return self._execute(nranks)
        finally:
            self._running = False
            # Drop every reference to the finished (or failed) run so a
            # long-lived engine held by a simulation plan cannot pin rank
            # generators, pending messages or posted receives.
            self._reset([])

    def _execute(self, nranks: int) -> SimulationResult:
        while self._ready:
            rank = self._ready.popleft()
            state = self._states[rank]
            if state.status != _READY:
                continue
            self._advance(state)
            if not self._ready and not all(s.status == _DONE for s in self._states):
                blocked = [s.rank for s in self._states if s.status == _BLOCKED]
                if blocked:
                    raise DeadlockError(
                        f"deadlock: ranks {blocked} are blocked with no pending events",
                        blocked_ranks=blocked)

        unfinished = [s.rank for s in self._states if s.status != _DONE]
        if unfinished:
            raise DeadlockError(
                f"deadlock: ranks {unfinished} never completed", blocked_ranks=unfinished)

        results = []
        for state in self._states:
            results.append(RankResult(
                rank=state.rank,
                finish_time=state.clock,
                return_value=state.return_value,
                compute_time=state.compute_time,
                comm_time=state.comm_time,
                messages_sent=state.messages_sent,
                bytes_sent=state.bytes_sent,
                messages_received=state.messages_received,
                bytes_received=state.bytes_received,
            ))
        elapsed = max((r.finish_time for r in results), default=0.0)
        return SimulationResult(nranks=nranks, ranks=results, elapsed_time=elapsed,
                                traffic=self._traffic)

    # ------------------------------------------------------------------
    # Rank advancement
    # ------------------------------------------------------------------

    def _advance(self, state: _RankState) -> None:
        """Advance one rank until it blocks, finishes or fails."""
        while True:
            self._operations += 1
            if self._operations > self.max_operations:
                raise SimulationError(
                    f"operation budget exceeded ({self.max_operations}); "
                    "possible unbounded loop in a rank program")
            value, state.resume_value = state.resume_value, None
            try:
                op = state.gen.send(value)
            except StopIteration as stop:
                state.status = _DONE
                state.return_value = stop.value
                return
            except Exception as exc:  # noqa: BLE001 - converted to RankFailureError
                state.status = _FAILED
                raise RankFailureError(state.rank, exc) from exc

            if isinstance(op, Now):
                state.resume_value = state.clock
                continue
            if isinstance(op, Compute):
                duration = self._run_noise.perturb_compute(op.seconds)
                state.clock += duration
                state.compute_time += duration
                continue
            if isinstance(op, ExecuteMix):
                if self.processor is None:
                    raise SimulationError(
                        "SimComm.execute(mix) requires the engine to be built "
                        "with a processor model")
                duration = self._run_noise.perturb_compute(
                    self.processor.execute_time(op.mix))
                state.clock += duration
                state.compute_time += duration
                continue
            if isinstance(op, (Send, Isend)):
                request = self._do_send(state, op)
                if isinstance(op, Isend):
                    state.resume_value = request
                    continue
                if request.complete:
                    self._settle_wait(state, request, charge_comm=True)
                    state.resume_value = None
                    continue
                self._block_on_requests(state, [request])
                return
            if isinstance(op, (Recv, Irecv)):
                request = self._do_recv(state, op.source, op.tag)
                if isinstance(op, Irecv):
                    state.resume_value = request
                    continue
                if request.complete:
                    self._settle_wait(state, request, charge_comm=True)
                    state.resume_value = request.payload
                    continue
                self._block_on_requests(state, [request])
                return
            if isinstance(op, Wait):
                request = op.request
                if not isinstance(request, Request):
                    raise CommunicatorError("wait() expects a Request object")
                if request.complete:
                    self._settle_wait(state, request, charge_comm=True)
                    state.resume_value = request.payload
                    continue
                self._block_on_requests(state, [request])
                return
            if isinstance(op, WaitAll):
                requests = list(op.requests)
                if any(not isinstance(r, Request) for r in requests):
                    raise CommunicatorError("waitall() expects Request objects")
                if all(r.complete for r in requests):
                    for request in requests:
                        self._settle_wait(state, request, charge_comm=True)
                    state.resume_value = [r.payload for r in requests]
                    continue
                self._block_on_requests(state, requests)
                return
            if isinstance(op, (AllReduce, Barrier, Bcast)):
                completed = self._do_collective(state, op)
                if completed:
                    continue
                return
            raise CommunicatorError(
                f"rank {state.rank} yielded an unknown operation: {op!r}")

    # ------------------------------------------------------------------
    # Point-to-point
    # ------------------------------------------------------------------

    def _do_send(self, state: _RankState, op: Send | Isend) -> Request:
        link = self.topology.link_for(state.rank, op.dest)
        sender_cpu = link.sender_cpu_time(op.nbytes)
        post_time = state.clock
        message = Message(source=state.rank, dest=op.dest, tag=op.tag,
                          nbytes=op.nbytes, payload=op.payload,
                          send_post_time=post_time)
        request = Request(kind="send", rank=state.rank)
        state.clock += sender_cpu
        state.comm_time += sender_cpu
        state.messages_sent += 1
        state.bytes_sent += op.nbytes
        self._traffic.record(self.topology, state.rank, op.dest, op.nbytes, op.tag)

        eager = link.is_eager(op.nbytes)
        if eager:
            wire = self._run_noise.perturb_network(link.wire_time(op.nbytes))
            message.arrival_time = post_time + sender_cpu + wire
            request.mark_complete(post_time + sender_cpu)
        pending = _PendingSend(message=message, eager=eager,
                               sender_ready_time=post_time + sender_cpu,
                               request=request)

        matched = self._match_posted_recv(pending)
        if not matched:
            queue = self._unexpected[op.dest].setdefault(
                (state.rank, op.tag), deque())
            queue.append(pending)
        return request

    def _do_recv(self, state: _RankState, source: int, tag: int) -> Request:
        request = Request(kind="recv", rank=state.rank)
        posted = _PostedRecv(rank=state.rank, source=source, tag=tag,
                             post_time=state.clock, request=request)
        pending = self._match_unexpected(posted)
        if pending is None:
            self._posted_recvs[state.rank].append(posted)
        else:
            self._complete_pair(pending, posted)
        return request

    def _match_posted_recv(self, pending: _PendingSend) -> bool:
        """Try to match a new send against already-posted receives at its target."""
        queue = self._posted_recvs[pending.message.dest]
        for index, posted in enumerate(queue):
            if pending.message.matches(posted.source, posted.tag):
                del queue[index]
                self._complete_pair(pending, posted)
                return True
        return False

    def _match_unexpected(self, posted: _PostedRecv) -> _PendingSend | None:
        """Try to match a new receive against the unexpected-message queues.

        The common case — a receive naming both source and tag — is a O(1)
        FIFO pop from the matching (source, tag) deque, which is in send
        order per the MPI non-overtaking rule.  Wildcard receives fall back
        to scanning every matching queue entry with exactly the selection
        key the flat-list implementation used, so results are unchanged.
        """
        queues = self._unexpected[posted.rank]
        if posted.source != ANY_SOURCE and posted.tag != ANY_TAG:
            queue = queues.get((posted.source, posted.tag))
            if not queue:
                return None
            pending = queue.popleft()
            if not queue:
                del queues[(posted.source, posted.tag)]
            return pending

        best: tuple[tuple[float, int], tuple[int, int], int] | None = None
        for source_tag, queue in queues.items():
            for index, pending in enumerate(queue):
                if not pending.message.matches(posted.source, posted.tag):
                    continue
                if posted.source == ANY_SOURCE:
                    key = (pending.message.arrival_time if pending.eager
                           else pending.sender_ready_time, pending.message.seq)
                else:
                    # MPI non-overtaking rule: match in send order per source.
                    key = (float(pending.message.seq), pending.message.seq)
                if best is None or key < best[0]:
                    best = (key, source_tag, index)
        if best is None:
            return None
        _, source_tag, index = best
        queue = queues[source_tag]
        pending = queue[index]
        del queue[index]
        if not queue:
            del queues[source_tag]
        return pending

    def _complete_pair(self, pending: _PendingSend, posted: _PostedRecv) -> None:
        """Compute completion times for a matched send/receive pair."""
        message = pending.message
        link = self.topology.link_for(message.source, message.dest)
        receiver_cpu = link.receiver_cpu_time(message.nbytes)
        if pending.eager:
            recv_done = max(posted.post_time, message.arrival_time) + receiver_cpu
        else:
            start = max(pending.sender_ready_time, posted.post_time)
            wire = self._run_noise.perturb_network(link.wire_time(message.nbytes))
            arrival = start + wire
            message.arrival_time = arrival
            pending.request.mark_complete(arrival)
            self._notify_request(pending.request)
            recv_done = arrival + receiver_cpu

        receiver = self._states[posted.rank]
        receiver.messages_received += 1
        receiver.bytes_received += message.nbytes
        posted.request.mark_complete(recv_done, payload=message.payload)
        self._notify_request(posted.request)

    # ------------------------------------------------------------------
    # Blocking / wake-up machinery
    # ------------------------------------------------------------------

    def _block_on_requests(self, state: _RankState, requests: list[Request]) -> None:
        state.status = _BLOCKED
        state.blocked_since = state.clock
        state.waiting_requests = requests
        for request in requests:
            if not request.complete:
                self._request_waiters[request.request_id] = state.rank

    def _notify_request(self, request: Request) -> None:
        """Wake the rank (if any) blocked on ``request`` once all its waits are done."""
        rank = self._request_waiters.pop(request.request_id, None)
        if rank is None:
            return
        state = self._states[rank]
        if state.status != _BLOCKED or not state.waiting_requests:
            return
        if not all(r.complete for r in state.waiting_requests):
            return
        requests = state.waiting_requests
        state.waiting_requests = []
        for req in requests:
            self._settle_wait(state, req, charge_comm=True)
        if len(requests) == 1:
            state.resume_value = requests[0].payload
        else:
            state.resume_value = [r.payload for r in requests]
        state.status = _READY
        self._ready.append(rank)

    def _settle_wait(self, state: _RankState, request: Request,
                     charge_comm: bool) -> None:
        """Advance a rank's clock to a completed request's completion time."""
        if request.completion_time > state.clock:
            if charge_comm:
                state.comm_time += request.completion_time - state.clock
            state.clock = request.completion_time

    # ------------------------------------------------------------------
    # Collectives
    # ------------------------------------------------------------------

    def _do_collective(self, state: _RankState, op: AllReduce | Barrier | Bcast) -> bool:
        """Register a collective call; returns True if the caller may continue."""
        index = state.collective_counter
        state.collective_counter += 1
        slot = self._collectives.setdefault(index, _CollectiveSlot())
        kind = type(op).__name__
        if slot.posts and slot.kind != kind:
            raise CommunicatorError(
                f"collective mismatch at index {index}: rank {state.rank} called "
                f"{kind} but other ranks called {slot.kind}")
        slot.kind = kind
        if isinstance(op, AllReduce):
            slot.nbytes = max(slot.nbytes, op.nbytes)
            slot.op = op.op
            slot.posts[state.rank] = (state.clock, op.value)
        elif isinstance(op, Bcast):
            slot.nbytes = max(slot.nbytes, op.nbytes)
            slot.root = op.root
            slot.posts[state.rank] = (state.clock, op.value)
        else:
            slot.posts[state.rank] = (state.clock, None)

        if len(slot.posts) < self._nranks:
            state.status = _BLOCKED
            state.blocked_since = state.clock
            state.waiting_collective = index
            return False

        # Everyone has arrived: compute the completion time and the result.
        completion = self._collective_completion_time(slot)
        result = self._collective_result(slot)
        del self._collectives[index]

        for other in self._states:
            if other.rank == state.rank:
                continue
            if other.waiting_collective == index:
                other.waiting_collective = None
                post_time, _ = slot.posts[other.rank]
                other.comm_time += max(0.0, completion - post_time)
                other.clock = max(other.clock, completion)
                other.resume_value = result
                other.status = _READY
                self._ready.append(other.rank)

        post_time, _ = slot.posts[state.rank]
        state.comm_time += max(0.0, completion - post_time)
        state.clock = max(state.clock, completion)
        state.resume_value = result
        return True

    def _collective_completion_time(self, slot: _CollectiveSlot) -> float:
        base = max(post for post, _ in slot.posts.values())
        if self._nranks == 1:
            return base
        cost = collective_cost(slot.kind, slot.nbytes, self._nranks,
                               self.topology.inter_node)
        return base + self._run_noise.perturb_network(cost)

    def _collective_result(self, slot: _CollectiveSlot) -> Any:
        if slot.kind == "AllReduce":
            values = [value for _, value in
                      (slot.posts[rank] for rank in sorted(slot.posts))]
            return slot.op.combine(values)
        if slot.kind == "Bcast":
            return slot.posts[slot.root][1]
        return None
