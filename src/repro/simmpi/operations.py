"""Operation descriptors yielded by simulated rank programs.

Rank programs never manipulate the engine directly; they build these small
descriptor objects through the :class:`~repro.simmpi.communicator.SimComm`
facade and ``yield`` them.  The engine interprets each descriptor, advances
virtual time and sends the operation's result back into the generator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Sequence

import numpy as np

from repro.errors import CommunicatorError
from repro.simnet.message import ANY_SOURCE, ANY_TAG  # noqa: F401 (re-exported)


class ReduceOp(str, Enum):
    """Reduction operators supported by the simulated collectives."""

    SUM = "sum"
    MAX = "max"
    MIN = "min"
    PROD = "prod"

    def combine(self, values: Sequence[Any]) -> Any:
        """Apply the reduction across per-rank contributions."""
        if not values:
            raise CommunicatorError("cannot reduce an empty contribution list")
        arrays = [np.asarray(v) for v in values]
        stacked = np.stack([np.broadcast_to(a, arrays[0].shape) if a.shape != arrays[0].shape
                            else a for a in arrays])
        if self is ReduceOp.SUM:
            result = stacked.sum(axis=0)
        elif self is ReduceOp.MAX:
            result = stacked.max(axis=0)
        elif self is ReduceOp.MIN:
            result = stacked.min(axis=0)
        else:
            result = stacked.prod(axis=0)
        if result.shape == ():
            return result.item()
        return result

    @classmethod
    def coerce(cls, op: "ReduceOp | str") -> "ReduceOp":
        if isinstance(op, ReduceOp):
            return op
        try:
            return cls(str(op).lower())
        except ValueError:
            raise CommunicatorError(f"unknown reduction operator {op!r}") from None


class Operation:
    """Marker base class for everything a rank program may ``yield``."""

    __slots__ = ()


@dataclass
class Compute(Operation):
    """Charge ``seconds`` of CPU time to the issuing rank's clock."""

    seconds: float

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise CommunicatorError("compute time must be >= 0")


@dataclass
class ExecuteMix(Operation):
    """Charge the execution time of an operation mix (needs a processor model)."""

    mix: Any  # OperationMix; typed loosely to avoid an import cycle


@dataclass
class Send(Operation):
    """Blocking standard-mode send (``MPI_Send``)."""

    dest: int
    payload: Any
    nbytes: float
    tag: int = 0


@dataclass
class Recv(Operation):
    """Blocking receive (``MPI_Recv``); evaluates to the received payload."""

    source: int = ANY_SOURCE
    tag: int = ANY_TAG


@dataclass
class Isend(Operation):
    """Non-blocking send; evaluates to a :class:`~repro.simmpi.request.Request`."""

    dest: int
    payload: Any
    nbytes: float
    tag: int = 0


@dataclass
class Irecv(Operation):
    """Non-blocking receive; evaluates to a :class:`~repro.simmpi.request.Request`."""

    source: int = ANY_SOURCE
    tag: int = ANY_TAG


@dataclass
class Wait(Operation):
    """Block until ``request`` completes; evaluates to its payload (recv) or ``None``."""

    request: Any


@dataclass
class WaitAll(Operation):
    """Block until every request in ``requests`` completes; evaluates to a list."""

    requests: list = field(default_factory=list)


@dataclass
class AllReduce(Operation):
    """Combine ``value`` across all ranks; evaluates to the reduced value on every rank."""

    value: Any
    op: ReduceOp = ReduceOp.SUM
    nbytes: float = 8.0


@dataclass
class Barrier(Operation):
    """Synchronise all ranks."""


@dataclass
class Bcast(Operation):
    """Broadcast ``value`` from ``root``; evaluates to the root's value on every rank."""

    value: Any
    root: int = 0
    nbytes: float = 8.0


@dataclass
class Now(Operation):
    """Read the issuing rank's virtual clock; evaluates to seconds since start.

    The equivalent of ``MPI_Wtime()`` — used by the MPI micro-benchmark
    substitute to time individual operations in virtual time.
    """
