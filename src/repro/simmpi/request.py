"""Request handles for non-blocking simulated MPI operations."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

_request_ids = itertools.count(1)


@dataclass
class Request:
    """Completion handle returned by ``isend``/``irecv``.

    Attributes
    ----------
    kind:
        ``"send"`` or ``"recv"``.
    rank:
        The rank that owns (posted) the request.
    complete:
        Whether the operation has finished in virtual time.
    completion_time:
        Virtual time at which the operation completed (valid when
        ``complete`` is true).
    payload:
        For receive requests, the delivered payload.
    """

    kind: str
    rank: int
    complete: bool = False
    completion_time: float = 0.0
    payload: Any = None
    request_id: int = field(default_factory=lambda: next(_request_ids))

    def mark_complete(self, time: float, payload: Any = None) -> None:
        """Mark the request complete at virtual ``time`` with an optional payload."""
        self.complete = True
        self.completion_time = time
        if payload is not None:
            self.payload = payload

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        state = "done" if self.complete else "pending"
        return f"Request(#{self.request_id} {self.kind} rank={self.rank} {state})"
