"""Steady-state tier: O(period) resolution of periodic modelled traces.

Long pipelined sweeps settle into a *periodic regime*: after a warm-up
prefix, every rank repeats the same recv→compute→send pattern once per
block/angle batch, and the whole event stream is a warm-up + ``k``
verbatim repetitions of one period + a drain tail.  Replaying such a
trace (:meth:`~repro.simmpi.trace.CompiledTrace.replay`) is O(n_events)
even though the answer is determined by one period: in steady state the
max-plus recurrence grows by a constant per-period vector λ, so

    ``state(warmup + k·P) = state(warmup + j·P) + (k - j) · λ``

for any locked boundary ``j``.  This module detects the period, verifies
the growth vector has *locked*, extrapolates, and replays only the drain
— O(warmup + a few periods + drain) instead of O(n_events).

**Bit-identical or refuse.**  Floating-point addition is not
translation-invariant, so the extrapolation above is unsound for
arbitrary float durations.  It becomes *exact* when every event duration
is an integer multiple of one dyadic quantum ``q = 2**e`` and every
partial sum stays below ``2**52 · q``: then every add/subtract/max the
scalar replay performs is exact integer arithmetic, exact arithmetic is
associative and translation-invariant, and a locked per-period delta
provably repeats forever.  The tier therefore refuses (raising
:class:`SteadyStateError`, callers fall back to full replay) unless

* the noise model is disabled (noise draws break periodicity),
* the event stream is pattern-periodic with at least :data:`MIN_REPEATS`
  repetitions (kind/rank/peer/tag/nbytes/duration signature, send-slot
  indices advancing by a constant per period),
* the timebase is dyadic-exact (machines built with
  :meth:`~repro.machines.machine.Machine.quantized` guarantee this;
  continuous presets legitimately refuse), and
* a scan of consecutive period boundaries finds :data:`_LOCKIN_RUN`
  transitions whose full state delta — a *uniform* clock/slot-timestamp
  advance λ plus constant per-rank compute/comm increments — is bitwise
  identical (non-uniform growth means ranks have not coupled yet, and
  extrapolating would be unsound).

Every replayed segment (warm-up, lock-in scan, drain) goes through the
same scalar loop as :meth:`CompiledTrace.replay`
(:func:`~repro.simmpi.trace._replay_events`), so on acceptance the result
is bit-identical to the full replay — elapsed time, per-rank
finish/compute/comm, message and traffic statistics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import islice
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import TraceError
from repro.simmpi.engine import RankResult, SimulationResult
from repro.simmpi.trace import (
    EV_MATCH,
    EV_SEND,
    _copy_traffic,
    _replay_events,
)
from repro.simnet.noise import NoiseModel

if TYPE_CHECKING:
    from repro.simmpi.trace import CompiledTrace

#: Minimum number of period repetitions before steady is attempted.
MIN_REPEATS = 5

#: Distinct anchor-recurrence distances tried as candidate periods.
_MAX_CANDIDATES = 12

#: Period boundaries scanned for a locked growth vector before refusing.
_LOCKIN_BUDGET = 16

#: Consecutive bitwise-identical boundary transitions required to lock.
_LOCKIN_RUN = 3


class SteadyStateError(TraceError):
    """The steady tier refused a trace (callers fall back to full replay)."""


@dataclass(frozen=True)
class PeriodInfo:
    """Outcome of the period detection over one compiled trace.

    A periodic trace splits as ``warmup + repeats × period + drain``
    (event counts); ``sends_per_period`` is the constant by which send
    slot indices advance between consecutive periods.  For an aperiodic
    trace only ``reason`` is meaningful.
    """

    periodic: bool
    warmup: int = 0
    period: int = 0
    repeats: int = 0
    drain: int = 0
    sends_per_period: int = 0
    reason: str = ""

    def describe(self) -> str:
        if not self.periodic:
            return f"aperiodic ({self.reason})"
        return (f"periodic: warm-up {self.warmup} + {self.repeats} x "
                f"{self.period} event(s) + drain {self.drain}, "
                f"{self.sends_per_period} send(s)/period")


@dataclass
class _SteadyAnalysis:
    """Pattern-level (noise-independent) analysis memo of one trace."""

    info: PeriodInfo
    #: Dyadic quantum exponent ``e`` (``q = 2**e``), or ``None`` when the
    #: timebase is not exactly representable on any single dyadic grid.
    exponent: int | None
    exact_reason: str
    #: Per-slot send/match event indices (match == n_events: never matched).
    send_ev: np.ndarray
    match_ev: np.ndarray
    #: Message slots that are in flight across at least one period
    #: boundary, with the (inclusive) range of boundary indices ``j``
    #: (boundary ``j`` sits before event ``warmup + j*period``) each one
    #: spans.  Lets :func:`steady_replay` fetch a boundary's live set in
    #: O(candidates) instead of O(n_messages) per call.
    live_candidates: np.ndarray = None  # type: ignore[assignment]
    live_lo: np.ndarray = None          # type: ignore[assignment]
    live_hi: np.ndarray = None          # type: ignore[assignment]

    def live_at(self, j: int) -> np.ndarray:
        """Slots live at boundary ``j`` (sorted ascending)."""
        mask = (self.live_lo <= j) & (j <= self.live_hi)
        return self.live_candidates[mask]


def _signatures(trace: "CompiledTrace") -> np.ndarray:
    """Int64 content signature per event (pattern + exact durations)."""
    h = trace.event_kind.astype(np.int64)
    b_col = trace.event_rank.astype(np.int64)    # rank / receiver
    aux_bits = np.ascontiguousarray(trace.event_aux).view(np.int64)
    eager_flag = np.zeros(len(h), dtype=np.int64)
    slot_mask = (trace.event_kind == EV_SEND) | (trace.event_kind == EV_MATCH)
    if slot_mask.any():
        eager = trace._send_eager_arr.astype(np.int64)
        slots = trace.event_slot[slot_mask].astype(np.int64)
        eager_flag[slot_mask] = 1 + eager[slots]
    mult = np.int64(1000003)
    for col in (b_col,
                trace.event_peer.astype(np.int64),
                trace.event_tag.astype(np.int64),
                np.ascontiguousarray(trace.event_nbytes).view(np.int64),
                np.ascontiguousarray(trace._base).view(np.int64),
                aux_bits,
                trace._noise_kind.astype(np.int64),
                eager_flag):
        h = h * mult
        h ^= col
    return h


def _detect_period(trace: "CompiledTrace",
                   min_repeats: int) -> PeriodInfo:
    """Find the repeating suffix of the event stream, if any.

    Candidate periods are the recurrence distances of the *last* event's
    signature; the smallest candidate whose periodicity check passes
    wins.  A candidate must satisfy (a) ``sig[i + P] == sig[i]`` for
    every ``i`` in the periodic region, (b) send-slot indices advancing
    by exactly the per-period send count ``M``, and (c) at least
    ``min_repeats`` whole repetitions.
    """
    n = trace.n_events
    if n == 0:
        return PeriodInfo(periodic=False, reason="empty trace")
    sig = _signatures(trace)
    occ = np.flatnonzero(sig == sig[-1])
    if len(occ) < 2:
        return PeriodInfo(periodic=False,
                          reason="final event's signature never recurs")
    diffs = occ[-1] - occ[-1 - np.arange(1, min(_MAX_CANDIDATES + 1, len(occ)))]
    kind_col = trace.event_kind
    b_col = trace.event_slot.astype(np.int64)
    slot_mask = (kind_col == EV_SEND) | (kind_col == EV_MATCH)
    for period in sorted(set(int(d) for d in diffs)):
        if period < 1 or period >= n:
            continue
        mismatch = np.flatnonzero(sig[period:] != sig[:-period])
        warmup = int(mismatch[-1]) + 1 if len(mismatch) else 0
        repeats = (n - warmup) // period
        if repeats < min_repeats:
            continue
        sends = int(np.count_nonzero(
            kind_col[warmup:warmup + period] == EV_SEND))
        region = slot_mask[warmup:n - period]
        if not np.array_equal(b_col[warmup + period:n][region],
                              b_col[warmup:n - period][region] + sends):
            continue
        return PeriodInfo(periodic=True, warmup=warmup, period=period,
                          repeats=repeats, drain=(n - warmup) - repeats * period,
                          sends_per_period=sends)
    return PeriodInfo(
        periodic=False,
        reason=f"no candidate period with >= {min_repeats} repetitions")


def _dyadic_exponent(trace: "CompiledTrace") -> tuple[int | None, str]:
    """The shared dyadic grid exponent, or ``None`` with a reason.

    ``B`` (the sum of every base and auxiliary duration) bounds every
    value the scalar replay can hold, since each clock/accumulator is a
    sum of a subset of durations.  With ``e = ceil(log2 B) - 52`` the
    bound is ``B <= 2**52 · 2**e``, so if every duration is an integer
    multiple of ``q = 2**e`` the whole replay is exact integer
    arithmetic — the property the extrapolation relies on.
    """
    durations = np.concatenate([trace._base, trace.event_aux])
    total = float(durations.sum())
    if total == 0.0:
        return 0, ""
    exponent = math.ceil(math.log2(total)) - 52
    scaled = np.ldexp(durations, -exponent)
    if not np.all(np.floor(scaled) == scaled):
        return None, ("durations are not integer multiples of the dyadic "
                      f"quantum 2**{exponent} (continuous timebase; use a "
                      "quantized machine)")
    return exponent, ""


def analyze(trace: "CompiledTrace",
            min_repeats: int = MIN_REPEATS) -> _SteadyAnalysis:
    """Period + exactness analysis of a trace, cached on the trace."""
    cached = trace._steady_cache
    if cached is not None:
        return cached
    n = trace.n_events
    nmsg = trace.n_messages
    if n:
        info = _detect_period(trace, min_repeats)
        exponent, exact_reason = _dyadic_exponent(trace)
        kind_col = trace.event_kind
        b_col = trace.event_slot.astype(np.int64)
        send_ev = np.full(nmsg, -1, dtype=np.int64)
        send_mask = kind_col == EV_SEND
        send_ev[b_col[send_mask]] = np.flatnonzero(send_mask)
        match_ev = np.full(nmsg, n, dtype=np.int64)
        match_mask = kind_col == EV_MATCH
        match_ev[b_col[match_mask]] = np.flatnonzero(match_mask)
    else:
        info = PeriodInfo(periodic=False, reason="empty trace")
        exponent, exact_reason = 0, ""
        send_ev = np.empty(0, dtype=np.int64)
        match_ev = np.empty(0, dtype=np.int64)
    if info.periodic:
        # Boundary j sits before event warmup + j*period; slot s is live
        # there iff send_ev[s] < boundary <= match_ev[s] (and the slot is
        # matched at all), i.e. for j in [live_lo[s], live_hi[s]].
        live_lo = (send_ev - info.warmup) // info.period + 1
        live_hi = np.where(match_ev < n,
                           (match_ev - info.warmup) // info.period,
                           np.int64(-1))
        candidates = np.flatnonzero(live_lo <= live_hi)
        live_lo = live_lo[candidates]
        live_hi = live_hi[candidates]
    else:
        candidates = np.empty(0, dtype=np.int64)
        live_lo = np.empty(0, dtype=np.int64)
        live_hi = np.empty(0, dtype=np.int64)
    analysis = _SteadyAnalysis(info=info, exponent=exponent,
                               exact_reason=exact_reason,
                               send_ev=send_ev, match_ev=match_ev,
                               live_candidates=candidates,
                               live_lo=live_lo, live_hi=live_hi)
    trace._steady_cache = analysis
    return analysis


def detect_period(trace: "CompiledTrace",
                  min_repeats: int = MIN_REPEATS) -> PeriodInfo:
    """Public period-detection entry point (cached with the analysis)."""
    return analyze(trace, min_repeats).info


def describe_steady(trace: "CompiledTrace") -> str:
    """Human-readable period + steady-eligibility diagnostics."""
    analysis = analyze(trace)
    timebase = ("dyadic-exact timebase (steady-eligible)"
                if analysis.exponent is not None
                else "continuous timebase (steady refuses)")
    return f"{analysis.info.describe()}, {timebase}"


def _snapshot(analysis: _SteadyAnalysis, j: int,
              clock: list[float], comm: list[float], comp: list[float],
              ready_t: list[float], arrive: list[float],
              eager: list[bool]) -> tuple:
    """Full replay state at period boundary ``j``.

    The state comprises the per-rank clock/comm/comp values plus the
    timestamps of every *live* message slot — sent before the boundary,
    matched at or after it (slots that are never matched are excluded:
    their timestamps are never read again).  ``arrive`` entries are kept
    only for eager slots (rendez-vous matches read ``ready_t``).
    """
    live = analysis.live_at(j)
    return (list(clock), list(comm), list(comp), live,
            [ready_t[s] for s in live],
            [arrive[s] for s in live if eager[s]])


def _transition(prev: tuple, cur: tuple, sends_per_period: int,
                eager: list[bool]) -> tuple | None:
    """The per-period growth key between two boundary snapshots.

    Returns ``(λ, Δcomm, Δcomp)`` when the transition is structurally
    extrapolable — live slots shifted by exactly the per-period send
    count with matching protocols, and every timestamp (rank clocks and
    live slot times) advanced by one bitwise-uniform λ.  Uniformity is
    what makes the extrapolation provably exact: exact integer max-plus
    arithmetic commutes with a uniform translation, so a locked
    transition repeats verbatim forever.  Returns ``None`` otherwise.
    """
    clk0, com0, cmp0, liv0, rt0, ar0 = prev
    clk1, com1, cmp1, liv1, rt1, ar1 = cur
    if len(liv0) != len(liv1):
        return None
    if not np.array_equal(liv1, liv0 + sends_per_period):
        return None
    for s in liv0:
        if eager[s] != eager[s + sends_per_period]:
            return None
    lam = clk1[0] - clk0[0]
    for before, after in zip(clk0, clk1):
        if after - before != lam:
            return None
    for before, after in zip(rt0, rt1):
        if after - before != lam:
            return None
    for before, after in zip(ar0, ar1):
        if after - before != lam:
            return None
    dcomm = tuple(after - before for before, after in zip(com0, com1))
    dcomp = tuple(after - before for before, after in zip(cmp0, cmp1))
    return (lam, dcomm, dcomp)


def steady_replay(trace: "CompiledTrace",
                  noise: NoiseModel | None = None) -> SimulationResult:
    """Resolve a periodic trace in O(period) — bit-identical or refuse.

    On success the returned :class:`~repro.simmpi.engine.SimulationResult`
    is bit-identical to ``trace.replay(noise)`` (and hence to the
    reference engine).  Any precondition failure raises
    :class:`SteadyStateError` with the reason; callers fall back to the
    full replay, so correctness is never traded for speed.
    """
    if noise is not None and not noise.is_disabled():
        raise SteadyStateError(
            "noise model is enabled: noise draws are per-event, so a noisy "
            "run has no repeating period (use the replay tier)")
    analysis = analyze(trace)
    info = analysis.info
    if not info.periodic:
        raise SteadyStateError(f"trace is not periodic: {info.reason}")
    if analysis.exponent is None:
        raise SteadyStateError(analysis.exact_reason)

    n = trace.n_events
    nranks = trace.nranks
    warmup, period, repeats = info.warmup, info.period, info.repeats
    sends = info.sends_per_period
    eager = trace._send_eager
    srank = trace._send_rank

    clock = [0.0] * nranks
    comm = [0.0] * nranks
    comp = [0.0] * nranks
    ready_t = [0.0] * trace.n_messages
    arrive = [0.0] * trace.n_messages
    events = iter(zip(trace._program, trace._base_list))
    position = 0

    def replay_until(target: int) -> None:
        nonlocal position
        _replay_events(islice(events, target - position), nranks,
                       clock, comm, comp, ready_t, arrive, eager, srank)
        position = target

    # Lock-in scan: replay whole periods until _LOCKIN_RUN consecutive
    # boundary transitions carry the same uniform growth vector.
    replay_until(warmup)
    snap = _snapshot(analysis, 0, clock, comm, comp,
                     ready_t, arrive, eager)
    keys: list[tuple | None] = []
    locked_at = None
    last_boundary = min(repeats, _LOCKIN_BUDGET)
    for j in range(1, last_boundary + 1):
        replay_until(warmup + j * period)
        nxt = _snapshot(analysis, j,
                        clock, comm, comp, ready_t, arrive, eager)
        keys.append(_transition(snap, nxt, sends, eager))
        snap = nxt
        if (len(keys) >= _LOCKIN_RUN and keys[-1] is not None
                and all(key == keys[-1] for key in keys[-_LOCKIN_RUN:])):
            locked_at = j
            break
    if locked_at is None:
        raise SteadyStateError(
            f"no locked growth vector within {last_boundary} period(s): the "
            "per-period state delta never became a bitwise-constant uniform "
            "advance")

    lam, dcomm, dcomp = keys[-1]
    skipped = repeats - locked_at
    if skipped > 0:
        target = warmup + repeats * period
        live = snap[3]
        live_target = analysis.live_at(repeats)
        if not np.array_equal(live_target, live + skipped * sends):
            raise SteadyStateError(
                "live message-slot structure does not repeat up to the "
                "drain boundary")
        # All sums below are exact: every term is an integer multiple of
        # the dyadic quantum and bounded by the total duration sum.
        shift = skipped * lam
        for rank in range(nranks):
            clock[rank] += shift
            comm[rank] += skipped * dcomm[rank]
            comp[rank] += skipped * dcomp[rank]
        offset = skipped * sends
        for s in live:
            ready_t[s + offset] = ready_t[s] + shift
            if eager[s + offset]:
                arrive[s + offset] = arrive[s] + shift
        position = target
        drain = zip(trace._program[target:], trace._base_list[target:])
        _replay_events(drain, nranks, clock, comm, comp,
                       ready_t, arrive, eager, srank)
    else:
        replay_until(n)

    ranks = [RankResult(
        rank=rank,
        finish_time=clock[rank],
        return_value=trace._return_values[rank],
        compute_time=comp[rank],
        comm_time=comm[rank],
        messages_sent=trace._messages_sent[rank],
        bytes_sent=trace._bytes_sent[rank],
        messages_received=trace._messages_received[rank],
        bytes_received=trace._bytes_received[rank],
    ) for rank in range(nranks)]
    elapsed = max((r.finish_time for r in ranks), default=0.0)
    trace.steady_replays += 1
    return SimulationResult(nranks=nranks, ranks=ranks,
                            elapsed_time=elapsed,
                            traffic=_copy_traffic(trace._traffic))
