"""Trace-compiled modelled runs: record the event stream once, replay fast.

A *modelled* (timing-only) run of a well-behaved rank program has an event
pattern — which rank computes, sends, receives or joins a collective, in
what order, with what sizes — that is a pure function of the program and
its arguments, independent of the link timings and of the noise model.
Only the *durations* change between runs.  The
:class:`~repro.simmpi.engine.ClusterEngine` nevertheless re-executes the
Python generators and re-dispatches every operation through its scheduler
on every run.

This module splits that work in two:

* :class:`TraceRecorder` executes each rank program **once** in a
  pattern-capture pass.  It drives the generators with exactly the
  engine's scheduling discipline (FIFO ready queue, (source, tag)-indexed
  message matching, rendez-vous collectives) but computes no virtual
  times — it records a flat event table (kind, rank, peer, tag, nbytes)
  plus the pre-resolved base durations (compute charges from the cost
  table, wire times and CPU overheads from the link models, collective
  costs) and the send/recv pair matching, all as flat arrays.

* :class:`CompiledTrace.replay` resolves every completion time with the
  max-plus recurrence ``t[e] = max(t[deps(e)]) + dur[e]`` over the
  pre-matched pairs and collectives — no generators, no scheduler, no
  per-event object allocation.  Noise is applied up front by a single
  vectorised :meth:`~repro.simnet.noise.NoiseModel.perturb_batch` call
  over the recorded draw sites (which are laid out in exactly the order
  the engine would have consumed the generator stream), so a replay at a
  given seed is **bit-identical** to a ``ClusterEngine`` run at the same
  seed: same elapsed time, same per-rank finish/compute/comm times, same
  message statistics.

Only timing-independent patterns can be captured: numeric-payload runs,
wildcard receives, non-blocking requests and clock reads raise
:class:`~repro.errors.TraceError` (callers fall back to the engine).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Iterable

import numpy as np

from repro.errors import (
    CommunicatorError,
    DeadlockError,
    RankFailureError,
    TraceError,
)
from repro.simmpi.communicator import SimComm
from repro.simmpi.engine import (
    RankResult,
    SimulationResult,
    collective_cost,
)
from repro.simmpi.operations import (
    AllReduce,
    Barrier,
    Bcast,
    Compute,
    ExecuteMix,
    Recv,
    Send,
)
from repro.simnet.message import ANY_SOURCE, ANY_TAG
from repro.simnet.noise import NoiseModel
from repro.simnet.topology import ClusterTopology, LinkUsageStats

#: Event kinds of the recorded instruction stream.
EV_COMPUTE = 0
EV_SEND = 1
EV_MATCH = 2
EV_COLLECTIVE = 3

_READY = "ready"
_BLOCKED = "blocked"
_DONE = "done"


class _RecRank:
    """Per-rank capture state (no virtual clock — pattern only)."""

    __slots__ = ("rank", "gen", "status", "resume", "collective_counter",
                 "return_value")

    def __init__(self, rank: int, gen: Any):
        self.rank = rank
        self.gen = gen
        self.status = _READY
        self.resume: Any = None
        self.collective_counter = 0
        self.return_value: Any = None


class _Collective:
    """Rendez-vous bookkeeping for one collective index during capture."""

    __slots__ = ("kind", "posts", "nbytes", "op", "root")

    def __init__(self):
        self.kind = ""
        self.posts: dict[int, Any] = {}
        self.nbytes = 0.0
        self.op: Any = None
        self.root = 0


def _copy_traffic(traffic: LinkUsageStats) -> LinkUsageStats:
    return LinkUsageStats(
        messages=traffic.messages,
        bytes=traffic.bytes,
        intra_node_messages=traffic.intra_node_messages,
        inter_node_messages=traffic.inter_node_messages,
        by_tag=dict(traffic.by_tag),
    )


class CompiledTrace:
    """One captured event stream, replayable under any noise model.

    Build instances with :meth:`TraceRecorder.record` (or
    :meth:`~repro.sweep3d.driver.SimulationPlan.compile_trace`).  The
    public arrays describe the recorded pattern; :meth:`replay` resolves
    the virtual times for one noise stream.
    """

    def __init__(self, nranks: int,
                 program: list[tuple[int, int, int, float]],
                 base: np.ndarray, noise_kind: np.ndarray,
                 send_eager: list[bool], send_rank: list[int],
                 event_rank: np.ndarray, event_kind: np.ndarray,
                 event_peer: np.ndarray, event_tag: np.ndarray,
                 event_nbytes: np.ndarray,
                 messages_sent: list[int], bytes_sent: list[float],
                 messages_received: list[int], bytes_received: list[float],
                 traffic: LinkUsageStats, return_values: list[Any]):
        self.nranks = nranks
        #: Flat per-event pattern table (numpy arrays, engine order).
        self.event_kind = event_kind
        self.event_rank = event_rank
        self.event_peer = event_peer
        self.event_tag = event_tag
        self.event_nbytes = event_nbytes
        #: Number of times :meth:`replay` has run.
        self.replays = 0
        self._program = program
        self._base = base
        self._base_list = base.tolist()
        self._noise_kind = noise_kind
        self._draw_index = np.flatnonzero(noise_kind)
        self._draw_kinds = noise_kind[self._draw_index]
        self._draw_bases = base[self._draw_index]
        self._send_eager = send_eager
        self._send_rank = send_rank
        self._messages_sent = messages_sent
        self._bytes_sent = bytes_sent
        self._messages_received = messages_received
        self._bytes_received = bytes_received
        self._traffic = traffic
        self._return_values = return_values

    # ------------------------------------------------------------------

    @property
    def n_events(self) -> int:
        return len(self._program)

    @property
    def n_messages(self) -> int:
        return len(self._send_rank)

    def describe(self) -> str:
        return (f"compiled trace: {self.nranks} rank(s), {self.n_events} "
                f"event(s), {self.n_messages} message(s), "
                f"{len(self._draw_index)} noise draw site(s)")

    # ------------------------------------------------------------------

    def _durations(self, noise: NoiseModel | None) -> list[float]:
        """Per-event durations with ``noise`` applied in engine draw order."""
        if noise is None or noise.is_disabled():
            return self._base_list
        durs = self._base.copy()
        if len(self._draw_index):
            durs[self._draw_index] = noise.perturb_batch(
                self._draw_bases, self._draw_kinds)
        return durs.tolist()

    def replay(self, noise: NoiseModel | None = None) -> SimulationResult:
        """Resolve all completion times under ``noise`` (max-plus pass).

        Bit-identical to :meth:`ClusterEngine.run
        <repro.simmpi.engine.ClusterEngine.run>` of the recorded program
        with the same noise model: the per-rank clock/statistics updates
        are replayed in the engine's exact floating-point order, and the
        noise stream is consumed at the same sites in the same sequence.

        The returned per-rank ``return_value`` objects are the ones
        captured during recording and are shared across replays — treat
        them as read-only.
        """
        durs = self._durations(noise)
        nranks = self.nranks
        clock = [0.0] * nranks
        comm = [0.0] * nranks
        comp = [0.0] * nranks
        ready_t = [0.0] * len(self._send_rank)
        arrive = [0.0] * len(self._send_rank)
        eager = self._send_eager
        srank = self._send_rank

        for (kind, a, b, aux), d in zip(self._program, durs):
            if kind == EV_COMPUTE:
                clock[a] += d
                comp[a] += d
            elif kind == EV_SEND:
                c = clock[a] + aux          # aux: sender CPU overhead
                clock[a] = c
                comm[a] += aux
                ready_t[b] = c
                if eager[b]:
                    arrive[b] = c + d       # d: eager wire time
            elif kind == EV_MATCH:
                pc = clock[a]               # a: receiver rank (blocked => post time)
                if eager[b]:
                    done = arrive[b]
                    if pc > done:
                        done = pc
                    done += aux             # aux: receiver CPU overhead
                else:
                    start = ready_t[b]
                    if pc > start:
                        start = pc
                    arrival = start + d     # d: rendez-vous wire time
                    sender = srank[b]
                    sc = clock[sender]
                    if arrival > sc:
                        comm[sender] += arrival - sc
                        clock[sender] = arrival
                    done = arrival + aux
                if done > pc:
                    comm[a] += done - pc
                    clock[a] = done
            else:                           # EV_COLLECTIVE
                base = max(clock)
                completion = base + d       # d: collective cost (0 for 1 rank)
                for rank in range(nranks):
                    c = clock[rank]
                    delta = completion - c
                    if delta > 0.0:
                        comm[rank] += delta
                        clock[rank] = completion

        ranks = [RankResult(
            rank=rank,
            finish_time=clock[rank],
            return_value=self._return_values[rank],
            compute_time=comp[rank],
            comm_time=comm[rank],
            messages_sent=self._messages_sent[rank],
            bytes_sent=self._bytes_sent[rank],
            messages_received=self._messages_received[rank],
            bytes_received=self._bytes_received[rank],
        ) for rank in range(nranks)]
        elapsed = max((r.finish_time for r in ranks), default=0.0)
        self.replays += 1
        return SimulationResult(nranks=nranks, ranks=ranks,
                                elapsed_time=elapsed,
                                traffic=_copy_traffic(self._traffic))


class TraceRecorder:
    """Captures the event pattern of a modelled rank program.

    Drives the rank generators once with the same scheduling discipline as
    :class:`~repro.simmpi.engine.ClusterEngine` — the recorded event order
    is therefore exactly the order in which the engine would consume noise
    draws — but performs no virtual-time arithmetic.  Supported
    operations: ``compute``, ``execute``, blocking ``send``/``recv`` with
    explicit source and tag, and the three collectives.  Anything whose
    pattern or result could depend on virtual time (``now``, wildcard
    receives, ``isend``/``irecv``/``wait``/``waitall``) raises
    :class:`~repro.errors.TraceError`.
    """

    def __init__(self, topology: ClusterTopology, processor: Any = None,
                 max_operations: int = 200_000_000):
        self.topology = topology
        self.processor = processor
        self.max_operations = max_operations

    # ------------------------------------------------------------------

    def record(self, program: Callable[..., Any], nranks: int,
               program_args: Iterable[Any] = (),
               program_kwargs: dict[str, Any] | None = None) -> CompiledTrace:
        """Run ``program`` once on ``nranks`` ranks, recording the pattern."""
        if nranks < 1:
            raise TraceError("nranks must be >= 1")
        self.topology.validate_rank_count(nranks)
        program_kwargs = dict(program_kwargs or {})

        states: list[_RecRank] = []
        for rank in range(nranks):
            comm = SimComm(rank, nranks)
            gen = program(comm, *program_args, **program_kwargs)
            if not hasattr(gen, "send"):
                raise TraceError(
                    "rank program must be a generator function (use 'yield')")
            states.append(_RecRank(rank, gen))

        # Instruction stream (parallel lists; engine processing order).
        ops: list[int] = []
        arg_a: list[int] = []           # rank (compute/send) / receiver (match)
        arg_b: list[int] = []           # send slot (send/match), -1 otherwise
        aux: list[float] = []           # sender/receiver CPU overhead
        base: list[float] = []          # duration subject to noise (or 0)
        noise_kind: list[int] = []      # 0 none / COMPUTE / NETWORK
        # Introspection table, aligned with the instruction stream.
        ev_peer: list[int] = []
        ev_tag: list[int] = []
        ev_nbytes: list[float] = []
        # Send slots.
        send_eager: list[bool] = []
        send_rank: list[int] = []
        send_waiting: list[bool] = []   # sender blocked on this rendez-vous send
        # Matching state (blocking ops only: <= 1 posted recv per rank).
        unexpected: list[dict[tuple[int, int], deque]] = [
            {} for _ in range(nranks)]
        posted: list[tuple[int, int] | None] = [None] * nranks
        collectives: dict[int, _Collective] = {}
        waiting_collective: list[int | None] = [None] * nranks
        waiting_send: list[int | None] = [None] * nranks   # blocked sender's slot
        # Per-rank message statistics (noise-independent).
        messages_sent = [0] * nranks
        bytes_sent = [0.0] * nranks
        messages_received = [0] * nranks
        bytes_received = [0.0] * nranks
        traffic = LinkUsageStats()

        ready: deque[int] = deque(range(nranks))
        operations = 0

        def emit(kind: int, a: int, b: int, x: float, dur: float, nk: int,
                 peer: int = -1, tag: int = -1, nbytes: float = 0.0) -> None:
            ops.append(kind)
            arg_a.append(a)
            arg_b.append(b)
            aux.append(x)
            base.append(dur)
            noise_kind.append(nk)
            ev_peer.append(peer)
            ev_tag.append(tag)
            ev_nbytes.append(nbytes)

        def emit_match(pending: tuple, receiver: int) -> None:
            """Record a matched pair; wake a blocked rendez-vous sender."""
            slot, payload, nbytes, rcpu, wire, is_eager, sender, tag = pending
            emit(EV_MATCH, receiver, slot, rcpu,
                 0.0 if is_eager else wire,
                 0 if is_eager else NoiseModel.NETWORK,
                 peer=sender, tag=tag, nbytes=nbytes)
            messages_received[receiver] += 1
            bytes_received[receiver] += nbytes
            if not is_eager and send_waiting[slot]:
                send_waiting[slot] = False
                sender_state = states[sender]
                waiting_send[sender] = None
                sender_state.resume = None
                sender_state.status = _READY
                ready.append(sender)

        def advance(state: _RecRank) -> None:
            nonlocal operations
            while True:
                operations += 1
                if operations > self.max_operations:
                    raise TraceError(
                        f"operation budget exceeded ({self.max_operations}) "
                        "during trace capture")
                value, state.resume = state.resume, None
                try:
                    op = state.gen.send(value)
                except StopIteration as stop:
                    state.status = _DONE
                    state.return_value = stop.value
                    return
                except Exception as exc:  # noqa: BLE001 - mirrors the engine
                    raise RankFailureError(state.rank, exc) from exc

                if isinstance(op, Compute):
                    emit(EV_COMPUTE, state.rank, -1, 0.0, op.seconds,
                         NoiseModel.COMPUTE)
                    continue
                if isinstance(op, ExecuteMix):
                    if self.processor is None:
                        raise TraceError(
                            "SimComm.execute(mix) requires the recorder to be "
                            "built with a processor model")
                    emit(EV_COMPUTE, state.rank, -1, 0.0,
                         self.processor.execute_time(op.mix),
                         NoiseModel.COMPUTE)
                    continue
                if isinstance(op, Send):
                    rank = state.rank
                    link = self.topology.link_for(rank, op.dest)
                    cpu = link.sender_cpu_time(op.nbytes)
                    rcpu = link.receiver_cpu_time(op.nbytes)
                    wire = link.wire_time(op.nbytes)
                    is_eager = link.is_eager(op.nbytes)
                    slot = len(send_rank)
                    send_rank.append(rank)
                    send_eager.append(is_eager)
                    send_waiting.append(False)
                    emit(EV_SEND, rank, slot, cpu,
                         wire if is_eager else 0.0,
                         NoiseModel.NETWORK if is_eager else 0,
                         peer=op.dest, tag=op.tag, nbytes=op.nbytes)
                    messages_sent[rank] += 1
                    bytes_sent[rank] += op.nbytes
                    traffic.record(self.topology, rank, op.dest, op.nbytes,
                                   op.tag)
                    pending = (slot, op.payload, op.nbytes, rcpu, wire,
                               is_eager, rank, op.tag)
                    if posted[op.dest] == (rank, op.tag):
                        posted[op.dest] = None
                        emit_match(pending, op.dest)
                        receiver = states[op.dest]
                        receiver.resume = op.payload
                        receiver.status = _READY
                        ready.append(op.dest)
                        continue
                    queue = unexpected[op.dest].setdefault(
                        (rank, op.tag), deque())
                    queue.append(pending)
                    if is_eager:
                        continue
                    # Blocking rendez-vous send with no posted receive:
                    # the sender waits for the match, exactly as in the
                    # engine (the request completes at arrival time).
                    send_waiting[slot] = True
                    waiting_send[rank] = slot
                    state.status = _BLOCKED
                    return
                if isinstance(op, Recv):
                    if op.source == ANY_SOURCE or op.tag == ANY_TAG:
                        raise TraceError(
                            "wildcard receives are timing-dependent and "
                            "cannot be trace-compiled")
                    rank = state.rank
                    queues = unexpected[rank]
                    queue = queues.get((op.source, op.tag))
                    if queue:
                        pending = queue.popleft()
                        if not queue:
                            del queues[(op.source, op.tag)]
                        emit_match(pending, rank)
                        state.resume = pending[1]
                        continue
                    if posted[rank] is not None:
                        raise TraceError(
                            "rank posted a second receive while one was "
                            "outstanding")
                    posted[rank] = (op.source, op.tag)
                    state.status = _BLOCKED
                    return
                if isinstance(op, (AllReduce, Barrier, Bcast)):
                    index = state.collective_counter
                    state.collective_counter += 1
                    slot = collectives.setdefault(index, _Collective())
                    kind = type(op).__name__
                    if slot.posts and slot.kind != kind:
                        raise CommunicatorError(
                            f"collective mismatch at index {index}: rank "
                            f"{state.rank} called {kind} but other ranks "
                            f"called {slot.kind}")
                    slot.kind = kind
                    if isinstance(op, AllReduce):
                        slot.nbytes = max(slot.nbytes, op.nbytes)
                        slot.op = op.op
                        slot.posts[state.rank] = op.value
                    elif isinstance(op, Bcast):
                        slot.nbytes = max(slot.nbytes, op.nbytes)
                        slot.root = op.root
                        slot.posts[state.rank] = op.value
                    else:
                        slot.posts[state.rank] = None
                    if len(slot.posts) < nranks:
                        waiting_collective[state.rank] = index
                        state.status = _BLOCKED
                        return
                    # Last arrival: one instruction resolves every rank.
                    cost = collective_cost(kind, slot.nbytes, nranks,
                                           self.topology.inter_node)
                    emit(EV_COLLECTIVE, -1, -1, 0.0, cost,
                         NoiseModel.NETWORK if nranks > 1 else 0,
                         nbytes=slot.nbytes)
                    if kind == "AllReduce":
                        result = slot.op.combine(
                            [slot.posts[rank] for rank in sorted(slot.posts)])
                    elif kind == "Bcast":
                        result = slot.posts[slot.root]
                    else:
                        result = None
                    del collectives[index]
                    for other in states:
                        if other.rank == state.rank:
                            continue
                        if waiting_collective[other.rank] == index:
                            waiting_collective[other.rank] = None
                            other.resume = result
                            other.status = _READY
                            ready.append(other.rank)
                    state.resume = result
                    continue
                raise TraceError(
                    f"operation {type(op).__name__} is timing-dependent or "
                    "unsupported by trace capture (supported: compute, "
                    "execute, blocking send/recv with explicit source and "
                    "tag, allreduce, barrier, bcast)")

        while ready:
            rank = ready.popleft()
            state = states[rank]
            if state.status != _READY:
                continue
            advance(state)
            if not ready and not all(s.status == _DONE for s in states):
                blocked = [s.rank for s in states if s.status == _BLOCKED]
                if blocked:
                    raise DeadlockError(
                        f"deadlock during trace capture: ranks {blocked} are "
                        "blocked with no pending events",
                        blocked_ranks=blocked)

        unfinished = [s.rank for s in states if s.status != _DONE]
        if unfinished:
            raise DeadlockError(
                f"deadlock during trace capture: ranks {unfinished} never "
                "completed", blocked_ranks=unfinished)

        return CompiledTrace(
            nranks=nranks,
            program=list(zip(ops, arg_a, arg_b, aux)),
            base=np.asarray(base, dtype=float),
            noise_kind=np.asarray(noise_kind, dtype=np.int8),
            send_eager=send_eager,
            send_rank=send_rank,
            event_rank=np.asarray(arg_a, dtype=np.int32),
            event_kind=np.asarray(ops, dtype=np.int8),
            event_peer=np.asarray(ev_peer, dtype=np.int32),
            event_tag=np.asarray(ev_tag, dtype=np.int32),
            event_nbytes=np.asarray(ev_nbytes, dtype=float),
            messages_sent=messages_sent,
            bytes_sent=bytes_sent,
            messages_received=messages_received,
            bytes_received=bytes_received,
            traffic=traffic,
            return_values=[s.return_value for s in states],
        )
