"""Trace-compiled modelled runs: record the event stream once, replay fast.

A *modelled* (timing-only) run of a well-behaved rank program has an event
pattern — which rank computes, sends, receives or joins a collective, in
what order, with what sizes — that is a pure function of the program and
its arguments, independent of the link timings and of the noise model.
Only the *durations* change between runs.  The
:class:`~repro.simmpi.engine.ClusterEngine` nevertheless re-executes the
Python generators and re-dispatches every operation through its scheduler
on every run.

This module splits that work in two:

* :class:`TraceRecorder` executes each rank program **once** in a
  pattern-capture pass.  It drives the generators with exactly the
  engine's scheduling discipline (FIFO ready queue, (source, tag)-indexed
  message matching, rendez-vous collectives) but computes no virtual
  times — it records a flat event table (kind, rank, peer, tag, nbytes)
  plus the pre-resolved base durations (compute charges from the cost
  table, wire times and CPU overheads from the link models, collective
  costs) and the send/recv pair matching, all as flat arrays.

* :class:`CompiledTrace.replay` resolves every completion time with the
  max-plus recurrence ``t[e] = max(t[deps(e)]) + dur[e]`` over the
  pre-matched pairs and collectives — no generators, no scheduler, no
  per-event object allocation.  Noise is applied up front by a single
  vectorised :meth:`~repro.simnet.noise.NoiseModel.perturb_batch` call
  over the recorded draw sites (which are laid out in exactly the order
  the engine would have consumed the generator stream), so a replay at a
  given seed is **bit-identical** to a ``ClusterEngine`` run at the same
  seed: same elapsed time, same per-rank finish/compute/comm times, same
  message statistics.

* :meth:`CompiledTrace.replay_batch` broadcasts that recurrence over an
  ``(n_events, S)`` duration matrix so ``S`` independently seeded noisy
  samples advance through **one** pass over the event table.  The trace
  is first compiled (once, lazily) into a :class:`_BatchSchedule`: a
  levelised wave schedule in which every wave is a set of same-kind
  events whose ranks are disjoint and whose dependencies all lie in
  earlier waves, so each wave is a handful of vectorised gather/compute/
  scatter operations over an ``(k, S)`` block.  Per sample, the result
  is bit-identical to :meth:`CompiledTrace.replay` at the same seed.

Only timing-independent patterns can be captured: numeric-payload runs,
wildcard receives, non-blocking requests and clock reads raise
:class:`~repro.errors.TraceError` (callers fall back to the engine).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Iterable

import numpy as np

from repro.errors import (
    CommunicatorError,
    DeadlockError,
    RankFailureError,
    TraceError,
)
from repro.simmpi.communicator import SimComm
from repro.simmpi.engine import (
    RankResult,
    SimulationResult,
    collective_cost,
)
from repro.simmpi.operations import (
    AllReduce,
    Barrier,
    Bcast,
    Compute,
    ExecuteMix,
    Recv,
    Send,
)
from repro.simnet.message import ANY_SOURCE, ANY_TAG
from repro.simnet.noise import NoiseModel
from repro.simnet.topology import ClusterTopology, LinkUsageStats

#: Event kinds of the recorded instruction stream.
EV_COMPUTE = 0
EV_SEND = 1
EV_MATCH = 2
EV_COLLECTIVE = 3

_READY = "ready"
_BLOCKED = "blocked"
_DONE = "done"

#: Wave kinds of the batched schedule (one vectorised kernel each).
(_K_COMPUTE, _K_SEND_EAGER, _K_SEND_RDV, _K_MATCH_EAGER, _K_MATCH_RDV,
 _K_COLLECTIVE) = range(6)


class _BatchSchedule:
    """Wave-compiled form of a trace, built once per :class:`CompiledTrace`.

    Events are assigned ASAP levels (level = 1 + max level of their
    dependencies: the previous event on the same rank, the matching send
    for a receive, the sender's previous event for a rendez-vous match,
    every rank for a collective) and grouped into *waves* keyed by
    (level, kind).  Within a wave all ranks are distinct, so a wave's
    clock updates are one gather / elementwise op / scatter over a
    ``(k, S)`` block with no intra-wave ordering.

    Three layout tricks keep the per-wave numpy call count low:

    * ``pack_of_ev`` permutes the event table so each wave's durations
      are one contiguous slice of the packed duration matrix (views, no
      fancy-index gathers).
    * eager-message arrival times live in a buffer permuted by (match
      wave, position), so every eager-match wave *reads* a contiguous
      slice; the send wave scatters into it.
    * per-event comm-time increments are accumulated into a rank-major
      matrix ``C`` in per-rank program order.  Send increments are
      compile-time constants (the CPU overhead ``aux``) pre-filled from
      ``c_template``; match/collective waves overwrite their rows.  The
      final per-rank comm time is a sequential cumulative sum over the
      rank's run of rows — the same left-to-right addition order as the
      scalar replay, hence bit-identical.
    """

    def __init__(self, trace: "CompiledTrace"):
        program = trace._program
        nranks = trace.nranks
        eager = trace._send_eager
        srank = trace._send_rank

        # Rank-major layout of the comm-increment matrix.
        n_comm = [0] * nranks
        for kind, a, b, _aux in program:
            if kind == EV_SEND or kind == EV_MATCH:
                n_comm[a] += 1
                if kind == EV_MATCH and not eager[b]:
                    n_comm[srank[b]] += 1
            elif kind == EV_COLLECTIVE:
                for rank in range(nranks):
                    n_comm[rank] += 1
        base_row = np.concatenate(
            ([0], np.cumsum(n_comm)))[:nranks].astype(np.intp)
        cursor = list(base_row)

        last = [0] * nranks                     # level of rank's last event
        slot_level = [0] * trace.n_messages     # level of each send
        buckets: dict[tuple[int, int], dict[str, list]] = {}
        comp_idx: list[list[int]] = [[] for _ in range(nranks)]

        def bucket(level: int, key: int) -> dict[str, list]:
            wave = buckets.get((level, key))
            if wave is None:
                wave = {"ev": [], "ra": [], "slots": [], "snd": [],
                        "aux": [], "crow": [], "csrow": []}
                buckets[(level, key)] = wave
            return wave

        for ev, (kind, a, b, aux) in enumerate(program):
            if kind == EV_COMPUTE:
                level = last[a] + 1
                last[a] = level
                wave = bucket(level, _K_COMPUTE)
                wave["ev"].append(ev)
                wave["ra"].append(a)
                comp_idx[a].append(ev)
            elif kind == EV_SEND:
                level = last[a] + 1
                last[a] = level
                slot_level[b] = level
                wave = bucket(level,
                              _K_SEND_EAGER if eager[b] else _K_SEND_RDV)
                wave["ev"].append(ev)
                wave["ra"].append(a)
                wave["slots"].append(b)
                wave["aux"].append(aux)
                wave["crow"].append(cursor[a])
                cursor[a] += 1
            elif kind == EV_MATCH:
                if eager[b]:
                    level = max(last[a], slot_level[b]) + 1
                    last[a] = level
                    wave = bucket(level, _K_MATCH_EAGER)
                    wave["ev"].append(ev)
                    wave["ra"].append(a)
                    wave["slots"].append(b)
                    wave["aux"].append(aux)
                    wave["crow"].append(cursor[a])
                    cursor[a] += 1
                else:
                    sender = srank[b]
                    level = max(last[a], slot_level[b], last[sender]) + 1
                    last[a] = level
                    last[sender] = level
                    wave = bucket(level, _K_MATCH_RDV)
                    wave["ev"].append(ev)
                    wave["ra"].append(a)
                    wave["slots"].append(b)
                    wave["snd"].append(sender)
                    wave["aux"].append(aux)
                    wave["crow"].append(cursor[a])
                    cursor[a] += 1
                    wave["csrow"].append(cursor[sender])
                    cursor[sender] += 1
            else:                               # EV_COLLECTIVE
                level = max(last) + 1
                last = [level] * nranks
                wave = bucket(level, _K_COLLECTIVE)
                wave["ev"].append(ev)
                wave["crow"].extend(cursor)
                for rank in range(nranks):
                    cursor[rank] += 1

        ordered = sorted(buckets.keys())

        # Arrival buffer permutation: matched eager messages ordered by
        # (match wave, position in wave) so match waves read contiguous
        # slices.  Unmatched eager sends (legal: the receiver simply
        # never posts) get trailing slots of their own so their scatter
        # cannot clobber a live arrival row.
        arrive_pos = np.full(trace.n_messages, -1, dtype=np.intp)
        position = 0
        for level, key in ordered:
            if key != _K_MATCH_EAGER:
                continue
            for slot in buckets[(level, key)]["slots"]:
                arrive_pos[slot] = position
                position += 1
        for slot in range(trace.n_messages):
            if eager[slot] and arrive_pos[slot] < 0:
                arrive_pos[slot] = position
                position += 1
        self.n_arrive = position

        # Packed event permutation: kind-major streams in wave order, so
        # every wave's duration rows form one contiguous slice.
        pack_of_ev = np.empty(max(len(program), 1), dtype=np.intp)
        offsets = {}
        pos = 0
        for key in range(6):
            offsets[key] = pos
            for level, k2 in ordered:
                if k2 != key:
                    continue
                for ev in buckets[(level, k2)]["ev"]:
                    pack_of_ev[ev] = pos
                    pos += 1

        waves = []
        cursors = dict(offsets)
        for level, key in ordered:
            wave = buckets[(level, key)]
            k = len(wave["ev"])
            off = cursors[key]
            cursors[key] = off + k
            dsl = slice(off, off + k)
            ra = np.asarray(wave["ra"], dtype=np.intp)
            aux = (np.asarray(wave["aux"], dtype=float)[:, None]
                   if wave["aux"] else None)
            crow = np.asarray(wave["crow"], dtype=np.intp)
            if key == _K_COMPUTE:
                waves.append((key, dsl, None, ra, None, None, None, None))
            elif key == _K_SEND_EAGER:
                spos = arrive_pos[np.asarray(wave["slots"], dtype=np.intp)]
                waves.append((key, dsl, spos, ra, None, aux, crow, None))
            elif key == _K_SEND_RDV:
                spos = np.asarray(wave["slots"], dtype=np.intp)
                waves.append((key, dsl, spos, ra, None, aux, crow, None))
            elif key == _K_MATCH_EAGER:
                first = arrive_pos[wave["slots"][0]]
                waves.append((key, dsl, slice(first, first + k),
                              ra, None, aux, crow, None))
            elif key == _K_MATCH_RDV:
                spos = np.asarray(wave["slots"], dtype=np.intp)
                snd = np.asarray(wave["snd"], dtype=np.intp)
                csrow = np.asarray(wave["csrow"], dtype=np.intp)
                waves.append((key, dsl, spos, ra, snd, aux, crow, csrow))
            else:
                waves.append((key, dsl, None, None, None, None, crow, None))
        self.waves = waves

        total_comm = int(sum(n_comm))
        c_template = np.zeros((total_comm, 1))
        for level, key in ordered:
            if key not in (_K_SEND_EAGER, _K_SEND_RDV):
                continue
            wave = buckets[(level, key)]
            for row, overhead in zip(wave["crow"], wave["aux"]):
                c_template[row, 0] = overhead
        self.c_template = c_template
        self.total_comm = total_comm
        self.base_row = base_row
        self.n_comm = n_comm
        self.max_comm_run = max(n_comm) if n_comm else 0

        self.pack_of_ev = pack_of_ev[:len(program)]
        base_pack = np.zeros(len(program))
        base_pack[self.pack_of_ev] = trace._base
        self.base_pack = base_pack
        self.draw_pack = self.pack_of_ev[trace._draw_index]
        self.comp_pack = [
            self.pack_of_ev[np.asarray(ix, dtype=np.intp)] if ix
            else np.empty(0, dtype=np.intp) for ix in comp_idx]
        self.max_comp_run = max(
            (len(ix) for ix in self.comp_pack), default=0)
        self.max_wave_k = max(
            (len(buckets[bk]["ev"]) for bk in buckets), default=0)


class BatchReplayResult:
    """Per-sample outcomes of one :meth:`CompiledTrace.replay_batch` call.

    Column ``s`` of the per-rank arrays (and entry ``s`` of ``elapsed``)
    is bit-identical to the single-seed replay at ``seeds[s]``;
    :meth:`sample` materialises that column as a full
    :class:`~repro.simmpi.engine.SimulationResult`.  Summary statistics
    use the sample standard deviation (``ddof=1``) and a normal 95 %
    confidence interval for the mean.
    """

    __slots__ = ("seeds", "elapsed", "finish", "compute", "comm", "_trace")

    def __init__(self, trace: "CompiledTrace", seeds: list[int],
                 elapsed: np.ndarray, finish: np.ndarray,
                 compute: np.ndarray, comm: np.ndarray):
        self._trace = trace
        #: Per-sample noise seeds, in column order.
        self.seeds = seeds
        #: ``(S,)`` elapsed time of each sample.
        self.elapsed = elapsed
        #: ``(nranks, S)`` per-rank finish / compute / comm times.
        self.finish = finish
        self.compute = compute
        self.comm = comm

    def __len__(self) -> int:
        return len(self.seeds)

    @property
    def n_samples(self) -> int:
        return len(self.seeds)

    @property
    def elapsed_mean(self) -> float:
        return float(self.elapsed.mean())

    @property
    def elapsed_std(self) -> float:
        if len(self.seeds) < 2:
            return 0.0
        return float(self.elapsed.std(ddof=1))

    @property
    def elapsed_ci95(self) -> float:
        """Half-width of the normal 95 % confidence interval of the mean."""
        if len(self.seeds) < 2:
            return 0.0
        return 1.96 * self.elapsed_std / len(self.seeds) ** 0.5

    def sample(self, index: int) -> SimulationResult:
        """Materialise sample ``index`` as a full simulation result."""
        trace = self._trace
        ranks = [RankResult(
            rank=rank,
            finish_time=float(self.finish[rank, index]),
            return_value=trace._return_values[rank],
            compute_time=float(self.compute[rank, index]),
            comm_time=float(self.comm[rank, index]),
            messages_sent=trace._messages_sent[rank],
            bytes_sent=trace._bytes_sent[rank],
            messages_received=trace._messages_received[rank],
            bytes_received=trace._bytes_received[rank],
        ) for rank in range(trace.nranks)]
        return SimulationResult(nranks=trace.nranks, ranks=ranks,
                                elapsed_time=float(self.elapsed[index]),
                                traffic=_copy_traffic(trace._traffic))

    def summary(self) -> dict[str, float]:
        """Mean / std / CI of the elapsed time over all samples."""
        return {
            "samples": float(len(self.seeds)),
            "elapsed_mean": self.elapsed_mean,
            "elapsed_std": self.elapsed_std,
            "elapsed_ci95": self.elapsed_ci95,
            "elapsed_min": float(self.elapsed.min()),
            "elapsed_max": float(self.elapsed.max()),
        }


class _RecRank:
    """Per-rank capture state (no virtual clock — pattern only)."""

    __slots__ = ("rank", "gen", "status", "resume", "collective_counter",
                 "return_value")

    def __init__(self, rank: int, gen: Any):
        self.rank = rank
        self.gen = gen
        self.status = _READY
        self.resume: Any = None
        self.collective_counter = 0
        self.return_value: Any = None


class _Collective:
    """Rendez-vous bookkeeping for one collective index during capture."""

    __slots__ = ("kind", "posts", "nbytes", "op", "root")

    def __init__(self):
        self.kind = ""
        self.posts: dict[int, Any] = {}
        self.nbytes = 0.0
        self.op: Any = None
        self.root = 0


def _replay_events(events: Iterable, nranks: int,
                   clock: list[float], comm: list[float], comp: list[float],
                   ready_t: list[float], arrive: list[float],
                   eager: list[bool], srank: list[int]) -> None:
    """Advance the scalar max-plus state over ``events`` in place.

    ``events`` yields ``((kind, a, b, aux), duration)`` pairs; the state
    lists are mutated exactly as :meth:`CompiledTrace.replay`'s historical
    inline loop did — this helper *is* that loop, shared with the
    steady-state tier (:mod:`repro.simmpi.steady`) so prefix/validation/
    drain segments replay with bit-identical floating-point arithmetic.
    """
    for (kind, a, b, aux), d in events:
        if kind == EV_COMPUTE:
            clock[a] += d
            comp[a] += d
        elif kind == EV_SEND:
            c = clock[a] + aux          # aux: sender CPU overhead
            clock[a] = c
            comm[a] += aux
            ready_t[b] = c
            if eager[b]:
                arrive[b] = c + d       # d: eager wire time
        elif kind == EV_MATCH:
            pc = clock[a]               # a: receiver rank (blocked => post time)
            if eager[b]:
                done = arrive[b]
                if pc > done:
                    done = pc
                done += aux             # aux: receiver CPU overhead
            else:
                start = ready_t[b]
                if pc > start:
                    start = pc
                arrival = start + d     # d: rendez-vous wire time
                sender = srank[b]
                sc = clock[sender]
                if arrival > sc:
                    comm[sender] += arrival - sc
                    clock[sender] = arrival
                done = arrival + aux
            if done > pc:
                comm[a] += done - pc
                clock[a] = done
        else:                           # EV_COLLECTIVE
            base = max(clock)
            completion = base + d       # d: collective cost (0 for 1 rank)
            for rank in range(nranks):
                c = clock[rank]
                delta = completion - c
                if delta > 0.0:
                    comm[rank] += delta
                    clock[rank] = completion


def _copy_traffic(traffic: LinkUsageStats) -> LinkUsageStats:
    return LinkUsageStats(
        messages=traffic.messages,
        bytes=traffic.bytes,
        intra_node_messages=traffic.intra_node_messages,
        inter_node_messages=traffic.inter_node_messages,
        by_tag=dict(traffic.by_tag),
    )


class CompiledTrace:
    """One captured event stream, replayable under any noise model.

    Build instances with :meth:`TraceRecorder.record` (or
    :meth:`~repro.sweep3d.driver.SimulationPlan.compile_trace`).  The
    public arrays describe the recorded pattern; :meth:`replay` resolves
    the virtual times for one noise stream.
    """

    def __init__(self, nranks: int,
                 event_kind: np.ndarray, event_rank: np.ndarray,
                 event_slot: np.ndarray, event_aux: np.ndarray,
                 base: np.ndarray, noise_kind: np.ndarray,
                 send_eager: np.ndarray, send_rank: np.ndarray,
                 event_peer: np.ndarray, event_tag: np.ndarray,
                 event_nbytes: np.ndarray,
                 messages_sent: list[int], bytes_sent: list[float],
                 messages_received: list[int], bytes_received: list[float],
                 traffic: LinkUsageStats, return_values: list[Any]):
        self.nranks = nranks
        #: Flat per-event pattern table (compact numpy columns, engine
        #: order): int8 kind, int32 rank/slot/peer/tag, float64 aux
        #: (CPU overhead) / base duration / nbytes, int8 noise kind,
        #: bool/int32 send-slot tables.
        self.event_kind = event_kind
        self.event_rank = event_rank
        self.event_slot = event_slot
        self.event_aux = event_aux
        self.event_peer = event_peer
        self.event_tag = event_tag
        self.event_nbytes = event_nbytes
        #: Number of times :meth:`replay` has run.
        self.replays = 0
        #: Number of runs resolved by the steady-state tier
        #: (:func:`repro.simmpi.steady.steady_replay`).
        self.steady_replays = 0
        #: Period/exactness analysis memo, owned by
        #: :mod:`repro.simmpi.steady` (pattern-level, noise-independent).
        self._steady_cache: Any = None
        self._base = base
        self._noise_kind = noise_kind
        self._draw_index = np.flatnonzero(noise_kind)
        self._draw_kinds = noise_kind[self._draw_index]
        self._draw_bases = base[self._draw_index]
        self._send_eager_arr = send_eager
        self._send_rank_arr = send_rank
        self._messages_sent = messages_sent
        self._bytes_sent = bytes_sent
        self._messages_received = messages_received
        self._bytes_received = bytes_received
        self._traffic = traffic
        self._return_values = return_values
        self._schedule: _BatchSchedule | None = None
        # Native-object mirrors of the hot columns, built lazily: the
        # scalar replay loop is ~2x faster iterating Python tuples/lists
        # than numpy scalars, but the persistent/tiled representation
        # stays compact until a replay actually needs them.
        self._program_cache: list[tuple[int, int, int, float]] | None = None
        self._base_list_cache: list[float] | None = None
        self._send_eager_cache: list[bool] | None = None
        self._send_rank_cache: list[int] | None = None

    # ------------------------------------------------------------------

    @property
    def _program(self) -> list[tuple[int, int, int, float]]:
        cached = self._program_cache
        if cached is None:
            cached = self._program_cache = list(zip(
                self.event_kind.tolist(), self.event_rank.tolist(),
                self.event_slot.tolist(), self.event_aux.tolist()))
        return cached

    @property
    def _base_list(self) -> list[float]:
        cached = self._base_list_cache
        if cached is None:
            cached = self._base_list_cache = self._base.tolist()
        return cached

    @property
    def _send_eager(self) -> list[bool]:
        cached = self._send_eager_cache
        if cached is None:
            cached = self._send_eager_cache = self._send_eager_arr.tolist()
        return cached

    @property
    def _send_rank(self) -> list[int]:
        cached = self._send_rank_cache
        if cached is None:
            cached = self._send_rank_cache = self._send_rank_arr.tolist()
        return cached

    @property
    def n_events(self) -> int:
        return len(self.event_kind)

    @property
    def n_messages(self) -> int:
        return len(self._send_rank_arr)

    @property
    def nbytes(self) -> int:
        """On-heap size of the recorded pattern columns (bytes).

        Counts the compact numpy columns only — the lazily built Python
        mirrors the scalar replay uses are excluded, as are the per-rank
        statistics lists (O(nranks), not O(events)).
        """
        return int(sum(column.nbytes for column in (
            self.event_kind, self.event_rank, self.event_slot,
            self.event_aux, self.event_peer, self.event_tag,
            self.event_nbytes, self._base, self._noise_kind,
            self._send_eager_arr, self._send_rank_arr)))

    def describe(self) -> str:
        """One-line summary plus period/steady-state diagnostics.

        The period analysis is computed lazily (and cached) by
        :mod:`repro.simmpi.steady`; for a periodic trace the summary shows
        the warm-up/period/repeat/drain split and whether the timebase is
        dyadic-exact (the steady tier's extrapolation precondition).
        """
        from repro.simmpi.steady import describe_steady

        return (f"compiled trace: {self.nranks} rank(s), {self.n_events} "
                f"event(s), {self.n_messages} message(s), "
                f"{len(self._draw_index)} noise draw site(s), "
                f"{self.nbytes} pattern byte(s); "
                f"{describe_steady(self)}")

    # ------------------------------------------------------------------

    def _durations(self, noise: NoiseModel | None) -> list[float]:
        """Per-event durations with ``noise`` applied in engine draw order."""
        if noise is None or noise.is_disabled():
            return self._base_list
        durs = self._base.copy()
        if len(self._draw_index):
            durs[self._draw_index] = noise.perturb_batch(
                self._draw_bases, self._draw_kinds)
        return durs.tolist()

    def replay(self, noise: NoiseModel | None = None) -> SimulationResult:
        """Resolve all completion times under ``noise`` (max-plus pass).

        Bit-identical to :meth:`ClusterEngine.run
        <repro.simmpi.engine.ClusterEngine.run>` of the recorded program
        with the same noise model: the per-rank clock/statistics updates
        are replayed in the engine's exact floating-point order, and the
        noise stream is consumed at the same sites in the same sequence.

        The returned per-rank ``return_value`` objects are the ones
        captured during recording and are shared across replays — treat
        them as read-only.
        """
        durs = self._durations(noise)
        nranks = self.nranks
        clock = [0.0] * nranks
        comm = [0.0] * nranks
        comp = [0.0] * nranks
        ready_t = [0.0] * len(self._send_rank)
        arrive = [0.0] * len(self._send_rank)

        _replay_events(zip(self._program, durs), nranks,
                       clock, comm, comp, ready_t, arrive,
                       self._send_eager, self._send_rank)

        ranks = [RankResult(
            rank=rank,
            finish_time=clock[rank],
            return_value=self._return_values[rank],
            compute_time=comp[rank],
            comm_time=comm[rank],
            messages_sent=self._messages_sent[rank],
            bytes_sent=self._bytes_sent[rank],
            messages_received=self._messages_received[rank],
            bytes_received=self._bytes_received[rank],
        ) for rank in range(nranks)]
        elapsed = max((r.finish_time for r in ranks), default=0.0)
        self.replays += 1
        return SimulationResult(nranks=nranks, ranks=ranks,
                                elapsed_time=elapsed,
                                traffic=_copy_traffic(self._traffic))

    # ------------------------------------------------------------------

    def batch_schedule(self) -> _BatchSchedule:
        """The wave-compiled schedule, built on first use and cached."""
        if self._schedule is None:
            self._schedule = _BatchSchedule(self)
        return self._schedule

    def _durations_matrix(self, noise: NoiseModel | None,
                          seeds: list[int]) -> np.ndarray:
        """Packed ``(n_events, S)`` duration matrix, one column per seed.

        Column ``s`` holds (in packed event order) exactly the durations
        :meth:`_durations` would produce for ``noise.reseeded(seeds[s])``.
        """
        schedule = self.batch_schedule()
        durs = np.empty((len(self._program), len(seeds)))
        durs[:] = schedule.base_pack[:, None]
        if (noise is not None and not noise.is_disabled()
                and len(self._draw_index)):
            rows = noise.perturb_batch_multi(self._draw_bases,
                                             self._draw_kinds, seeds)
            durs[schedule.draw_pack] = rows.T
        return durs

    def replay_batch(self, seeds, noise: NoiseModel | None = None
                     ) -> BatchReplayResult:
        """Resolve ``len(seeds)`` noisy samples in one max-plus pass.

        Sample ``s`` is **bit-identical** to
        ``self.replay(noise.reseeded(seeds[s]))`` — same elapsed time and
        per-rank finish/compute/comm times down to the last bit — but all
        samples advance together through the wave schedule, so the cost
        of walking the event table is paid once instead of ``S`` times.
        With ``noise`` ``None`` (or disabled) every sample equals the
        modelled (noise-free) replay.

        The per-event comm/compute accumulations are re-ordered relative
        to the scalar loop (rank-major cumulative sums), but every
        floating-point addition happens in the same left-to-right order
        per rank, and all clamps the scalar path applies conditionally
        are provably no-ops or applied identically here — that is what
        the bit-identity rests on (and what the property-based tests and
        the ``bench_multiseed`` gate check).
        """
        seeds = [int(seed) for seed in seeds]
        if not seeds:
            raise ValueError("replay_batch needs at least one seed")
        schedule = self.batch_schedule()
        n_samples = len(seeds)
        durations = self._durations_matrix(noise, seeds)

        nranks = self.nranks
        clock = np.zeros((nranks, n_samples))
        arrive = np.empty((schedule.n_arrive, n_samples))
        ready = np.zeros((self.n_messages, n_samples))
        comm_inc = np.empty((schedule.total_comm, n_samples))
        comm_inc[:] = schedule.c_template
        buf1 = np.empty((schedule.max_wave_k, n_samples))
        buf2 = np.empty((schedule.max_wave_k, n_samples))
        maximum = np.maximum
        add = np.add
        subtract = np.subtract
        take = np.take

        for key, dsl, spos, ra, snd, aux, crow, csrow in schedule.waves:
            k = dsl.stop - dsl.start
            if key == _K_COMPUTE:
                block = buf1[:k]
                take(clock, ra, 0, out=block)
                add(block, durations[dsl], out=block)
                clock[ra] = block
            elif key == _K_SEND_EAGER:
                block = buf1[:k]
                take(clock, ra, 0, out=block)
                add(block, aux, out=block)
                clock[ra] = block
                wire = buf2[:k]
                add(block, durations[dsl], out=wire)
                arrive[spos] = wire
            elif key == _K_MATCH_EAGER:
                pc = buf1[:k]
                take(clock, ra, 0, out=pc)
                done = buf2[:k]
                maximum(arrive[spos], pc, out=done)
                add(done, aux, out=done)
                subtract(done, pc, out=pc)     # comm delta (>= 0 always)
                comm_inc[crow] = pc
                clock[ra] = done
            elif key == _K_SEND_RDV:
                block = buf1[:k]
                take(clock, ra, 0, out=block)
                add(block, aux, out=block)
                clock[ra] = block
                ready[spos] = block
            elif key == _K_MATCH_RDV:
                pc = buf1[:k]
                take(clock, ra, 0, out=pc)
                start = maximum(ready[spos], pc)
                arrival = start + durations[dsl]
                sender_clock = clock[snd]
                comm_inc[csrow] = maximum(arrival - sender_clock, 0.0)
                clock[snd] = maximum(sender_clock, arrival)
                done = arrival + aux
                subtract(done, pc, out=pc)
                comm_inc[crow] = pc
                clock[ra] = done
            else:                               # _K_COLLECTIVE
                cost = durations[dsl][0]
                completion = clock.max(axis=0) + cost
                comm_inc[crow] = completion[None, :] - clock
                maximum(clock, completion[None, :], out=clock)

        compute = np.empty((nranks, n_samples))
        comp_buf = np.empty((schedule.max_comp_run, n_samples))
        for rank in range(nranks):
            run = schedule.comp_pack[rank]
            if len(run):
                np.cumsum(durations[run], axis=0, out=comp_buf[:len(run)])
                compute[rank] = comp_buf[len(run) - 1]
            else:
                compute[rank] = 0.0
        comm = np.empty((nranks, n_samples))
        comm_buf = np.empty((schedule.max_comm_run, n_samples))
        for rank in range(nranks):
            count = schedule.n_comm[rank]
            if count:
                start = schedule.base_row[rank]
                np.cumsum(comm_inc[start:start + count], axis=0,
                          out=comm_buf[:count])
                comm[rank] = comm_buf[count - 1]
            else:
                comm[rank] = 0.0
        elapsed = clock.max(axis=0)
        self.replays += n_samples
        return BatchReplayResult(self, seeds, elapsed, clock, compute, comm)


class TraceRecorder:
    """Captures the event pattern of a modelled rank program.

    Drives the rank generators once with the same scheduling discipline as
    :class:`~repro.simmpi.engine.ClusterEngine` — the recorded event order
    is therefore exactly the order in which the engine would consume noise
    draws — but performs no virtual-time arithmetic.  Supported
    operations: ``compute``, ``execute``, blocking ``send``/``recv`` with
    explicit source and tag, and the three collectives.  Anything whose
    pattern or result could depend on virtual time (``now``, wildcard
    receives, ``isend``/``irecv``/``wait``/``waitall``) raises
    :class:`~repro.errors.TraceError`.
    """

    def __init__(self, topology: ClusterTopology, processor: Any = None,
                 max_operations: int = 200_000_000):
        self.topology = topology
        self.processor = processor
        self.max_operations = max_operations

    # ------------------------------------------------------------------

    def record(self, program: Callable[..., Any], nranks: int,
               program_args: Iterable[Any] = (),
               program_kwargs: dict[str, Any] | None = None) -> CompiledTrace:
        """Run ``program`` once on ``nranks`` ranks, recording the pattern."""
        if nranks < 1:
            raise TraceError("nranks must be >= 1")
        self.topology.validate_rank_count(nranks)
        program_kwargs = dict(program_kwargs or {})

        states: list[_RecRank] = []
        for rank in range(nranks):
            comm = SimComm(rank, nranks)
            gen = program(comm, *program_args, **program_kwargs)
            if not hasattr(gen, "send"):
                raise TraceError(
                    "rank program must be a generator function (use 'yield')")
            states.append(_RecRank(rank, gen))

        # Instruction stream (parallel lists; engine processing order).
        ops: list[int] = []
        arg_a: list[int] = []           # rank (compute/send) / receiver (match)
        arg_b: list[int] = []           # send slot (send/match), -1 otherwise
        aux: list[float] = []           # sender/receiver CPU overhead
        base: list[float] = []          # duration subject to noise (or 0)
        noise_kind: list[int] = []      # 0 none / COMPUTE / NETWORK
        # Introspection table, aligned with the instruction stream.
        ev_peer: list[int] = []
        ev_tag: list[int] = []
        ev_nbytes: list[float] = []
        # Send slots.
        send_eager: list[bool] = []
        send_rank: list[int] = []
        send_waiting: list[bool] = []   # sender blocked on this rendez-vous send
        # Matching state (blocking ops only: <= 1 posted recv per rank).
        unexpected: list[dict[tuple[int, int], deque]] = [
            {} for _ in range(nranks)]
        posted: list[tuple[int, int] | None] = [None] * nranks
        collectives: dict[int, _Collective] = {}
        waiting_collective: list[int | None] = [None] * nranks
        waiting_send: list[int | None] = [None] * nranks   # blocked sender's slot
        # Per-rank message statistics (noise-independent).
        messages_sent = [0] * nranks
        bytes_sent = [0.0] * nranks
        messages_received = [0] * nranks
        bytes_received = [0.0] * nranks
        traffic = LinkUsageStats()

        ready: deque[int] = deque(range(nranks))
        operations = 0

        def emit(kind: int, a: int, b: int, x: float, dur: float, nk: int,
                 peer: int = -1, tag: int = -1, nbytes: float = 0.0) -> None:
            ops.append(kind)
            arg_a.append(a)
            arg_b.append(b)
            aux.append(x)
            base.append(dur)
            noise_kind.append(nk)
            ev_peer.append(peer)
            ev_tag.append(tag)
            ev_nbytes.append(nbytes)

        def emit_match(pending: tuple, receiver: int) -> None:
            """Record a matched pair; wake a blocked rendez-vous sender."""
            slot, payload, nbytes, rcpu, wire, is_eager, sender, tag = pending
            emit(EV_MATCH, receiver, slot, rcpu,
                 0.0 if is_eager else wire,
                 0 if is_eager else NoiseModel.NETWORK,
                 peer=sender, tag=tag, nbytes=nbytes)
            messages_received[receiver] += 1
            bytes_received[receiver] += nbytes
            if not is_eager and send_waiting[slot]:
                send_waiting[slot] = False
                sender_state = states[sender]
                waiting_send[sender] = None
                sender_state.resume = None
                sender_state.status = _READY
                ready.append(sender)

        def advance(state: _RecRank) -> None:
            nonlocal operations
            while True:
                operations += 1
                if operations > self.max_operations:
                    raise TraceError(
                        f"operation budget exceeded ({self.max_operations}) "
                        "during trace capture")
                value, state.resume = state.resume, None
                try:
                    op = state.gen.send(value)
                except StopIteration as stop:
                    state.status = _DONE
                    state.return_value = stop.value
                    return
                except Exception as exc:  # noqa: BLE001 - mirrors the engine
                    raise RankFailureError(state.rank, exc) from exc

                if isinstance(op, Compute):
                    emit(EV_COMPUTE, state.rank, -1, 0.0, op.seconds,
                         NoiseModel.COMPUTE)
                    continue
                if isinstance(op, ExecuteMix):
                    if self.processor is None:
                        raise TraceError(
                            "SimComm.execute(mix) requires the recorder to be "
                            "built with a processor model")
                    emit(EV_COMPUTE, state.rank, -1, 0.0,
                         self.processor.execute_time(op.mix),
                         NoiseModel.COMPUTE)
                    continue
                if isinstance(op, Send):
                    rank = state.rank
                    link = self.topology.link_for(rank, op.dest)
                    cpu = link.sender_cpu_time(op.nbytes)
                    rcpu = link.receiver_cpu_time(op.nbytes)
                    wire = link.wire_time(op.nbytes)
                    is_eager = link.is_eager(op.nbytes)
                    slot = len(send_rank)
                    send_rank.append(rank)
                    send_eager.append(is_eager)
                    send_waiting.append(False)
                    emit(EV_SEND, rank, slot, cpu,
                         wire if is_eager else 0.0,
                         NoiseModel.NETWORK if is_eager else 0,
                         peer=op.dest, tag=op.tag, nbytes=op.nbytes)
                    messages_sent[rank] += 1
                    bytes_sent[rank] += op.nbytes
                    traffic.record(self.topology, rank, op.dest, op.nbytes,
                                   op.tag)
                    pending = (slot, op.payload, op.nbytes, rcpu, wire,
                               is_eager, rank, op.tag)
                    if posted[op.dest] == (rank, op.tag):
                        posted[op.dest] = None
                        emit_match(pending, op.dest)
                        receiver = states[op.dest]
                        receiver.resume = op.payload
                        receiver.status = _READY
                        ready.append(op.dest)
                        continue
                    queue = unexpected[op.dest].setdefault(
                        (rank, op.tag), deque())
                    queue.append(pending)
                    if is_eager:
                        continue
                    # Blocking rendez-vous send with no posted receive:
                    # the sender waits for the match, exactly as in the
                    # engine (the request completes at arrival time).
                    send_waiting[slot] = True
                    waiting_send[rank] = slot
                    state.status = _BLOCKED
                    return
                if isinstance(op, Recv):
                    if op.source == ANY_SOURCE or op.tag == ANY_TAG:
                        raise TraceError(
                            "wildcard receives are timing-dependent and "
                            "cannot be trace-compiled")
                    rank = state.rank
                    queues = unexpected[rank]
                    queue = queues.get((op.source, op.tag))
                    if queue:
                        pending = queue.popleft()
                        if not queue:
                            del queues[(op.source, op.tag)]
                        emit_match(pending, rank)
                        state.resume = pending[1]
                        continue
                    if posted[rank] is not None:
                        raise TraceError(
                            "rank posted a second receive while one was "
                            "outstanding")
                    posted[rank] = (op.source, op.tag)
                    state.status = _BLOCKED
                    return
                if isinstance(op, (AllReduce, Barrier, Bcast)):
                    index = state.collective_counter
                    state.collective_counter += 1
                    slot = collectives.setdefault(index, _Collective())
                    kind = type(op).__name__
                    if slot.posts and slot.kind != kind:
                        raise CommunicatorError(
                            f"collective mismatch at index {index}: rank "
                            f"{state.rank} called {kind} but other ranks "
                            f"called {slot.kind}")
                    slot.kind = kind
                    if isinstance(op, AllReduce):
                        slot.nbytes = max(slot.nbytes, op.nbytes)
                        slot.op = op.op
                        slot.posts[state.rank] = op.value
                    elif isinstance(op, Bcast):
                        slot.nbytes = max(slot.nbytes, op.nbytes)
                        slot.root = op.root
                        slot.posts[state.rank] = op.value
                    else:
                        slot.posts[state.rank] = None
                    if len(slot.posts) < nranks:
                        waiting_collective[state.rank] = index
                        state.status = _BLOCKED
                        return
                    # Last arrival: one instruction resolves every rank.
                    cost = collective_cost(kind, slot.nbytes, nranks,
                                           self.topology.inter_node)
                    emit(EV_COLLECTIVE, -1, -1, 0.0, cost,
                         NoiseModel.NETWORK if nranks > 1 else 0,
                         nbytes=slot.nbytes)
                    if kind == "AllReduce":
                        result = slot.op.combine(
                            [slot.posts[rank] for rank in sorted(slot.posts)])
                    elif kind == "Bcast":
                        result = slot.posts[slot.root]
                    else:
                        result = None
                    del collectives[index]
                    for other in states:
                        if other.rank == state.rank:
                            continue
                        if waiting_collective[other.rank] == index:
                            waiting_collective[other.rank] = None
                            other.resume = result
                            other.status = _READY
                            ready.append(other.rank)
                    state.resume = result
                    continue
                raise TraceError(
                    f"operation {type(op).__name__} is timing-dependent or "
                    "unsupported by trace capture (supported: compute, "
                    "execute, blocking send/recv with explicit source and "
                    "tag, allreduce, barrier, bcast)")

        while ready:
            rank = ready.popleft()
            state = states[rank]
            if state.status != _READY:
                continue
            advance(state)
            if not ready and not all(s.status == _DONE for s in states):
                blocked = [s.rank for s in states if s.status == _BLOCKED]
                if blocked:
                    raise DeadlockError(
                        f"deadlock during trace capture: ranks {blocked} are "
                        "blocked with no pending events",
                        blocked_ranks=blocked)

        unfinished = [s.rank for s in states if s.status != _DONE]
        if unfinished:
            raise DeadlockError(
                f"deadlock during trace capture: ranks {unfinished} never "
                "completed", blocked_ranks=unfinished)

        return CompiledTrace(
            nranks=nranks,
            event_kind=np.asarray(ops, dtype=np.int8),
            event_rank=np.asarray(arg_a, dtype=np.int32),
            event_slot=np.asarray(arg_b, dtype=np.int32),
            event_aux=np.asarray(aux, dtype=float),
            base=np.asarray(base, dtype=float),
            noise_kind=np.asarray(noise_kind, dtype=np.int8),
            send_eager=np.asarray(send_eager, dtype=bool),
            send_rank=np.asarray(send_rank, dtype=np.int32),
            event_peer=np.asarray(ev_peer, dtype=np.int32),
            event_tag=np.asarray(ev_tag, dtype=np.int32),
            event_nbytes=np.asarray(ev_nbytes, dtype=float),
            messages_sent=messages_sent,
            bytes_sent=bytes_sent,
            messages_received=messages_received,
            bytes_received=bytes_received,
            traffic=traffic,
            return_values=[s.return_value for s in states],
        )
