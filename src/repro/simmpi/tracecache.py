"""Persistent compiled-trace cache: capture once per decomposition, ever.

Even with periodic capture (:mod:`repro.simmpi.capture`) a cold process
pays one short recorder pass per distinct (deck, decomposition, network,
processor) combination.  This module persists the resulting
:class:`~repro.simmpi.trace.CompiledTrace` to disk under the same
fingerprint-keyed, atomic-write, verified-read discipline as the sweep
cache (:class:`~repro.experiments.diskcache.SweepDiskCache` — both build
on :class:`repro.diskio.DirectoryStore`), so

* decks sharing a decomposition never re-capture across processes (a
  sweep's multiprocessing workers and later CLI runs all hit one store),
* the fleet can ship warm traces between machines through the
  ``ArtifactStore`` flow (:func:`repro.experiments.remotestore.
  push_trace_entries` / ``pull_trace_entries``), and
* the prediction service's warm tiers extend down into capture.

Entries are ``.npz`` payloads: the trace's compact event/send columns are
stored as raw numpy arrays (byte-exact, so a cache hit replays
bit-identically to the capture that stored it), with the fingerprint
key, per-rank statistics, traffic and captured return values in a small
pickled side-channel inside the archive.  A corrupt, truncated or
foreign entry — including one written by a different format version —
is a miss, never an error.

Keys are built by :meth:`~repro.sweep3d.driver.SimulationPlan.
trace_fingerprint`: deck shape + decomposition + processor/topology
models + capture-relevant config, and deliberately *not* the machine
name or noise parameters — a trace is a pattern, shared by every noise
seed and by presets that alias the same models.
"""

from __future__ import annotations

import io
import pickle
import zipfile
from typing import Any

import numpy as np

from repro.diskio import DirectoryStore
from repro.simmpi.trace import CompiledTrace

#: Format marker stored with every entry; bump to invalidate old caches.
_TRACE_CACHE_VERSION = 1

#: Event/send columns persisted as raw npz arrays, in constructor order.
_COLUMNS = ("event_kind", "event_rank", "event_slot", "event_aux",
            "base", "noise_kind", "send_eager", "send_rank",
            "event_peer", "event_tag", "event_nbytes")


class TraceDiskCache(DirectoryStore):
    """A directory of npz-serialised compiled traces keyed by fingerprint.

    Shares :class:`~repro.diskio.DirectoryStore`'s contract: atomic
    writes, verified reads, lock-guarded hit/miss/store stats,
    ``prune``/``clear`` bounding, safe concurrent sharing across
    processes, and pickling across multiprocessing workers.
    """

    suffix = ".npz"
    _decode_errors = (zipfile.BadZipFile, pickle.PickleError, EOFError,
                      AttributeError, ImportError, TypeError)

    def _encode(self, key: tuple, trace: CompiledTrace) -> bytes:
        arrays = {
            "event_kind": trace.event_kind,
            "event_rank": trace.event_rank,
            "event_slot": trace.event_slot,
            "event_aux": trace.event_aux,
            "base": trace._base,
            "noise_kind": trace._noise_kind,
            "send_eager": trace._send_eager_arr,
            "send_rank": trace._send_rank_arr,
            "event_peer": trace.event_peer,
            "event_tag": trace.event_tag,
            "event_nbytes": trace.event_nbytes,
        }
        extra = pickle.dumps(
            (_TRACE_CACHE_VERSION, key, trace.nranks,
             trace._messages_sent, trace._bytes_sent,
             trace._messages_received, trace._bytes_received,
             trace._traffic, trace._return_values),
            protocol=pickle.HIGHEST_PROTOCOL)
        buffer = io.BytesIO()
        np.savez(buffer, extra=np.frombuffer(extra, dtype=np.uint8),
                 **arrays)
        return buffer.getvalue()

    def _decode(self, data: bytes, key: tuple) -> CompiledTrace:
        with np.load(io.BytesIO(data), allow_pickle=False) as archive:
            columns = {name: archive[name] for name in _COLUMNS}
            extra = archive["extra"].tobytes()
        (version, stored_key, nranks, messages_sent, bytes_sent,
         messages_received, bytes_received, traffic,
         return_values) = pickle.loads(extra)
        if version != _TRACE_CACHE_VERSION or stored_key != key:
            # Format change or (astronomically unlikely) digest collision.
            raise ValueError("stale or foreign trace-cache entry")
        return CompiledTrace(
            nranks=nranks,
            messages_sent=messages_sent,
            bytes_sent=bytes_sent,
            messages_received=messages_received,
            bytes_received=bytes_received,
            traffic=traffic,
            return_values=return_values,
            **columns,
        )

    def get_trace(self, key: tuple) -> CompiledTrace | None:
        """Alias of :meth:`get` with the trace-typed signature."""
        return self.get(key)

    def put_trace(self, key: tuple, trace: CompiledTrace) -> None:
        """Alias of :meth:`put` with the trace-typed signature."""
        self.put(key, trace)


def trace_cache_for(path: "str | Any") -> TraceDiskCache:
    """Coerce ``path`` (str/Path/cache) into a :class:`TraceDiskCache`."""
    if isinstance(path, TraceDiskCache):
        return path
    return TraceDiskCache(path)
