"""Simulated cluster interconnect models.

This package replaces the physical interconnects of the paper's clusters
(Myrinet 2000, Gigabit Ethernet, SGI NUMAlink-4 and the intra-node shared
memory of the 2-way SMP nodes).  A :class:`~repro.simnet.link.LinkModel`
describes point-to-point message cost with an eager/rendezvous protocol and
piece-wise linear latency/bandwidth; a
:class:`~repro.simnet.topology.ClusterTopology` maps rank pairs onto links
(intra-node vs inter-node); and a :class:`~repro.simnet.noise.NoiseModel`
injects the operating-system/background-load jitter the paper blames for
the variance in its measurements.
"""

from repro.simnet.message import Message
from repro.simnet.link import LinkModel
from repro.simnet.topology import ClusterTopology
from repro.simnet.noise import NoiseModel, derive_seed
from repro.simnet.presets import (
    myrinet2000,
    gigabit_ethernet,
    numalink4,
    smp_shared_memory,
    interconnect_preset,
    INTERCONNECT_PRESETS,
)

__all__ = [
    "Message",
    "LinkModel",
    "ClusterTopology",
    "NoiseModel",
    "derive_seed",
    "myrinet2000",
    "gigabit_ethernet",
    "numalink4",
    "smp_shared_memory",
    "interconnect_preset",
    "INTERCONNECT_PRESETS",
]
