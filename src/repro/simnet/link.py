"""Point-to-point link cost model with an eager/rendezvous protocol.

The MPI implementations of the era behave piece-wise linearly in the message
size: short messages are sent *eagerly* (copied into a receive buffer,
costing mostly latency), long messages use a *rendezvous* protocol (an extra
handshake, then a bandwidth-dominated transfer).  The paper's communication
resource model (Section 4.4, equation 3) is exactly a two-piece linear fit
of this behaviour, with the break point ``A`` at the protocol switch.

The link model here is the *ground truth* that the MPI micro-benchmark
substitute measures and fits; the fitted A-E parameters then populate the
HMCL hardware object used for prediction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import NetworkConfigError
from repro.units import snap_to_grid


@dataclass(frozen=True)
class LinkModel:
    """Cost model of a point-to-point channel between two ranks.

    Parameters
    ----------
    name:
        Label, e.g. ``"Myrinet 2000"``.
    latency:
        End-to-end zero-byte latency in seconds (eager path).
    bandwidth:
        Asymptotic bandwidth in bytes/second (rendezvous path).
    eager_threshold:
        Message size in bytes at which the library switches from the eager
        to the rendezvous protocol (the paper's parameter ``A``).
    eager_bandwidth:
        Effective bandwidth of the eager path (copies through pre-registered
        buffers are typically slower than the large-message DMA path).
    rendezvous_latency:
        Additional fixed cost of the rendezvous handshake in seconds.
    send_overhead / recv_overhead:
        CPU time consumed on the sender/receiver for every message (the
        LogGP ``o`` parameter); charged to the rank's clock in addition to
        the wire time.
    per_byte_cpu:
        CPU time per byte spent packing/copying on each side.
    """

    name: str
    latency: float
    bandwidth: float
    eager_threshold: float = 16 * 1024
    eager_bandwidth: float | None = None
    rendezvous_latency: float = 0.0
    send_overhead: float = 0.0
    recv_overhead: float = 0.0
    per_byte_cpu: float = 0.0

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise NetworkConfigError(f"{self.name}: latency must be >= 0")
        if self.bandwidth <= 0:
            raise NetworkConfigError(f"{self.name}: bandwidth must be positive")
        if self.eager_threshold < 0:
            raise NetworkConfigError(f"{self.name}: eager threshold must be >= 0")
        if self.eager_bandwidth is not None and self.eager_bandwidth <= 0:
            raise NetworkConfigError(f"{self.name}: eager bandwidth must be positive")
        for attr in ("rendezvous_latency", "send_overhead", "recv_overhead", "per_byte_cpu"):
            if getattr(self, attr) < 0:
                raise NetworkConfigError(f"{self.name}: {attr} must be >= 0")

    # ------------------------------------------------------------------

    def is_eager(self, nbytes: float) -> bool:
        """Whether a message of ``nbytes`` uses the eager protocol."""
        return nbytes <= self.eager_threshold

    def wire_time(self, nbytes: float) -> float:
        """Time for the payload to traverse the channel (no CPU overheads).

        Piece-wise linear in the message size, with a discontinuity in the
        intercept at the eager threshold — the behaviour the paper's A-E
        parameters capture.
        """
        if nbytes < 0:
            raise NetworkConfigError("message size must be >= 0")
        if self.is_eager(nbytes):
            eager_bw = self.eager_bandwidth or self.bandwidth
            return self.latency + nbytes / eager_bw
        return self.latency + self.rendezvous_latency + nbytes / self.bandwidth

    def sender_cpu_time(self, nbytes: float) -> float:
        """CPU time the sending rank spends on a message of ``nbytes``."""
        return self.send_overhead + nbytes * self.per_byte_cpu

    def receiver_cpu_time(self, nbytes: float) -> float:
        """CPU time the receiving rank spends on a message of ``nbytes``."""
        return self.recv_overhead + nbytes * self.per_byte_cpu

    def ping_pong_time(self, nbytes: float) -> float:
        """Round-trip time of a ping-pong exchange of ``nbytes`` messages.

        This is what an MPI ping-pong benchmark reports (divided by two it
        gives the one-way time); used by the benchmark substitute.
        """
        one_way = (self.sender_cpu_time(nbytes) + self.wire_time(nbytes)
                   + self.receiver_cpu_time(nbytes))
        return 2.0 * one_way

    def one_way_time(self, nbytes: float) -> float:
        """Complete one-way delivery time including both CPU overheads."""
        return (self.sender_cpu_time(nbytes) + self.wire_time(nbytes)
                + self.receiver_cpu_time(nbytes))

    def describe(self) -> str:
        return (f"{self.name}: {self.latency * 1e6:.1f}us + "
                f"{self.bandwidth / 1e6:.0f}MB/s (eager<= {self.eager_threshold:.0f}B)")


@dataclass(frozen=True)
class QuantizedLink(LinkModel):
    """A link whose every modelled cost snaps to a dyadic time grid.

    Identical to :class:`LinkModel` except that wire times and per-message
    CPU overheads are rounded to the nearest multiple of ``time_quantum``
    seconds (a power of two, e.g. ``2**-30`` ≈ 0.93 ns).  On a machine
    built entirely from quantized components every event duration is an
    exact binary multiple of one shared quantum, which makes the max-plus
    replay of :mod:`repro.simmpi.trace` exact integer arithmetic — the
    precondition under which the steady-state tier
    (:mod:`repro.simmpi.steady`) can extrapolate periodic traces
    bit-identically.  A sub-nanosecond tick is far below every modelled
    latency/overhead in the repository, so quantized presets stay
    physically indistinguishable from their continuous parents.

    ``time_quantum = 0`` degrades to the continuous behaviour.
    """

    time_quantum: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.time_quantum < 0:
            raise NetworkConfigError(f"{self.name}: time_quantum must be >= 0")

    def wire_time(self, nbytes: float) -> float:
        return snap_to_grid(super().wire_time(nbytes), self.time_quantum)

    def sender_cpu_time(self, nbytes: float) -> float:
        return snap_to_grid(super().sender_cpu_time(nbytes), self.time_quantum)

    def receiver_cpu_time(self, nbytes: float) -> float:
        return snap_to_grid(super().receiver_cpu_time(nbytes), self.time_quantum)
